# Convenience entry points; everything runs with the src layout on PYTHONPATH.

PY := PYTHONPATH=src python

.PHONY: test check lint typecheck bench-smoke bench-regression bench-sweep \
	bench-million serve-smoke bench-service incremental-smoke \
	bench-incremental shard-smoke bench-sharded obs-smoke bench-obs \
	store-smoke bench-store

test:
	$(PY) -m pytest -x -q

# What CI runs: the tier-1 suite, the bench-rot smoke pass (plus the
# perf-regression gate over its timings), the service smoke (boot the
# TCP server, fire 50 mixed requests through ColoringClient, assert
# validity + cache hits + load shedding), the incremental smoke
# (single-edge update vs fresh solve at n=32768: >= 10x, digest-chained,
# validity-asserted), the shard smoke (2-shard cluster bring-up,
# routed solve/update/stats, a worker killed and restarted mid-load),
# the observability smoke (traced 2-shard fleet: every request must
# reassemble into one connected router-to-solver-phase span tree from
# the per-process JSONL exports, and the sampling-off tracing tax must
# stay under 2%), and the store smoke (2-shard fleet with --store-dir
# populated, SIGKILLed, restarted on the same directory: >= 90% warm
# hits, bit-identical digests, every WAL chain replayed, bounded
# restart-to-warm time), so the solver facade, the bench harness, the
# serving layer, the update path, the scale-out tier, the
# instrumentation and the durable storage layer cannot rot
# independently.
check: test bench-regression serve-smoke incremental-smoke shard-smoke obs-smoke store-smoke

# Style + invariant gate.  Two layers: ruff (generic defect rules; CI
# installs a pinned version, locally it is skipped if absent) and
# reprolint, the repo-specific AST linter (src/repro/devtools) that
# enforces what ruff cannot see — see docs/DEVTOOLS.md.
lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks scripts; \
	else \
		echo "ruff not installed; skipping (CI runs it pinned)"; \
	fi
	$(PY) -m repro lint src scripts benchmarks

# Type gate: mypy over the strict surfaces (storage, obs, sharding; see
# [tool.mypy] in pyproject.toml).  Skipped locally if mypy is absent —
# CI installs a pinned version.
typecheck:
	@if python -c "import mypy" >/dev/null 2>&1; then \
		MYPYPATH=src python -m mypy -p repro.service.storage -p repro.obs -p repro.service.sharding; \
	else \
		echo "mypy not installed; skipping (CI runs it pinned)"; \
	fi

# Service smoke: real server + client over localhost TCP.
serve-smoke:
	$(PY) benchmarks/bench_s1_service.py --smoke

# Incremental smoke: the update verb's acceptance gate (engine + TCP +
# sustained stream), then the calibrated perf gate over its numbers
# (update_ms and sustained ops/sec vs the committed baseline).
# Refresh the baseline with:
#   python scripts/check_bench_regression.py --incremental-current benchmarks/results/s2_incremental.json --update-baseline
incremental-smoke:
	$(PY) benchmarks/bench_s2_incremental.py --smoke
	python scripts/check_bench_regression.py \
		--incremental-current benchmarks/results/s2_incremental.json

# Full incremental sweep: update-op latency vs fresh solves across edit sizes.
bench-incremental:
	$(PY) benchmarks/bench_s2_incremental.py

# Sharded-service smoke: real 2-shard fleet (child processes) behind the
# consistent-hash router — routed solve/update/stats asserted
# bit-identical and chain-local, one shard SIGKILLed and restarted
# mid-load — then the throughput gate (2-shard >= 1.5x single-process,
# auto-skipped on boxes with < 2 CPUs).  Refresh the baseline with:
#   python scripts/check_bench_regression.py --sharded-current benchmarks/results/s3_sharded.json --update-baseline
shard-smoke:
	$(PY) benchmarks/bench_s3_sharded.py --smoke
	python scripts/check_bench_regression.py \
		--sharded-current benchmarks/results/s3_sharded.json

# Full sharded load test: offered-vs-achieved QPS at 1/2/4 shards.
bench-sharded:
	$(PY) benchmarks/bench_s3_sharded.py

# Observability smoke: a traced 2-shard fleet must produce complete
# cross-tier traces (router.request -> router.forward -> server.request
# -> gateway.* -> solver.*) reassembled from per-process JSONL exports,
# the metrics verb must serve the merged fleet view, and the
# sampling-off overhead on the cached hot path must stay under
# REPRO_OBS_MAX_OVERHEAD_PCT (default 2%).  Spans land in
# benchmarks/results/obs_traces/ (the CI trace artifact); inspect them
# with `python -m repro trace benchmarks/results/obs_traces`.
obs-smoke:
	$(PY) benchmarks/bench_s4_obs.py --smoke

# Full observability run (more solves, longer chains, bigger A/B batches).
bench-obs:
	$(PY) benchmarks/bench_s4_obs.py

# Durable-store smoke: populate a 2-shard fleet started with
# --store-dir, SIGKILL every worker, restart on the same directory —
# the restarted fleet must serve the populated keyspace warm (>= 90%
# cached, bit-identical content digests), replay every WAL chain, and
# boot within the cold-boot + replay budget.  The store directory
# itself (benchmarks/results/s5_store_dir/) is the failure artifact;
# see docs/STORAGE.md for the on-disk layout.
store-smoke:
	$(PY) benchmarks/bench_s5_store.py --smoke

# Full durable-store run (bigger keyspace, longer chains).
bench-store:
	$(PY) benchmarks/bench_s5_store.py

# Full serving-layer load test (open-loop traffic; JSON in benchmarks/results/).
bench-service:
	$(PY) benchmarks/bench_s1_service.py --rate 100 --requests 300

# CI rot check: every benchmarks/bench_e*.py at its single smallest size.
# Timings land in benchmarks/results/BENCH_smoke.json for the gate below.
bench-smoke:
	$(PY) -m repro bench --smoke --smoke-json benchmarks/results/BENCH_smoke.json

# Perf-regression gate: compare the smoke timings against the committed
# baseline (machine-speed calibrated; fail on > 1.5x per-module slowdown).
# Refresh the baseline with:
#   python scripts/check_bench_regression.py --current benchmarks/results/BENCH_smoke.json --update-baseline
bench-regression: bench-smoke
	python scripts/check_bench_regression.py \
		--current benchmarks/results/BENCH_smoke.json

# Wall-clock scaling sweep via the harness (JSON lands in benchmarks/results/).
bench-sweep:
	$(PY) -m repro bench --sweep --sizes 2000,20000,250000 \
		--json benchmarks/results/harness_sweep.json

# The canonical million-edge demonstration: n=250k, Δ=8 → m=1e6.
bench-million:
	$(PY) -m repro bench --sweep --sizes 250000 --delta 8 --warmup 0 --repeats 1 \
		--json benchmarks/results/harness_million.json
