# Convenience entry points; everything runs with the src layout on PYTHONPATH.

PY := PYTHONPATH=src python

.PHONY: test check bench-smoke bench-sweep bench-million serve-smoke bench-service

test:
	$(PY) -m pytest -x -q

# What CI runs: the tier-1 suite, the bench-rot smoke pass, and the
# service smoke (boot the TCP server, fire 50 mixed requests through
# ColoringClient, assert validity + cache hits + load shedding), so the
# solver facade, the bench harness, and the serving layer cannot rot
# independently.
check: test bench-smoke serve-smoke

# Service smoke: real server + client over localhost TCP.
serve-smoke:
	$(PY) benchmarks/bench_s1_service.py --smoke

# Full serving-layer load test (open-loop traffic; JSON in benchmarks/results/).
bench-service:
	$(PY) benchmarks/bench_s1_service.py --rate 100 --requests 300

# CI rot check: every benchmarks/bench_e*.py at its single smallest size.
bench-smoke:
	$(PY) -m repro bench --smoke

# Wall-clock scaling sweep via the harness (JSON lands in benchmarks/results/).
bench-sweep:
	$(PY) -m repro bench --sweep --sizes 2000,20000,250000 \
		--json benchmarks/results/harness_sweep.json

# The canonical million-edge demonstration: n=250k, Δ=8 → m=1e6.
bench-million:
	$(PY) -m repro bench --sweep --sizes 250000 --delta 8 --warmup 0 --repeats 1 \
		--json benchmarks/results/harness_million.json
