# Convenience entry points; everything runs with the src layout on PYTHONPATH.

PY := PYTHONPATH=src python

.PHONY: test check bench-smoke bench-sweep bench-million

test:
	$(PY) -m pytest -x -q

# What CI runs: the tier-1 suite plus the bench-rot smoke pass, so the
# solver facade and the bench harness cannot rot independently.
check: test bench-smoke

# CI rot check: every benchmarks/bench_e*.py at its single smallest size.
bench-smoke:
	$(PY) -m repro bench --smoke

# Wall-clock scaling sweep via the harness (JSON lands in benchmarks/results/).
bench-sweep:
	$(PY) -m repro bench --sweep --sizes 2000,20000,250000 \
		--json benchmarks/results/harness_sweep.json

# The canonical million-edge demonstration: n=250k, Δ=8 → m=1e6.
bench-million:
	$(PY) -m repro bench --sweep --sizes 250000 --delta 8 --warmup 0 --repeats 1 \
		--json benchmarks/results/harness_million.json
