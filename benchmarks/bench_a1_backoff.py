"""A1/A2 — ablation: the marking process knobs (backoff b, selection p).

DESIGN.md calls out two design choices the paper fixes by analysis:

* the backoff distance b (6 for Δ >= 4, 12 for Δ = 3).  Larger b makes
  survivors rarer but guarantees the structural invariants (Lemma 12/14
  expansion, non-adjacent marks);
* the selection probability p (paper: Δ^{-b}; practical preset
  ≈ 1.3/E|B_b|).

This ablation sweeps both and reports T-node density and survival rate:
the practical preset should sit near the density maximum, and density
must fall off on both sides (p too small: nothing selected; p too large:
everything backs off).
"""

from __future__ import annotations

import random

from common import cached_high_girth, emit
from repro.analysis.experiments import sweep
from repro.core.happiness import build_happiness_layers
from repro.core.marking import default_selection_probability, marking_process
from repro.graphs.validation import UNCOLORED
from repro.local.rounds import RoundLedger


def build_backoff_table():
    def run(point, seed):
        backoff = point["b"]
        graph = cached_high_girth(3000, 3, 8, seed)
        colors = [UNCOLORED] * graph.n
        p = default_selection_probability(3, backoff)
        marking = marking_process(
            graph, set(range(graph.n)), colors, p, backoff,
            random.Random(seed), RoundLedger(),
        )
        happiness = build_happiness_layers(
            graph, colors, set(range(graph.n)), marking, 3, r=8, ledger=RoundLedger()
        )
        return {
            "p_used*1e3": 1000 * p,
            "t_per_1k": 1000 * len(marking.t_nodes) / graph.n,
            "backed_off_%": 100 * marking.backed_off / max(1, marking.initially_selected),
            "survival_%": 100 * len(happiness.leftover) / graph.n,
        }

    table = sweep(
        "A1: backoff distance b sweep (Δ=3, preset p per b)",
        [{"b": b} for b in (5, 6, 8, 10, 12)],
        run,
        seeds=(0, 1, 2),
    )
    table.notes.append(
        "paper fixes b=6 (Δ>=4) / b=12 (Δ=3); b >= 5 is the structural floor "
        "(non-adjacent marks); larger b trades T-node density for stronger expansion"
    )
    return table


def build_probability_table():
    def run(point, seed):
        p = point["p"]
        graph = cached_high_girth(3000, 3, 8, seed)
        colors = [UNCOLORED] * graph.n
        marking = marking_process(
            graph, set(range(graph.n)), colors, p, 6, random.Random(seed), RoundLedger()
        )
        return {
            "selected": marking.initially_selected,
            "t_per_1k": 1000 * len(marking.t_nodes) / graph.n,
            "backed_off_%": 100 * marking.backed_off / max(1, marking.initially_selected),
        }

    preset = default_selection_probability(3, 6)
    grid = sorted({preset / 8, preset / 2, preset, preset * 4, preset * 16, 0.2})
    table = sweep(
        "A2: selection probability p sweep (Δ=3, b=6)",
        [{"p": round(p, 5)} for p in grid],
        run,
        seeds=(0, 1, 2),
    )
    table.notes.append(f"practical preset p = {preset:.5f} (≈ density maximiser)")
    table.notes.append("paper's asymptotic p = Δ^-6 = 0.00137 — same order as the preset")
    return table


def test_a1_backoff(benchmark):
    table = benchmark.pedantic(build_backoff_table, iterations=1, rounds=1)
    emit(table, "a1_backoff")
    assert table.rows


def test_a2_probability(benchmark):
    table = benchmark.pedantic(build_probability_table, iterations=1, rounds=1)
    emit(table, "a2_probability")
    # density peaks in the interior of the sweep, not at the extremes
    densities = [row.values["t_per_1k"] for row in table.rows]
    assert max(densities) >= densities[0]
    assert max(densities) >= densities[-1]


if __name__ == "__main__":
    emit(build_backoff_table(), "a1_backoff")
    emit(build_probability_table(), "a2_probability")
