"""A1/A2 — ablation: the marking process knobs (backoff b, selection p).

DESIGN.md calls out two design choices the paper fixes by analysis:

* the backoff distance b (6 for Δ >= 4, 12 for Δ = 3).  Larger b makes
  survivors rarer but guarantees the structural invariants (Lemma 12/14
  expansion, non-adjacent marks);
* the selection probability p (paper: Δ^{-b}; practical preset
  ≈ 1.3/E|B_b|).

This ablation sweeps both and reports T-node density and survival rate:
the practical preset should sit near the density maximum, and density
must fall off on both sides (p too small: nothing selected; p too large:
everything backs off).

Facade-native since PR 3: each point runs the full pipeline through
:func:`repro.api.solve` with a :class:`RandomizedParams` override and
reads the marking/shattering quantities from the result's
``phase_stats`` — exactly what a phase observer would see — instead of
hand-driving ``marking_process``/``build_happiness_layers``.  (On these
high-girth workloads the DCC phases find nothing, so the marking runs on
the whole graph, as the isolated probes did.)
"""

from __future__ import annotations

from common import cached_high_girth, emit
from repro.analysis.experiments import sweep
from repro.api import SolverConfig, solve
from repro.core.marking import default_selection_probability
from repro.core.randomized import RandomizedParams


def _run_pipeline(graph, *, backoff, seed, selection_p=None, happiness_radius=None):
    config = SolverConfig(
        algorithm="randomized",
        validate=False,
        params=RandomizedParams(
            backoff=backoff,
            selection_p=selection_p,
            happiness_radius=happiness_radius,
            seed=seed,
        ),
    )
    return solve(graph, config)


def build_backoff_table():
    def run(point, seed):
        backoff = point["b"]
        graph = cached_high_girth(3000, 3, 8, seed)
        result = _run_pipeline(
            graph, backoff=backoff, seed=seed, happiness_radius=8
        )
        marking = result.phase_stats["4:marking"]
        shattering = result.phase_stats["5:happiness-layers"]
        return {
            "p_used*1e3": 1000 * marking["selection_p"],
            "t_per_1k": 1000 * marking["t_nodes"] / graph.n,
            "backed_off_%": 100
            * marking["backed_off"]
            / max(1, marking["initially_selected"]),
            "survival_%": 100 * shattering["leftover_nodes"] / graph.n,
        }

    table = sweep(
        "A1: backoff distance b sweep (Δ=3, preset p per b)",
        [{"b": b} for b in (5, 6, 8, 10, 12)],
        run,
        seeds=(0, 1, 2),
    )
    table.notes.append(
        "paper fixes b=6 (Δ>=4) / b=12 (Δ=3); b >= 5 is the structural floor "
        "(non-adjacent marks); larger b trades T-node density for stronger expansion"
    )
    table.notes.append(
        "measured in situ: full repro.api.solve runs, stats from phase_stats"
    )
    return table


def build_probability_table():
    def run(point, seed):
        graph = cached_high_girth(3000, 3, 8, seed)
        result = _run_pipeline(
            graph, backoff=6, seed=seed, selection_p=point["p"]
        )
        marking = result.phase_stats["4:marking"]
        return {
            "selected": marking["initially_selected"],
            "t_per_1k": 1000 * marking["t_nodes"] / graph.n,
            "backed_off_%": 100
            * marking["backed_off"]
            / max(1, marking["initially_selected"]),
        }

    preset = default_selection_probability(3, 6)
    grid = sorted({preset / 8, preset / 2, preset, preset * 4, preset * 16, 0.2})
    table = sweep(
        "A2: selection probability p sweep (Δ=3, b=6)",
        [{"p": round(p, 5)} for p in grid],
        run,
        seeds=(0, 1, 2),
    )
    table.notes.append(f"practical preset p = {preset:.5f} (≈ density maximiser)")
    table.notes.append("paper's asymptotic p = Δ^-6 = 0.00137 — same order as the preset")
    return table


def test_a1_backoff(benchmark):
    table = benchmark.pedantic(build_backoff_table, iterations=1, rounds=1)
    emit(table, "a1_backoff")
    assert table.rows


def test_a2_probability(benchmark):
    table = benchmark.pedantic(build_probability_table, iterations=1, rounds=1)
    emit(table, "a2_probability")
    # density peaks in the interior of the sweep, not at the extremes
    densities = [row.values["t_per_1k"] for row in table.rows]
    assert max(densities) >= densities[0]
    assert max(densities) >= densities[-1]


if __name__ == "__main__":
    emit(build_backoff_table(), "a1_backoff")
    emit(build_probability_table(), "a2_probability")
