"""A3 — ablation: the DCC detection radius r of phase (1).

The paper chooses r = O(1) for Δ >= 4 and r = Θ(log log n) for small Δ.
Larger r finds more degree-choosable components (easier coloring later,
larger B0) but pays r rounds of detection and deeper B-layers; smaller r
pushes more of the graph into the shattering machinery.  The sweep shows
the trade-off on a torus (DCCs everywhere) and a random cubic graph
(DCCs only on the few short cycles).
"""

from __future__ import annotations

from common import emit
from repro.analysis.experiments import sweep
from repro.api import SolverConfig, solve
from repro.core.randomized import RandomizedParams
from repro.graphs.generators import random_regular_graph, torus_grid


def build_table():
    def run(point, seed):
        family, r = point["family"], point["r"]
        if family == "torus":
            graph = torus_grid(40, 41)
            delta = 4
        else:
            graph = random_regular_graph(2048, 3, seed=seed)
            delta = 3
        # SolverConfig.params overrides the per-Δ presets knob-for-knob.
        config = SolverConfig(
            algorithm="randomized",
            params=RandomizedParams(dcc_radius=r, seed=seed, engine="hybrid"),
        )
        result = solve(graph, config)
        assert result.palette == delta
        return {
            "rounds": result.rounds,
            "dcc_nodes_%": 100 * result.stats["nodes_in_dccs"] / graph.n,
            "b0_components": result.stats["b0_components"],
            "h_size_%": 100 * result.stats["h_size"] / graph.n,
        }

    points = [
        {"family": family, "r": r}
        for family in ("torus", "random-cubic")
        for r in (1, 2, 3, 4)
    ]
    table = sweep("A3: DCC detection radius sweep", points, run, seeds=(0, 1))
    table.notes.append(
        "paper: r = O(1) for Δ >= 4 (detection radius only needs to catch "
        "short even cycles); larger r inflates B-layer depth without helping"
    )
    return table


def test_a3_dcc_radius(benchmark):
    table = benchmark.pedantic(build_table, iterations=1, rounds=1)
    emit(table, "a3_dcc_radius")
    torus_rows = [row for row in table.rows if row.params["family"] == "torus"]
    # on the torus every node is in a 4-cycle: detection at r >= 2 sees it
    for row in torus_rows:
        if row.params["r"] >= 2:
            assert row.values["dcc_nodes_%"] == 100.0


if __name__ == "__main__":
    emit(build_table(), "a3_dcc_radius")
