"""A4 — Remark 17: the SLOCAL locality profile of Δ-coloring.

The paper's Remark 17: Theorem 5 yields an SLOCAL(O(log_Δ n)) Δ-coloring.
This bench processes nodes in a shuffled adversarial order and reports
the locality actually consumed: the fraction of nodes that commit from a
<= 2-ball, the maximum locality, and the Theorem 5 bound.  The claim to
verify: max locality <= bound, and the expensive tail is thin.
"""

from __future__ import annotations

import random

from common import emit, sizes
from repro.analysis.experiments import sweep
from repro.api import solve
from repro.core.brooks import default_fix_radius
from repro.graphs.generators import random_regular_graph


def build_table():
    ns = sizes([512, 2048, 8192], [512, 2048, 8192, 32768])

    def run(point, seed):
        n, delta = point["n"], point["delta"]
        graph = random_regular_graph(n, delta, seed=seed)
        order = list(range(n))
        random.Random(seed).shuffle(order)
        result = solve(graph, algorithm="slocal", order=order)
        histogram = result.stats["locality_histogram"]
        cheap = sum(k for r, k in histogram.items() if int(r) <= 2)
        return {
            "max_locality": max(int(r) for r in histogram),
            "cheap_%": 100.0 * cheap / n,
            "bound": default_fix_radius(n, delta),
        }

    points = [{"delta": d, "n": n} for d in (3, 4) for n in ns]
    table = sweep("A4: SLOCAL Δ-coloring locality (Remark 17)", points, run, seeds=(0, 1))
    table.notes.append(
        "claim: max_locality <= bound = 2·log_{Δ-1} n + O(1); "
        "cheap_% shows how thin the expensive tail is"
    )
    return table


def test_a4_slocal(benchmark):
    table = benchmark.pedantic(build_table, iterations=1, rounds=1)
    emit(table, "a4_slocal")
    for row in table.rows:
        assert row.values["max_locality"] <= row.values["bound"]


if __name__ == "__main__":
    emit(build_table(), "a4_slocal")
