"""E10 — hot-primitive microbenchmarks: generation and trial rounds.

The two rng-stream-bound primitives the large-Δ pipeline leans on —
configuration-model generation (:func:`repro.graphs.generators.
random_regular_graph`) and the randomized (deg+1)-list trial rounds
(:func:`repro.primitives.list_coloring.list_coloring_random`) — got
vectorized fast paths with bit-identical pure-Python fallbacks.  This
bench pins their wall clock so the ``bench --smoke`` perf-regression
gate (``scripts/check_bench_regression.py``) catches either path rotting
back toward per-stub / per-node Python.

* **E10a** — ``random_regular_graph`` wall clock per (n, Δ), plus a
  regularity check (the repair loop must not silently degrade).
* **E10b** — one whole-graph (deg+1)-list instance per (n, Δ): trial
  rounds to completion with a Δ+1 palette, validity-asserted.

Unlike the E-series experiment tables this is not a paper-claim probe —
it deliberately isolates the primitives the ROADMAP "Performance notes"
rows measure.
"""

from __future__ import annotations

import random
import time

from common import emit, sizes
from repro.analysis.experiments import Row, Table
from repro.graphs.generators import random_regular_graph
from repro.graphs.validation import UNCOLORED, validate_coloring
from repro.local.rounds import RoundLedger
from repro.primitives.list_coloring import list_coloring_random


def build_generator_table():
    table = Table(title="E10a: random_regular_graph wall clock")
    for n in sizes([4096], [4096, 32768, 131072]):
        for delta in (3, 8):
            best = float("inf")
            for _ in range(2):
                started = time.perf_counter()
                graph = random_regular_graph(n, delta, seed=1)
                best = min(best, time.perf_counter() - started)
            assert all(graph.degree(v) == delta for v in range(n))
            table.rows.append(Row(
                params={"n": n, "delta": delta},
                values={"gen_ms": round(1000 * best, 1),
                        "edges": graph.num_edges},
            ))
    table.notes.append(
        "numpy pairing + vectorized conflict repair; bit-identical to the "
        "pure-Python fallback for every seed"
    )
    return emit(table, "e10a_generator")


def build_trial_rounds_table():
    table = Table(title="E10b: randomized (deg+1)-list trial rounds to completion")
    for n in sizes([4096], [4096, 32768, 131072]):
        for delta in (4, 8):
            graph = random_regular_graph(n, delta, seed=2)
            best = float("inf")
            iterations = 0
            for _ in range(2):
                colors = [UNCOLORED] * n
                started = time.perf_counter()
                stats = list_coloring_random(
                    graph, colors, set(range(n)), delta + 1,
                    RoundLedger(), random.Random(3),
                )
                best = min(best, time.perf_counter() - started)
                iterations = stats.iterations
            validate_coloring(graph, colors, max_colors=delta + 1)
            table.rows.append(Row(
                params={"n": n, "delta": delta},
                values={"trials_ms": round(1000 * best, 1),
                        "rounds": iterations},
            ))
    table.notes.append(
        "one rng draw per round; proposals + conflict resolution run "
        "vectorized over the CSR buffers"
    )
    return emit(table, "e10b_trial_rounds")


if __name__ == "__main__":
    build_generator_table()
    build_trial_rounds_table()
