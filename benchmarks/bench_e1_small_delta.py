"""E1 — Theorem 1 / Corollary 2: randomized Δ-coloring at constant Δ.

Paper claim: for Δ ∈ [3, O(1)], rounds = O((log log n)²) — exponentially
faster in n than the O(log³ n / log Δ) of [PS92/95].

Workload: random cubic graphs (the typical case) and high-girth cubic
graphs (the adversarial, DCC-free case where shattering does all the
work).  The table reports measured rounds against the predicted shapes
c·(log log n)² (ours) and c·log³ n (baseline), fitted by least squares.
The measured log-log slope ≈ 0 confirms the nearly-n-independent behaviour.
"""

from __future__ import annotations

import math

from common import cached_high_girth, emit, sizes
from repro.analysis.experiments import sweep
from repro.analysis.stats import fit_against, loglog_slope
from repro.api import solve
from repro.graphs.generators import random_regular_graph


def build_table():
    ns = sizes([512, 2048, 8192], [512, 2048, 8192, 32768, 131072])

    def run(point, seed):
        n = point["n"]
        if point["family"] == "high-girth":
            graph = cached_high_girth(min(n, 32768), 3, 9, seed)
        else:
            graph = random_regular_graph(n, 3, seed=seed)
        result = solve(graph, algorithm="randomized-small", seed=seed)
        assert result.palette == 3
        return {
            "rounds": result.rounds,
            "t_nodes": result.stats["t_nodes"],
            "leftover": result.stats["leftover_nodes"],
            "fallbacks": result.stats["fallbacks"],
        }

    points = [
        {"family": family, "n": n}
        for family in ("random", "high-girth")
        for n in ns
    ]
    table = sweep("E1: small-Δ randomized (Δ=3), rounds vs n", points, run, seeds=(0, 1))

    def loglog2(n):
        return math.log2(max(2.0, math.log2(n))) ** 2

    for family in ("random", "high-girth"):
        rows = [row for row in table.rows if row.params["family"] == family]
        xs = [row.params["n"] for row in rows]
        ys = [row.values["rounds"] for row in rows]
        c_fit = fit_against(xs, ys, loglog2)
        for row in rows:
            row.values["pred_c*(loglog n)^2"] = round(c_fit * loglog2(row.params["n"]), 1)
        table.notes.append(
            f"{family}: measured log-log slope d(rounds)/d(n) = {loglog_slope(xs, ys):.3f} "
            "(paper predicts ~0: rounds are polyloglog in n)"
        )
    table.notes.append(
        "paper shape: O((log log n)^2) [Cor 2]; baseline [PS]: O(log^3 n/log Δ) — see E4"
    )
    return table


def test_e1_small_delta(benchmark):
    table = benchmark.pedantic(build_table, iterations=1, rounds=1)
    emit(table, "e1_small_delta")
    assert table.rows


if __name__ == "__main__":
    emit(build_table(), "e1_small_delta")
