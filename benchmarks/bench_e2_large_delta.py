"""E2 — Theorem 3: randomized Δ-coloring for Δ >= 4.

Paper claim: rounds = O(log Δ) + 2^{O(√log log n)}.  Measured two ways:

* **Δ-sweep at fixed n** — rounds should grow ~logarithmically in Δ
  (the hybrid list engine trials are the O(log Δ) term);
* **n-sweep at fixed Δ** — rounds should be nearly flat (the
  2^{O(√log log n)} term is ≤ a small constant for every feasible n:
  log log n < 4.4 up to n = 10⁷).
"""

from __future__ import annotations

import math

from common import emit, sizes
from repro.analysis.experiments import sweep
from repro.analysis.stats import fit_against, loglog_slope
from repro.api import solve
from repro.graphs.generators import random_regular_graph


def build_delta_sweep():
    deltas = sizes([4, 8, 16], [4, 8, 16, 32, 64])
    n = 2048 if not sizes([0], [1])[0] else 2048

    def run(point, seed):
        graph = random_regular_graph(n, point["delta"], seed=seed)
        result = solve(graph, algorithm="randomized-large", seed=seed)
        assert result.palette == point["delta"]
        return {
            "rounds": result.rounds,
            "b_layers_rounds": sum(
                v for k, v in result.phase_rounds.items() if k.startswith("8:")
            ),
            "c_layers_rounds": sum(
                v for k, v in result.phase_rounds.items() if k.startswith("7:")
            ),
        }

    table = sweep(
        f"E2a: large-Δ randomized, rounds vs Δ (n={n})",
        [{"delta": d} for d in deltas],
        run,
        seeds=(0, 1),
    )
    xs = [row.params["delta"] for row in table.rows]
    ys = [row.values["rounds"] for row in table.rows]
    c_fit = fit_against(xs, ys, lambda d: math.log2(d))
    for row in table.rows:
        row.values["pred_c*logΔ"] = round(c_fit * math.log2(row.params["delta"]), 1)
    table.notes.append("paper shape: O(log Δ) + 2^{O(√log log n)} [Thm 3]")
    return table


def build_n_sweep():
    # Quick mode reaches 32768 now that the CSR core + vectorized DCC
    # detection sustain it: the n-term claim (2^{O(√log log n)}) is about
    # growth in n, so the sweep should cover the regime where n actually
    # stresses the pipeline.
    ns = sizes([512, 2048, 8192, 32768], [512, 2048, 8192, 32768, 131072])

    def run(point, seed):
        graph = random_regular_graph(point["n"], 8, seed=seed)
        result = solve(graph, algorithm="randomized-large", seed=seed)
        assert result.palette == 8
        return {"rounds": result.rounds}

    table = sweep(
        "E2b: large-Δ randomized, rounds vs n (Δ=8)",
        [{"n": n} for n in ns],
        run,
        seeds=(0, 1),
    )
    xs = [row.params["n"] for row in table.rows]
    ys = [row.values["rounds"] for row in table.rows]
    table.notes.append(
        f"measured log-log slope d(rounds)/d(n) = {loglog_slope(xs, ys):.3f} "
        "(paper predicts ~0: the n-term is subpolylogarithmic)"
    )
    return table


def test_e2_delta_sweep(benchmark):
    table = benchmark.pedantic(build_delta_sweep, iterations=1, rounds=1)
    emit(table, "e2a_delta_sweep")
    assert table.rows


def test_e2_n_sweep(benchmark):
    table = benchmark.pedantic(build_n_sweep, iterations=1, rounds=1)
    emit(table, "e2b_n_sweep")
    assert table.rows


if __name__ == "__main__":
    emit(build_delta_sweep(), "e2a_delta_sweep")
    emit(build_n_sweep(), "e2b_n_sweep")
