"""E3 — Theorem 4: deterministic Δ-coloring.

Paper claim: O(√Δ · log^{-3/2}Δ · log² n) rounds.  With the documented
substitutions (AGLP ruling forest for SEW13, color-class list engine for
FHK16) the implemented shape is O(Δ² · log² n / log² Δ): the log² n factor
— the paper's headline n-dependence — is preserved (layer count O(R·log n)
times an n-independent per-layer cost), the Δ-polynomial is coarser.

The table reports measured rounds against a fitted c·log² n / log² Δ and
the measured log-log slope in n (predicted ≈ 2... minus the log Δ
corrections; the layer count saturates once R·log n reaches the graph's
diameter, which pulls small-n slopes down).
"""

from __future__ import annotations

import math

from common import emit, sizes
from repro.analysis.experiments import sweep
from repro.analysis.stats import fit_against, loglog_slope
from repro.api import solve
from repro.graphs.generators import random_regular_graph


def build_table():
    ns = sizes([512, 2048, 8192], [512, 2048, 8192, 32768])
    deltas = sizes([3, 5], [3, 5, 8])

    def run(point, seed):
        graph = random_regular_graph(point["n"], point["delta"], seed=seed)
        result = solve(graph, algorithm="deterministic")
        assert result.palette == point["delta"]
        return {
            "rounds": result.rounds,
            "layers": result.stats["num_layers"],
            "b0": result.stats["b0_size"],
        }

    points = [{"delta": d, "n": n} for d in deltas for n in ns]
    table = sweep("E3: deterministic Δ-coloring, rounds vs n", points, run, seeds=(0,))

    for d in deltas:
        rows = [row for row in table.rows if row.params["delta"] == d]
        xs = [row.params["n"] for row in rows]
        ys = [row.values["rounds"] for row in rows]
        def shape(n):
            return math.log2(n) ** 2

        c_fit = fit_against(xs, ys, shape)
        for row in rows:
            row.values["pred_c*log^2 n"] = round(c_fit * shape(row.params["n"]), 0)
        table.notes.append(
            f"Δ={d}: measured log-log slope = {loglog_slope(xs, ys):.2f} "
            "(upper bound log² n; measured ~Δ²·log n because R = 4·log_{Δ-1} n "
            "exceeds the diameter of random regular graphs, so B0 is a single "
            "root and the layer count equals the diameter ≈ log n)"
        )
    table.notes.append(
        "substitutions (DESIGN.md §4.1-4.2): per-layer cost O(Δ²) instead of "
        "O(√Δ·polylog Δ); layer count O(R log n) instead of O(R²)"
    )
    return table


def test_e3_deterministic(benchmark):
    table = benchmark.pedantic(build_table, iterations=1, rounds=1)
    emit(table, "e3_deterministic")
    assert table.rows


if __name__ == "__main__":
    emit(build_table(), "e3_deterministic")
