"""E4 — the headline comparison: new algorithms vs [PS92/95].

Paper claim: both new algorithms beat the 25-year-old O(log³ n / log Δ)
baseline, with a gap that *grows* with n (exponential separation in the
constant-degree case: polyloglog vs polylog).

The table runs all three on identical instances and reports rounds plus
the speedup factor; the note gives the measured growth exponents.  "Who
wins, by roughly what factor, where crossovers fall" is the deliverable:
the new algorithms should win everywhere beyond toy sizes, by a factor
that increases with n.
"""

from __future__ import annotations

from common import emit, sizes
from repro.analysis.experiments import sweep
from repro.analysis.stats import loglog_slope
from repro.api import solve
from repro.graphs.generators import random_regular_graph


def build_table():
    ns = sizes([512, 2048, 8192], [512, 2048, 8192, 32768, 131072])
    deltas = sizes([3, 8], [3, 8, 16])

    def run(point, seed):
        n, delta = point["n"], point["delta"]
        graph = random_regular_graph(n, delta, seed=seed)
        # "randomized" is the paper dispatch: Thm 1 for Δ=3, Thm 3 for Δ≥4.
        new = solve(graph, algorithm="randomized", seed=seed)
        old = solve(graph, algorithm="ps", seed=seed)
        assert new.palette == delta and old.palette == delta
        return {
            "new_rounds": new.rounds,
            "ps_rounds": old.rounds,
            "speedup": old.rounds / max(1, new.rounds),
        }

    points = [{"delta": d, "n": n} for d in deltas for n in ns]
    table = sweep(
        "E4: new algorithms vs Panconesi–Srinivasan baseline", points, run, seeds=(0, 1)
    )
    for d in deltas:
        rows = [row for row in table.rows if row.params["delta"] == d]
        xs = [row.params["n"] for row in rows]
        new_slope = loglog_slope(xs, [row.values["new_rounds"] for row in rows])
        old_slope = loglog_slope(xs, [row.values["ps_rounds"] for row in rows])
        table.notes.append(
            f"Δ={d}: growth exponent new={new_slope:.2f} vs PS={old_slope:.2f} "
            "(paper: polyloglog vs log³n/logΔ — the gap must widen with n)"
        )
    return table


def test_e4_baseline(benchmark):
    table = benchmark.pedantic(build_table, iterations=1, rounds=1)
    emit(table, "e4_baseline")
    for row in table.rows:
        if row.params["n"] >= 2048:
            assert row.values["speedup"] > 1.0, "new algorithm must win beyond toy sizes"


if __name__ == "__main__":
    emit(build_table(), "e4_baseline")
