"""E5 — Theorem 5 (distributed Brooks): repair locality.

Paper claim: a single uncolored node can always be completed by changing
colors only within its (2·log_{Δ-1} n)-neighbourhood.

Workload: color G−v from scratch (the genuine Theorem 5 precondition —
uncoloring a properly colored node would trivially leave its old color
free), then repair v and measure the radius of the recolored region and
the number of recolored nodes, against the 2·log_{Δ-1} n bound.

Facade-native since PR 3: the G−v base coloring goes through
:func:`repro.api.solve` with the ``components`` dispatcher (which colors
every component of the punctured graph with its own optimum — ≤ Δ colors
whenever G was connected) instead of a hand-rolled per-component
``degree_list_color`` loop.  The repair itself stays on
:func:`repro.core.brooks.fix_uncolored_node`: single-node repair is the
primitive under measurement and deliberately has no facade wrapper.
"""

from __future__ import annotations

import random

from common import emit, sizes
from repro.analysis.experiments import sweep
from repro.api import SolverConfig, solve
from repro.core.brooks import default_fix_radius, fix_uncolored_node
from repro.graphs.generators import random_regular_graph
from repro.graphs.validation import UNCOLORED, validate_coloring
from repro.local.rounds import RoundLedger


def _color_minus_v(graph, v, delta, rng):
    """A proper ≤Δ-coloring of G−v (None when one doesn't exist, e.g. a
    Δ-regular clique component in a disconnected instance).

    The ``components`` dispatcher colors every graph (per-component
    optimum), so engine errors are *not* swallowed here — a raise means a
    genuine regression and should crash the bench; only a palette that
    exceeds Δ is the legitimate "no Δ-coloring of G−v exists" outcome.
    """
    colors = [UNCOLORED] * graph.n
    rest = [u for u in range(graph.n) if u != v]
    sub, originals = graph.subgraph(rest)
    result = solve(
        sub,
        SolverConfig(
            algorithm="components", seed=rng.randrange(2**31), validate=True
        ),
    )
    if result.palette > delta or max(result.colors, default=0) > delta:
        return None
    for i, u in enumerate(originals):
        colors[u] = result.colors[i]
    for _ in range(4 * graph.n):
        u = rng.randrange(graph.n)
        if u == v:
            continue
        used = {colors[w] for w in graph.adj[u] if w != v and colors[w] != UNCOLORED}
        options = [c for c in range(1, delta + 1) if c not in used and c != colors[u]]
        if options:
            colors[u] = rng.choice(options)
    return colors


def build_table():
    ns = sizes([256, 1024, 4096], [256, 1024, 4096, 16384])
    deltas = [3, 4]
    repairs_per_point = 6

    def run(point, seed):
        n, delta = point["n"], point["delta"]
        graph = random_regular_graph(n, delta, seed=seed)
        rng = random.Random(seed * 31 + 7)
        radii, recolored, rounds, dcc_mode = [], [], [], 0
        done = 0
        while done < repairs_per_point:
            v = rng.randrange(n)
            colors = _color_minus_v(graph, v, delta, rng)
            if colors is None:
                continue
            ledger = RoundLedger()
            result = fix_uncolored_node(graph, colors, v, delta, ledger=ledger)
            validate_coloring(graph, colors, max_colors=delta)
            radii.append(result.radius)
            recolored.append(len(result.recolored))
            rounds.append(result.rounds)
            dcc_mode += result.mode == "dcc"
            done += 1
        return {
            "max_radius": max(radii),
            "mean_recolored": sum(recolored) / len(recolored),
            "max_rounds": max(rounds),
            "dcc_repairs": dcc_mode,
            "bound_2log": default_fix_radius(n, delta),
        }

    points = [{"delta": d, "n": n} for d in deltas for n in ns]
    table = sweep("E5: Brooks repair locality (Thm 5)", points, run, seeds=(0, 1))
    table.notes.append(
        "claim: max_radius <= bound_2log = 2·log_{Δ-1} n + O(1) on every row"
    )
    table.notes.append(
        "G−v base colorings via repro.api.solve(algorithm='components')"
    )
    return table


def test_e5_brooks(benchmark):
    table = benchmark.pedantic(build_table, iterations=1, rounds=1)
    emit(table, "e5_brooks")
    for row in table.rows:
        assert row.values["max_radius"] <= row.values["bound_2log"]


if __name__ == "__main__":
    emit(build_table(), "e5_brooks")
