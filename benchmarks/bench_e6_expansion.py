"""E6 — Lemmas 12/14/15: DCC-free neighbourhoods expand.

Paper claims, per BFS level size |B_r(v)|:

* Lemma 15 (no marking, all degrees Δ, no DCC within r):
  |B_r| >= (Δ-1)^{r/2};
* Lemma 12 (after marking, Δ >= 4, b = 6): |B_r| >= (Δ-2)^{r/2};
* Lemma 14 (after marking, Δ = 3, b = 12): |B_r| >= 4^{r/6}.

Workload: high-girth regular graphs (girth > 2r+2, so no DCC within r of
anyone); the marking rows apply the phase-4 marking process and BFS only
through unmarked nodes.  Reported: min and mean measured level size vs
the lemma's bound — min >= bound is the pass criterion.

The expansion probe needs the marked node *set* to filter the BFS, which
is deliberately below the :mod:`repro.api` facade (results carry phase
*statistics*, not phase artifacts), so the probe drives
``marking_process`` directly.  To tie the probe to the production path,
each marking row also reports ``pipe_t_per_1k`` — the T-node density the
*same* (p, b) parameters produce inside a full :func:`repro.api.solve`
run — which must sit in the same regime as the probe's marking.
"""

from __future__ import annotations

import random

import common
from common import cached_high_girth, emit
from repro.analysis.expansion import (
    lemma12_bound,
    lemma14_bound,
    lemma15_bound,
    measure_expansion,
)
from repro.analysis.experiments import Row, Table
from repro.api import SolverConfig, solve
from repro.core.marking import marking_process
from repro.core.randomized import RandomizedParams
from repro.graphs.validation import UNCOLORED
from repro.local.rounds import RoundLedger


def _pipeline_t_density(graph, p, backoff, seed) -> float:
    """T-nodes per 1k nodes when the same knobs run in the real pipeline."""
    result = solve(
        graph,
        SolverConfig(
            algorithm="randomized",
            validate=False,
            params=RandomizedParams(selection_p=p, backoff=backoff, seed=seed),
        ),
    )
    return 1000 * result.phase_stats["4:marking"]["t_nodes"] / graph.n


def build_table():
    table = Table(title="E6: BFS expansion in DCC-free graphs (Lemmas 12/14/15)")
    cases = [
        # (delta, n, girth, radius, marking backoff or None, bound fn, label)
        (3, 1500, 10, 4, None, lemma15_bound(3, 4), "L15 Δ=3"),
        (4, 1200, 7, 2, None, lemma15_bound(4, 2), "L15 Δ=4"),
        (3, 1500, 10, 4, 12, lemma14_bound(4), "L14 Δ=3 b=12"),
        (4, 1200, 7, 2, 6, lemma12_bound(4, 2), "L12 Δ=4 b=6"),
        (5, 900, 6, 2, 6, lemma12_bound(5, 2), "L12 Δ=5 b=6"),
    ]
    if common.SMOKE:
        cases = cases[1:2]  # one cheap case: Δ=4, n=1200, girth 7
    for delta, n, girth, radius, backoff, bound, label in cases:
        mins, means, pipe_densities = [], [], []
        for seed in (0, 1):
            graph = cached_high_girth(n, delta, girth, seed)
            allowed = None
            if backoff is not None:
                colors = [UNCOLORED] * graph.n
                marking = marking_process(
                    graph, set(range(graph.n)), colors, 0.002, backoff,
                    random.Random(seed), RoundLedger(),
                )
                allowed = {v for v in range(graph.n) if v not in marking.marked}
                pipe_densities.append(
                    _pipeline_t_density(graph, 0.002, backoff, seed)
                )
            sample = measure_expansion(
                graph, radius, num_roots=30, allowed=allowed, rng=random.Random(seed)
            )
            mins.append(sample.min_at_radius())
            means.append(sample.mean_at_radius())
        table.rows.append(
            Row(
                params={"lemma": label, "n": n, "r": radius},
                values={
                    "min|B_r|": min(mins),
                    "mean|B_r|": round(sum(means) / len(means), 1),
                    "bound": bound,
                    "pipe_t_per_1k": round(
                        sum(pipe_densities) / len(pipe_densities), 2
                    )
                    if pipe_densities
                    else 0.0,
                },
            )
        )
    table.notes.append("pass criterion: min|B_r| >= bound on every row")
    table.notes.append(
        "pipe_t_per_1k: T-node density of the same (p, b) inside a full "
        "repro.api.solve run (0.0 on the unmarked Lemma 15 rows)"
    )
    return table


def test_e6_expansion(benchmark):
    table = benchmark.pedantic(build_table, iterations=1, rounds=1)
    emit(table, "e6_expansion")
    for row in table.rows:
        assert row.values["min|B_r|"] >= row.values["bound"], row.params


if __name__ == "__main__":
    emit(build_table(), "e6_expansion")
