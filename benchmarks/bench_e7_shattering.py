"""E7 — Lemmas 23/24: the shattering process.

Paper claims:

* Lemma 23: after marking, a node fails to find a T-node within its
  radius-r neighbourhood with probability <= Δ^{-Θ(r)} — i.e. the
  *survival rate* decays rapidly with the happiness radius;
* Lemma 24: the surviving (unhappy) nodes form connected components of
  size O(poly Δ · log n).

Workload: high-girth cubic/4-regular graphs (B0 empty, everything goes
through shattering).  We sweep the happiness radius and measure the
survival fraction and the leftover component-size distribution against
the log n yardstick.
"""

from __future__ import annotations

import math
import random

import common
from common import cached_high_girth, emit, sizes
from repro.analysis.experiments import sweep
from repro.core.happiness import build_happiness_layers
from repro.core.marking import default_selection_probability, marking_process
from repro.graphs.validation import UNCOLORED
from repro.local.rounds import RoundLedger


def _components_sizes(graph, members):
    seen, sizes_out = set(), []
    for start in members:
        if start in seen:
            continue
        seen.add(start)
        stack, size = [start], 1
        while stack:
            u = stack.pop()
            for w in graph.adj[u]:
                if w in members and w not in seen:
                    seen.add(w)
                    stack.append(w)
                    size += 1
        sizes_out.append(size)
    return sizes_out


def build_table():
    radii = sizes([4, 6, 8, 10], [4, 6, 8, 10, 12, 14])
    # T-node density is ~1/(e·|B_b|): Δ=4 needs a larger graph and the
    # minimum backoff (5) to see more than a couple of T-nodes.
    configs = {3: (4096, 8, 6), 4: (8192, 7, 5)}
    if common.SMOKE:
        configs = {3: (1024, 8, 6), 4: (1024, 7, 5)}

    def run(point, seed):
        delta, r = point["delta"], point["r"]
        n, girth, backoff = configs[delta]
        graph = cached_high_girth(n, delta, girth, seed)
        h_nodes = set(range(graph.n))
        colors = [UNCOLORED] * graph.n
        p = default_selection_probability(delta, backoff)
        marking = marking_process(
            graph, h_nodes, colors, p, backoff, random.Random(seed), RoundLedger()
        )
        happiness = build_happiness_layers(
            graph, colors, h_nodes, marking, delta, r, RoundLedger()
        )
        component_sizes = _components_sizes(graph, happiness.leftover)
        return {
            "t_nodes": len(marking.t_nodes),
            "survival_%": 100.0 * len(happiness.leftover) / graph.n,
            "components": len(component_sizes),
            "max_comp": max(component_sizes, default=0),
        }

    points = [{"delta": d, "r": r} for d in (3, 4) for r in radii]
    table = sweep(
        "E7: shattering — survival and leftover components",
        points, run, seeds=(0, 1, 2),
    )
    table.notes.append(
        "Lemma 23: survival_% must decay rapidly in r (theory: Δ^{-Θ(r)})"
    )
    table.notes.append(
        "Lemma 24 yardstick: components of size O(polyΔ·log n); "
        f"log2(n): Δ=3 -> {math.log2(configs[3][0]):.0f}, Δ=4 -> {math.log2(configs[4][0]):.0f}"
    )
    table.notes.append(
        f"configs (n, girth, backoff): {configs}; p = practical preset per (Δ, b)"
    )
    return table


def test_e7_shattering(benchmark):
    table = benchmark.pedantic(build_table, iterations=1, rounds=1)
    emit(table, "e7_shattering")
    # survival must be monotonically (weakly) decreasing in r per delta
    for delta in (3, 4):
        rows = [row for row in table.rows if row.params["delta"] == delta]
        survivals = [row.values["survival_%"] for row in rows]
        assert survivals[-1] <= survivals[0]


if __name__ == "__main__":
    emit(build_table(), "e7_shattering")
