"""E7 — Lemmas 23/24: the shattering process.

Paper claims:

* Lemma 23: after marking, a node fails to find a T-node within its
  radius-r neighbourhood with probability <= Δ^{-Θ(r)} — i.e. the
  *survival rate* decays rapidly with the happiness radius;
* Lemma 24: the surviving (unhappy) nodes form connected components of
  size O(poly Δ · log n).

Workload: high-girth cubic/4-regular graphs (B0 empty, everything goes
through shattering).  We sweep the happiness radius and measure the
survival fraction and the leftover component-size distribution against
the log n yardstick.

Facade-native since PR 3: each point is a full
:func:`repro.api.solve` run with ``RandomizedParams(backoff=b,
happiness_radius=r)``; survival and leftover-component shape come from
the result's ``phase_stats`` ("5:happiness-layers" and
"6:small-components") rather than from hand-driven
``marking_process``/``build_happiness_layers`` calls.  Because these
workloads are high-girth, the DCC phases remove nothing and the
shattering machinery sees the whole graph — the same regime the isolated
probes measured.
"""

from __future__ import annotations

import math

import common
from common import cached_high_girth, emit, sizes
from repro.analysis.experiments import sweep
from repro.api import SolverConfig, solve
from repro.core.randomized import RandomizedParams


def build_table():
    radii = sizes([4, 6, 8, 10], [4, 6, 8, 10, 12, 14])
    # T-node density is ~1/(e·|B_b|): Δ=4 needs a larger graph and the
    # minimum backoff (5) to see more than a couple of T-nodes.
    configs = {3: (4096, 8, 6), 4: (8192, 7, 5)}
    if common.SMOKE:
        configs = {3: (1024, 8, 6), 4: (1024, 7, 5)}

    def run(point, seed):
        delta, r = point["delta"], point["r"]
        n, girth, backoff = configs[delta]
        graph = cached_high_girth(n, delta, girth, seed)
        result = solve(
            graph,
            SolverConfig(
                algorithm="randomized",
                validate=False,
                params=RandomizedParams(
                    backoff=backoff, happiness_radius=r, seed=seed
                ),
            ),
        )
        marking = result.phase_stats["4:marking"]
        shattering = result.phase_stats["5:happiness-layers"]
        leftover = result.phase_stats["6:small-components"]
        return {
            "t_nodes": marking["t_nodes"],
            "survival_%": 100.0 * shattering["leftover_nodes"] / graph.n,
            "components": leftover["leftover_components"],
            "max_comp": leftover["leftover_max_component"],
        }

    points = [{"delta": d, "r": r} for d in (3, 4) for r in radii]
    table = sweep(
        "E7: shattering — survival and leftover components",
        points, run, seeds=(0, 1, 2),
    )
    table.notes.append(
        "Lemma 23: survival_% must decay rapidly in r (theory: Δ^{-Θ(r)})"
    )
    table.notes.append(
        "Lemma 24 yardstick: components of size O(polyΔ·log n); "
        f"log2(n): Δ=3 -> {math.log2(configs[3][0]):.0f}, Δ=4 -> {math.log2(configs[4][0]):.0f}"
    )
    table.notes.append(
        f"configs (n, girth, backoff): {configs}; p = practical preset per (Δ, b)"
    )
    table.notes.append(
        "measured in situ: full repro.api.solve runs, stats from phase_stats"
    )
    return table


def test_e7_shattering(benchmark):
    table = benchmark.pedantic(build_table, iterations=1, rounds=1)
    emit(table, "e7_shattering")
    # survival must be monotonically (weakly) decreasing in r per delta
    for delta in (3, 4):
        rows = [row for row in table.rows if row.params["delta"] == delta]
        survivals = [row.values["survival_%"] for row in rows]
        assert survivals[-1] <= survivals[0]


if __name__ == "__main__":
    emit(build_table(), "e7_shattering")
