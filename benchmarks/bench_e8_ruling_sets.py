"""E8 — Lemma 20: the ruling-set toolbox.

The paper's Lemma 20 collects four ruling-set constructions.  This bench
measures the engines this reproduction substitutes for them (DESIGN.md
§4.2-4.3) on a common workload: rounds charged, ruling-set size, and the
*measured* domination radius β (often far better than the guarantee).
Also includes the MPX clustering used by the Lemma 24 substitute, and —
since PR 3 — the ruling forest as it actually runs *inside* the
deterministic pipeline, observed through :func:`repro.api.solve`'s phase
ledger rather than by re-driving the primitive (the engines themselves
are the measured subjects and stay primitive-level by design).
"""

from __future__ import annotations

import random

import common
from common import emit
from repro.analysis.experiments import Row, Table
from repro.api import SolverConfig, solve
from repro.graphs.bfs import bfs_distances
from repro.graphs.generators import random_regular_graph
from repro.local.rounds import RoundLedger
from repro.primitives.decomposition import mpx_clustering
from repro.primitives.linial import linial_coloring
from repro.primitives.ruling_sets import (
    ruling_forest_aglp,
    ruling_set_from_coloring,
    ruling_set_random,
)


def _measured_beta(graph, ruling):
    dist = bfs_distances(graph, ruling)
    return max(dist)


def build_table():
    n = 1024 if common.SMOKE else 4096
    graph = random_regular_graph(n, 4, seed=1)
    linial = linial_coloring(graph)
    table = Table(title=f"E8: ruling-set engines (Lemma 20 substitutes), n={n}, Δ=4")

    # (2,1): deterministic MIS by color classes  [Lemma 20(1) substitute]
    ledger = RoundLedger()
    result = ruling_set_from_coloring(graph, linial.colors, linial.palette, ledger)
    table.rows.append(Row(
        params={"engine": "color-class MIS (L20.1)", "alpha": 2},
        values={"rounds": ledger.total_rounds, "size": len(result.nodes),
                "beta_measured": _measured_beta(graph, result.nodes),
                "beta_guarantee": 1},
    ))

    # (k, (k-1)·log n): deterministic AGLP  [Lemma 20(2) substitute]
    for k in (3, 6):
        ledger = RoundLedger()
        result = ruling_forest_aglp(graph, k, ledger)
        table.rows.append(Row(
            params={"engine": f"AGLP forest k={k} (L20.2)", "alpha": k},
            values={"rounds": ledger.total_rounds, "size": len(result.nodes),
                    "beta_measured": _measured_beta(graph, result.nodes),
                    "beta_guarantee": result.beta},
        ))

    # (k+1, k): randomized power-graph Luby  [Lemma 20(3) substitute]
    for k in (2, 3):
        ledger = RoundLedger()
        result = ruling_set_random(graph, k, ledger, random.Random(2))
        table.rows.append(Row(
            params={"engine": f"power-Luby k={k} (L20.3)", "alpha": k + 1},
            values={"rounds": ledger.total_rounds, "size": len(result.nodes),
                    "beta_measured": _measured_beta(graph, result.nodes),
                    "beta_guarantee": k},
        ))

    # (k+1, k): Ghaffari desire levels, capped + finisher  [Lemma 20(4)]
    ledger = RoundLedger()
    result = ruling_set_random(
        graph, 2, ledger, random.Random(3), method="ghaffari", max_iterations=10
    )
    table.rows.append(Row(
        params={"engine": "power-Ghaffari k=2 (L20.4)", "alpha": 3},
        values={"rounds": ledger.total_rounds, "size": len(result.nodes),
                "beta_measured": _measured_beta(graph, result.nodes),
                "beta_guarantee": 2},
    ))

    # The same engine in production position: the deterministic pipeline's
    # ruling forest, read from the facade's phase ledger (rounds charged in
    # situ; β is the certified ruling_distance — the per-node sets stay
    # inside the engine).
    result = solve(graph, SolverConfig(algorithm="deterministic", validate=False))
    ruling = result.phase_stats["1:ruling-forest"]
    table.rows.append(Row(
        params={"engine": "in-pipeline forest (solve)", "alpha": ruling["ruling_distance"]},
        values={"rounds": result.phase_rounds["1:ruling-forest"],
                "size": ruling["b0_size"],
                "beta_measured": ruling["ruling_distance"],
                "beta_guarantee": ruling["ruling_distance"]},
    ))

    # MPX clustering (Lemma 24 (P3)/(P4) substitute)
    clustering = mpx_clustering(graph, set(range(graph.n)), beta=0.5, rng=random.Random(4))
    table.rows.append(Row(
        params={"engine": "MPX clustering β=0.5 (L24)", "alpha": 1},
        values={"rounds": clustering.max_radius, "size": len(clustering.centers),
                "beta_measured": clustering.max_radius,
                "beta_guarantee": clustering.max_radius},
    ))
    table.notes.append("pass criterion: beta_measured <= beta_guarantee for ruling sets")
    table.notes.append(
        "in-pipeline row: β is the certified guarantee (the facade exposes "
        "phase stats, not the ruling set itself)"
    )
    return table


def test_e8_ruling_sets(benchmark):
    table = benchmark.pedantic(build_table, iterations=1, rounds=1)
    emit(table, "e8_ruling_sets")
    for row in table.rows:
        assert row.values["beta_measured"] <= row.values["beta_guarantee"]


if __name__ == "__main__":
    emit(build_table(), "e8_ruling_sets")
