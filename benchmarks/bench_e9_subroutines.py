"""E9 — subroutine costs: Linial (log* n) and (deg+1)-list coloring.

Paper claims measured here:

* Linial's coloring reaches an O(Δ²) palette in O(log* n) rounds — the
  iteration count must be essentially flat over many orders of magnitude;
* Theorem 19's engine shape: random-trial list coloring converges in
  O(log n) rounds; the hybrid engine in O(log Δ) + small tail; the
  deterministic engine (Theorem 18 substitute) in exactly `palette` =
  O(Δ²) rounds independent of n.

The per-engine probes isolate one (deg+1)-list instance — that
isolation is the point, so they stay on the primitives.  Since PR 3
the E9b table also reports ``pipe_rounds`` per engine: the total LOCAL
rounds when the *same* engine runs in production position inside a full
:func:`repro.api.solve` pipeline (``RandomizedParams(engine=...)``),
tying the isolated shapes to end-to-end facade runs.
"""

from __future__ import annotations

import math
import random

from common import emit, sizes
from repro.analysis.experiments import Row, Table, sweep
from repro.api import SolverConfig, solve
from repro.core.randomized import RandomizedParams
from repro.graphs.generators import random_regular_graph
from repro.graphs.validation import UNCOLORED, validate_coloring
from repro.local.rounds import RoundLedger
from repro.primitives.linial import linial_coloring, reduction_schedule
from repro.primitives.list_coloring import (
    list_coloring_deterministic,
    list_coloring_hybrid,
    list_coloring_random,
)


def build_linial_table():
    table = Table(title="E9a: Linial coloring — palette and iterations (log* n)")
    for delta in (3, 8, 16):
        for exponent in (3, 6, 9, 12):
            n = 10 ** exponent
            schedule = reduction_schedule(n, delta)
            palette = schedule[-1][2] ** 2 if schedule else n
            table.rows.append(Row(
                params={"delta": delta, "n": f"1e{exponent}"},
                values={"iterations": len(schedule),
                        "final_palette": palette,
                        "palette/Δ²": round(palette / delta**2, 1)},
            ))
    table.notes.append(
        "iterations must be O(log* n): flat over 9 orders of magnitude of n"
    )
    # also run one real instance end-to-end per delta
    for delta in (3, 8):
        graph = random_regular_graph(2048, delta, seed=1)
        result = linial_coloring(graph)
        table.rows.append(Row(
            params={"delta": delta, "n": "2048 (executed)"},
            values={"iterations": result.iterations, "final_palette": result.palette,
                    "palette/Δ²": round(result.palette / delta**2, 1)},
        ))
    return table


def build_list_coloring_table():
    ns = sizes([512, 2048, 8192], [512, 2048, 8192, 32768])

    def run(point, seed):
        n, delta = point["n"], 6
        graph = random_regular_graph(n, delta, seed=seed)
        out = {}
        for engine in ("random", "hybrid", "deterministic"):
            colors = [UNCOLORED] * graph.n
            ledger = RoundLedger()
            rng = random.Random(seed)
            if engine == "random":
                list_coloring_random(
                    graph, colors, set(range(n)), delta + 1, ledger, rng
                )
            elif engine == "hybrid":
                list_coloring_hybrid(
                    graph, colors, set(range(n)), delta + 1, ledger, rng
                )
            else:
                linial = linial_coloring(graph)
                list_coloring_deterministic(
                    graph, colors, set(range(n)), delta + 1,
                    linial.colors, linial.palette, ledger,
                )
            validate_coloring(graph, colors, max_colors=delta + 1)
            out[f"{engine}_rounds"] = ledger.total_rounds
            result = solve(
                graph,
                SolverConfig(
                    algorithm="randomized-large",
                    validate=False,
                    params=RandomizedParams(engine=engine, seed=seed),
                ),
            )
            out[f"{engine}_pipe_rounds"] = result.rounds
        return out

    table = sweep(
        "E9b: (deg+1)-list coloring engines, rounds vs n (Δ=6)",
        [{"n": n} for n in ns],
        run,
        seeds=(0, 1),
    )
    table.notes.append(
        "shapes: random ~ O(log n) [PS-era]; hybrid ~ O(log Δ)+tail [Thm 19]; "
        "deterministic = palette = O(Δ²), n-independent [Thm 18 substitute]"
    )
    table.notes.append(
        "*_pipe_rounds: total rounds of a full repro.api.solve run with the "
        "same engine in production position (RandomizedParams(engine=...))"
    )
    ln = [math.log2(row.params["n"]) for row in table.rows]
    table.notes.append(f"log2(n) per row: {[round(x, 1) for x in ln]}")
    return table


def test_e9_linial(benchmark):
    table = benchmark.pedantic(build_linial_table, iterations=1, rounds=1)
    emit(table, "e9a_linial")
    # iteration flatness over 9 orders of magnitude
    for delta in (3, 8, 16):
        iters = [
            row.values["iterations"]
            for row in table.rows
            if row.params["delta"] == delta and str(row.params["n"]).startswith("1e")
        ]
        assert max(iters) - min(iters) <= 3


def test_e9_list_coloring(benchmark):
    table = benchmark.pedantic(build_list_coloring_table, iterations=1, rounds=1)
    emit(table, "e9b_list_coloring")
    # deterministic engine is exactly n-independent
    det = [row.values["deterministic_rounds"] for row in table.rows]
    assert max(det) == min(det)


if __name__ == "__main__":
    emit(build_linial_table(), "e9a_linial")
    emit(build_list_coloring_table(), "e9b_list_coloring")
