"""S1 — serving-layer load test: QPS, tail latency, cache, load shedding.

Drives a real :class:`repro.service.ColoringServer` over localhost TCP
with open-loop traffic (requests fire on a fixed schedule regardless of
completions — the honest way to measure tail latency under load) and
reports one JSON document with:

* ``hot_path`` — cold-solve vs cached latency on the same instance and
  the resulting speedup (the acceptance bar is ≥ 10×), plus the
  bit-identity check: the cached result's ``content_digest()`` equals
  the fresh solve's.
* ``open_loop`` — achieved QPS vs offered, p50/p95/p99 latency, server
  cache hit rate, for a mixed-size workload with a configurable
  duplicate-request ratio.
* ``shedding`` — a burst beyond the queue bound against a deliberately
  tiny gateway: rejected requests fail *fast* with ``overloaded`` while
  admitted ones complete; nothing hangs.

Modes::

    python benchmarks/bench_s1_service.py              # full load test
    python benchmarks/bench_s1_service.py --smoke      # make serve-smoke
    python benchmarks/bench_s1_service.py --rate 200 --duration 5 --dup-ratio 0.8

``--smoke`` is the CI gate: 50 mixed requests through
:class:`repro.service.ColoringClient`, every returned coloring validated
client-side, cache hits and the ≥ 10× hot path asserted, shedding
exercised.  Results land in ``benchmarks/results/s1_service.json``.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import statistics
import sys
import threading
import time
from pathlib import Path

from repro.api import SolverConfig
from repro.errors import ServiceOverloadedError
from repro.graphs.generators import random_regular_graph
from repro.graphs.validation import validate_coloring
from repro.service import AsyncColoringClient, ColoringClient, ColoringServer
from repro.service.metrics import percentile

RESULTS_DIR = Path(__file__).parent / "results"


class ServerThread:
    """A :class:`ColoringServer` on its own event loop + thread.

    The load generator runs client-side in the main thread, so the
    server must live elsewhere; a thread (not a subprocess) keeps the
    bench runnable in constrained CI sandboxes and makes the server's
    in-process stats reachable for debugging.
    """

    def __init__(self, **server_kwargs):
        self._kwargs = {"host": "127.0.0.1", "port": 0, **server_kwargs}
        self._started = threading.Event()
        self._stop: asyncio.Event | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self.port: int | None = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        server = ColoringServer(**self._kwargs)
        await server.start()
        self.port = server.port
        self._started.set()
        try:
            await self._stop.wait()
        finally:
            await server.close()

    def __enter__(self) -> "ServerThread":
        self._thread.start()
        if not self._started.wait(timeout=30):
            raise RuntimeError("service did not start within 30s")
        return self

    def __exit__(self, *exc_info) -> None:
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=30)


def _mixed_workload(count, sizes, delta, dup_ratio, hot_instances, seed):
    """``count`` graphs cycling through ``sizes``; a ``dup_ratio`` fraction
    repeats one of ``hot_instances`` hot graphs (cache traffic)."""
    hot = [
        random_regular_graph(sizes[i % len(sizes)], delta, seed=seed + i)
        for i in range(hot_instances)
    ]
    workload = []
    duplicates = 0
    seen_hot: set[int] = set()
    per_block = round(10 * dup_ratio)  # hot repeats per block of 10 requests
    for i in range(count):
        if i > 0 and (i % 10) < per_block:
            hot_index = i % len(hot)
            workload.append(hot[hot_index])
            # a hot graph's first-ever send is a miss, not a duplicate
            if hot_index in seen_hot:
                duplicates += 1
            else:
                seen_hot.add(hot_index)
        else:
            workload.append(
                random_regular_graph(
                    sizes[i % len(sizes)], delta, seed=seed + hot_instances + 1 + i
                )
            )
    return workload, duplicates


def _hit_rate_delta(cache_before: dict, cache_after: dict) -> float:
    """Hit rate over one measurement phase (lifetime counters differenced,
    so earlier phases on the same server don't contaminate the number)."""
    hits = cache_after["hits"] - cache_before["hits"]
    misses = cache_after["misses"] - cache_before["misses"]
    total = hits + misses
    return round(hits / total, 4) if total else 0.0


def run_hot_path(port: int, n: int, delta: int, seed: int) -> dict:
    """Cold-vs-cached latency on one instance + bit-identity check.

    Best-of-N on both sides (the box timing noise is large): cold over a
    few distinct-seed solves of the same graph (distinct fingerprints, so
    each is genuinely uncached), hot over repeats of the first request.
    """
    graph = random_regular_graph(n, delta, seed=seed)
    payload = {"n": graph.n, "edges": [list(e) for e in graph.edges()]}
    with ColoringClient(port=port, timeout=600.0) as client:
        cold_samples = []
        for i in range(3):
            t0 = time.perf_counter()
            reply = client.solve(payload, algorithm="auto", seed=seed + i)
            cold_samples.append(time.perf_counter() - t0)
            assert not reply.cached, "distinct-seed request must solve cold"
            if i == 0:
                cold = reply
        hot_samples = []
        for _ in range(8):
            t0 = time.perf_counter()
            hot = client.solve(payload, algorithm="auto", seed=seed)
            hot_samples.append(time.perf_counter() - t0)
            assert hot.cached, "repeat request must hit the cache"
        cold_s, hot_s = min(cold_samples), min(hot_samples)
        bit_identical = hot.result.content_digest() == cold.result.content_digest()
        validate_coloring(graph, list(cold.result.colors), max_colors=cold.result.palette)
    return {
        "n": n,
        "delta": delta,
        "cold_ms": round(1000 * cold_s, 3),
        "hot_ms": round(1000 * hot_s, 3),
        "speedup": round(cold_s / hot_s, 1),
        "bit_identical": bit_identical,
    }


async def _open_loop_async(
    port, workload, rate, config, connections
) -> tuple[list[float], int, dict, dict]:
    """Fire one request per workload item at ``rate``/s, spread over
    ``connections`` pipelined clients; returns (latencies, rejected,
    stats_before, stats_after) — before/after so callers report this
    phase's cache delta, not the server's lifetime counters."""
    clients = []
    for _ in range(connections):
        clients.append(await AsyncColoringClient(port=port).connect())
    stats_before = await clients[0].stats()
    latencies: list[float] = []
    rejected = 0

    async def one(client, graph, fire_at):
        nonlocal rejected
        delay = fire_at - time.perf_counter()
        if delay > 0:
            await asyncio.sleep(delay)
        t0 = time.perf_counter()
        try:
            await client.solve(graph, config)
            latencies.append(time.perf_counter() - t0)
        except ServiceOverloadedError:
            rejected += 1

    start = time.perf_counter() + 0.05
    tasks = [
        asyncio.ensure_future(one(clients[i % connections], graph, start + i / rate))
        for i, graph in enumerate(workload)
    ]
    await asyncio.gather(*tasks)
    stats_after = await clients[0].stats()
    for client in clients:
        await client.close()
    return latencies, rejected, stats_before, stats_after


def run_open_loop(
    port, *, rate, count, sizes, delta, dup_ratio, hot_instances, seed, connections=4
) -> dict:
    workload, duplicates = _mixed_workload(
        count, sizes, delta, dup_ratio, hot_instances, seed
    )
    config = SolverConfig(algorithm="auto", seed=seed)
    t0 = time.perf_counter()
    latencies, rejected, before, after = asyncio.run(
        _open_loop_async(port, workload, rate, config, connections)
    )
    elapsed = time.perf_counter() - t0
    ordered = sorted(latencies)
    out = {
        "requests": count,
        "duplicates": duplicates,
        "dup_ratio": dup_ratio,
        "sizes": list(sizes),
        "offered_qps": rate,
        "achieved_qps": round(len(latencies) / elapsed, 2),
        "completed": len(latencies),
        "rejected": rejected,
        "cache_hit_rate": _hit_rate_delta(before["cache"], after["cache"]),
        "coalesced": after["coalesced"] - before["coalesced"],
        "mean_batch_size": after["metrics"]["mean_batch_size"],
    }
    if ordered:
        out.update(
            p50_ms=round(1000 * percentile(ordered, 50), 3),
            p95_ms=round(1000 * percentile(ordered, 95), 3),
            p99_ms=round(1000 * percentile(ordered, 99), 3),
            mean_ms=round(1000 * statistics.mean(ordered), 3),
        )
    return out


def run_smoke_requests(
    port, *, count, sizes, delta, dup_ratio, hot_instances, seed
) -> dict:
    """The serve-smoke body: ``count`` mixed requests through the blocking
    :class:`ColoringClient`, every returned coloring validated client-side."""
    workload, duplicates = _mixed_workload(
        count, sizes, delta, dup_ratio, hot_instances, seed
    )
    hits = 0
    with ColoringClient(port=port, timeout=300.0) as client:
        assert client.ping()
        before = client.stats()
        for graph in workload:
            reply = client.solve(graph, algorithm="auto", seed=seed)
            validate_coloring(
                graph, list(reply.result.colors), max_colors=reply.result.palette
            )
            hits += reply.cached
        after = client.stats()
    return {
        "requests": count,
        "duplicates": duplicates,
        "cache_hits": hits,
        "validated": count,
        "server_hit_rate": _hit_rate_delta(before["cache"], after["cache"]),
    }


def run_shedding(n: int, delta: int, seed: int, burst: int = 24) -> dict:
    """Burst ``burst`` distinct requests at a gateway bounded to 2: the
    overflow must be rejected immediately and nothing may hang."""
    with ServerThread(workers=1, max_queue=2, max_batch=2, max_wait_s=0.0) as server:
        graphs = [
            random_regular_graph(n, delta, seed=seed + i) for i in range(burst)
        ]
        config = SolverConfig(algorithm="auto", seed=seed, validate=False)

        async def drive():
            client = await AsyncColoringClient(port=server.port).connect()
            completed, rejected, reject_lat = 0, 0, []

            async def one(graph):
                nonlocal completed, rejected
                t0 = time.perf_counter()
                try:
                    await client.solve(graph, config)
                    completed += 1
                except ServiceOverloadedError:
                    reject_lat.append(time.perf_counter() - t0)
                    rejected += 1

            t0 = time.perf_counter()
            await asyncio.wait_for(
                asyncio.gather(*(one(g) for g in graphs)), timeout=120
            )
            elapsed = time.perf_counter() - t0
            await client.close()
            return completed, rejected, reject_lat, elapsed

        completed, rejected, reject_lat, elapsed = asyncio.run(drive())
    return {
        "burst": burst,
        "max_queue": 2,
        "completed": completed,
        "rejected": rejected,
        "max_reject_ms": round(1000 * max(reject_lat), 3) if reject_lat else None,
        "wall_s": round(elapsed, 3),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--smoke", action="store_true", help="CI gate (make serve-smoke)")
    parser.add_argument("--rate", type=float, default=100.0, help="offered requests/s")
    parser.add_argument("--requests", type=int, default=300)
    parser.add_argument("--duration", type=float, default=None,
                        help="overrides --requests as rate*duration")
    parser.add_argument("--sizes", default="64,256,1024",
                        help="comma-separated node counts of the mixed workload")
    parser.add_argument("--delta", type=int, default=4)
    parser.add_argument("--hot-delta", type=int, default=8,
                        help="degree of the cold-vs-cached instance (denser = "
                        "costlier solve per payload byte)")
    parser.add_argument("--dup-ratio", type=float, default=0.5)
    parser.add_argument("--hot-instances", type=int, default=8)
    parser.add_argument("--hot-n", type=int, default=8192,
                        help="instance size for the cold-vs-cached check")
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--json", default=str(RESULTS_DIR / "s1_service.json"))
    args = parser.parse_args(argv)

    sizes = [int(s) for s in args.sizes.split(",") if s]
    count = args.requests
    if args.duration is not None:
        count = max(1, int(args.rate * args.duration))
    if args.smoke:
        sizes = [32, 64, 128]
        count = 50
        # Large and dense enough that a cold solve is robustly >= 10x the
        # hot path's parse+hash+RTT floor on the pure-python fallback too
        # (no numpy/scipy, where sparse small-n solves are quick).
        args.hot_n = 8192
        args.rate = min(args.rate, 100.0)

    report = {"bench": "s1_service", "mode": "smoke" if args.smoke else "load"}
    with ServerThread(workers=args.workers, max_queue=max(64, count)) as server:
        report["hot_path"] = run_hot_path(
            server.port, args.hot_n, args.hot_delta, args.seed
        )
        if args.smoke:
            report["smoke_requests"] = run_smoke_requests(
                server.port,
                count=count,
                sizes=sizes,
                delta=args.delta,
                dup_ratio=args.dup_ratio,
                hot_instances=args.hot_instances,
                seed=args.seed,
            )
        else:
            report["open_loop"] = run_open_loop(
                server.port,
                rate=args.rate,
                count=count,
                sizes=sizes,
                delta=args.delta,
                dup_ratio=args.dup_ratio,
                hot_instances=args.hot_instances,
                seed=args.seed,
            )
    report["shedding"] = run_shedding(512, args.delta, args.seed)

    RESULTS_DIR.mkdir(exist_ok=True)
    Path(args.json).write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))

    failures = []
    hot = report["hot_path"]
    if not hot["bit_identical"]:
        failures.append("cached result is not bit-identical to the fresh solve")
    if hot["speedup"] < 10.0:
        failures.append(f"hot-path speedup {hot['speedup']}x < 10x")
    shed = report["shedding"]
    if shed["rejected"] == 0:
        failures.append("queue-bound burst produced no rejections")
    if shed["completed"] == 0:
        failures.append("queue-bound burst completed nothing")
    if args.smoke:
        smoke = report["smoke_requests"]
        if smoke["validated"] != count:
            failures.append("not every smoke request was validated")
        if smoke["cache_hits"] == 0:
            failures.append("duplicate traffic produced no cache hits")
    else:
        open_loop = report["open_loop"]
        if open_loop["completed"] + open_loop["rejected"] != count:
            failures.append("open-loop requests went missing (hang?)")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        traffic = report.get("open_loop") or report.get("smoke_requests")
        rate_info = (
            f"{traffic['achieved_qps']} qps achieved, hit rate "
            f"{traffic['cache_hit_rate']}"
            if "achieved_qps" in traffic
            else f"{traffic['cache_hits']}/{traffic['requests']} cache hits"
        )
        print(
            f"s1_service ok: hot path {hot['speedup']}x, {rate_info}, "
            f"{shed['rejected']}/{shed['burst']} shed",
            file=sys.stderr,
        )
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
