"""S2 — incremental recoloring under edge updates: update-op latency vs
fresh-solve latency.

The acceptance number of the incremental subsystem: a single-edge update
against a cached n=32768, Δ=8 instance must complete **≥ 10× faster**
than a fresh solve of the same instance, digest-chained and
validity-asserted.  Three probes:

* ``engine`` — :func:`repro.analysis.harness.incremental_update_sweep`:
  per-op latency of :func:`repro.api.solve_incremental` across edit
  sizes (1 / 16 / 256 edges) vs the fresh :func:`repro.api.solve`
  baseline, validation included on both sides.
* ``service_hot_update`` — the headline: an in-process
  :class:`repro.service.BatchingGateway` serves the instance once
  (cold), then single-edge ``update`` ops chain against the cached
  parent — cost includes delta application, repair, child
  re-fingerprinting, caching, and validation.  Asserts the ≥ 10× bar,
  the digest chain (every child names its parent; replaying an update
  hits the cache), and child-coloring validity.
* ``sustained`` — :func:`repro.analysis.harness.sustained_update_stream`:
  one long-lived engine on the dynamic (updatable-CSR) backend absorbs
  thousands of alternating insert/delete ops at n=10⁵ with per-op
  dirty-region validation; must hold **≥ 10⁴ ops/sec**.
* ``tcp_update`` — functional check of the wire protocol on a small
  instance: solve → update → chained update over real sockets, plus the
  ``stale_parent`` and typed-rejection error paths.

Modes::

    python benchmarks/bench_s2_incremental.py           # full sweep + checks
    python benchmarks/bench_s2_incremental.py --smoke   # CI gate (make incremental-smoke)

Results land in ``benchmarks/results/s2_incremental.json``.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time
from pathlib import Path

from repro.api import SolverConfig
from repro.analysis.harness import (
    carve_matching,
    incremental_update_sweep,
    sustained_update_stream,
)
from repro.errors import IncrementalUpdateError, StaleParentError
from repro.graphs.generators import random_regular_graph
from repro.graphs.validation import validate_coloring
from repro.service import BatchingGateway, ColoringClient

RESULTS_DIR = Path(__file__).parent / "results"


def run_engine_sweep(sizes, delta, edits, seed, repeats) -> list[dict]:
    points = incremental_update_sweep(
        sizes, delta=delta, edits=edits, seed=seed, repeats=repeats
    )
    return [p.as_dict() for p in points]


def run_service_hot_update(
    n: int, delta: int, seed: int, ops: int = 6
) -> dict:
    """Cold solve vs chained single-edge updates through the gateway."""
    full = random_regular_graph(n, delta, seed=seed)
    matching = carve_matching(full, ops + 2)
    base = full.apply_updates(removed=matching)

    async def drive() -> dict:
        async with BatchingGateway(max_queue=8) as gateway:
            # Cold baseline, best-of-2: distinct seeds give distinct
            # fingerprints, so each submission genuinely solves.
            cold_samples = []
            for i in range(2):
                t0 = time.perf_counter()
                reply = await gateway.submit(base, SolverConfig(seed=seed + i))
                cold_samples.append(time.perf_counter() - t0)
                assert not reply.cached, "distinct-seed request must solve cold"
                if i == 0:
                    parent = reply
            update_samples = []
            chain_ok = True
            digest = parent.fingerprint
            first_update = None
            for i in range(ops):
                t0 = time.perf_counter()
                upd = await gateway.submit_update(
                    digest, edges_added=[matching[i]]
                )
                update_samples.append(time.perf_counter() - t0)
                chain_ok = chain_ok and upd.parent_digest == digest
                digest = upd.fingerprint
                if first_update is None:
                    first_update = upd
            # Validity of the final child against its stored graph.
            child_graph = gateway.graph_store.get(digest)
            final = gateway.cache.get(digest)
            validate_coloring(
                child_graph, list(final.colors), max_colors=final.palette
            )
            # Replaying the first update on the original parent is a hit.
            replay = await gateway.submit_update(
                parent.fingerprint, edges_added=[matching[0]]
            )
            return {
                "n": n,
                "delta": delta,
                "ops": ops,
                "cold_ms": round(1000 * min(cold_samples), 3),
                "update_ms": round(1000 * min(update_samples), 3),
                "update_max_ms": round(1000 * max(update_samples), 3),
                "speedup": round(min(cold_samples) / min(update_samples), 1),
                "chain_ok": chain_ok,
                "replay_cached": replay.cached,
                "validated": True,
            }

    return asyncio.run(drive())


def run_tcp_update_check(n: int, delta: int, seed: int) -> dict:
    """The wire protocol end to end: solve → update → chained update,
    plus the stale-parent and typed-rejection error paths."""
    from bench_s1_service import ServerThread

    full = random_regular_graph(n, delta, seed=seed)
    matching = carve_matching(full, 4)
    base = full.apply_updates(removed=matching)
    out = {"n": n, "delta": delta}
    with ServerThread(workers=1, max_queue=16) as server:
        with ColoringClient(port=server.port, timeout=300.0) as client:
            solved = client.solve(base, seed=seed)
            first = client.update(solved.fingerprint, edges_added=[matching[0]])
            child = base.apply_updates(added=[matching[0]])
            validate_coloring(
                child, list(first.result.colors), max_colors=first.result.palette
            )
            chained = client.update(
                first.fingerprint,
                edges_added=[matching[1]],
                edges_removed=[matching[0]],
            )
            out["chain_ok"] = (
                first.parent_digest == solved.fingerprint
                and chained.parent_digest == first.fingerprint
            )
            out["update_stats_present"] = bool(chained.update) and (
                "recolored_count" in chained.update
            )
            try:
                client.update("0" * 64, edges_added=[[0, 1]])
                out["stale_parent_ok"] = False
            except StaleParentError:
                out["stale_parent_ok"] = True
            try:
                client.update(chained.fingerprint, edges_removed=[matching[0]])
                out["typed_rejection_ok"] = False
            except IncrementalUpdateError:
                out["typed_rejection_ok"] = True
            out["validated"] = True
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--smoke", action="store_true", help="CI gate (make incremental-smoke)"
    )
    parser.add_argument(
        "--hot-n", type=int, default=32768,
        help="instance size of the headline cold-vs-update comparison",
    )
    parser.add_argument("--delta", type=int, default=8)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--sizes", default="8192,32768",
        help="comma-separated sizes for the engine-level sweep (full mode)",
    )
    parser.add_argument("--edits", default="1,16,256")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--min-speedup", type=float, default=10.0,
        help="acceptance bar for the single-edge service-path speedup",
    )
    parser.add_argument(
        "--sustained-n", type=int, default=100_000,
        help="instance size of the sustained-stream probe",
    )
    parser.add_argument(
        "--sustained-ops", type=int, default=2000,
        help="ops in the sustained-stream probe",
    )
    parser.add_argument(
        "--min-ops-per-sec", type=float, default=10_000.0,
        help="acceptance bar for sustained incremental throughput",
    )
    parser.add_argument("--json", default=str(RESULTS_DIR / "s2_incremental.json"))
    args = parser.parse_args(argv)

    report = {"bench": "s2_incremental", "mode": "smoke" if args.smoke else "full"}
    if not args.smoke:
        sizes = [int(s) for s in args.sizes.split(",") if s]
        edits = tuple(int(e) for e in args.edits.split(",") if e)
        report["engine_sweep"] = run_engine_sweep(
            sizes, args.delta, edits, args.seed, args.repeats
        )
    report["service_hot_update"] = run_service_hot_update(
        args.hot_n, args.delta, args.seed
    )
    report["sustained"] = sustained_update_stream(
        n=args.sustained_n, delta=args.delta, ops=args.sustained_ops,
        seed=args.seed,
    )
    report["tcp_update"] = run_tcp_update_check(
        2048 if args.smoke else 4096, args.delta, args.seed
    )

    RESULTS_DIR.mkdir(exist_ok=True)
    Path(args.json).write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))

    failures = []
    hot = report["service_hot_update"]
    if hot["speedup"] < args.min_speedup:
        failures.append(
            f"single-edge update speedup {hot['speedup']}x < {args.min_speedup}x"
        )
    if not hot["chain_ok"]:
        failures.append("update replies did not chain parent digests")
    if not hot["replay_cached"]:
        failures.append("replaying an identical update missed the cache")
    sustained = report["sustained"]
    if sustained["ops_per_sec"] < args.min_ops_per_sec:
        failures.append(
            f"sustained throughput {sustained['ops_per_sec']} ops/s < "
            f"{args.min_ops_per_sec} ops/s at n={sustained['n']}"
        )
    if sustained["full_resolves"]:
        failures.append(
            "sustained stream hit full re-solves; the matching workload "
            "must be Δ-preserving by construction"
        )
    tcp = report["tcp_update"]
    for key in ("chain_ok", "update_stats_present", "stale_parent_ok",
                "typed_rejection_ok", "validated"):
        if not tcp.get(key):
            failures.append(f"tcp update check failed: {key}")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print(
            f"s2_incremental ok: single-edge update {hot['update_ms']}ms vs "
            f"fresh {hot['cold_ms']}ms ({hot['speedup']}x) at n={hot['n']} "
            f"Δ={hot['delta']}; sustained {sustained['ops_per_sec']} ops/s "
            f"(p50 {sustained['p50_us']}µs) at n={sustained['n']}; "
            "chain + validity + typed errors verified",
            file=sys.stderr,
        )
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
