"""S3 — sharded-service scale-out: offered vs achieved QPS at 1/2/4 shards.

Drives the consistent-hash front tier (:class:`repro.service.ShardRouter`
over :class:`ShardWorker` child processes, the ``repro serve --shards N``
topology) with the same open-loop mixed workload as ``bench_s1_service``
and reports one JSON document with:

* ``single_process`` / ``sharded`` — achieved QPS per topology on the
  50%-duplicate mixed workload, and ``speedup_2shard`` (2-shard cluster
  vs the plain single-process server).  The acceptance floor (≥ 1.5×) is
  enforced by ``scripts/check_bench_regression.py --sharded-current``,
  which skips the throughput gate when the box has fewer than 2 CPUs
  (``cpu_count`` is recorded here for exactly that decision).
* ``routed_identity`` — the same solve payloads through the router and
  through one single-process server produce bit-identical results (same
  ``content_digest()``, same fingerprints).
* ``update_locality`` — update chains through the router never break
  (zero ``stale_parent``), and the cluster snapshot shows every chain's
  live engine on exactly one shard (chains never cross shards).
* ``kill_restart`` — a shard worker is SIGKILLed mid-load: the only
  client-visible failures are retriable ``overloaded`` errors, the
  supervisor restarts the worker, and the full fleet serves again.

Modes::

    python benchmarks/bench_s3_sharded.py            # full load test
    python benchmarks/bench_s3_sharded.py --smoke    # make shard-smoke

Results land in ``benchmarks/results/s3_sharded.json``.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import sys
import threading
import time
from pathlib import Path

from bench_s1_service import ServerThread, _mixed_workload, run_open_loop

from repro.errors import ServiceOverloadedError
from repro.graphs.generators import random_regular_graph
from repro.graphs.validation import validate_coloring
from repro.service import AsyncColoringClient, ColoringClient
from repro.service.sharding import ShardRouter, ShardSupervisor

RESULTS_DIR = Path(__file__).parent / "results"


class ShardedCluster:
    """Supervisor + router + monitor on their own event-loop thread.

    The ``repro serve --shards N`` topology, embedded: N real
    ``repro serve`` child processes behind an in-thread
    :class:`ShardRouter`, with the supervision loop live (so the
    kill/restart phase exercises the real recovery path).  The load
    generator stays in the main thread, exactly as in ``bench_s1``.
    """

    def __init__(
        self, shards: int, *, serve_args=None, poll_interval_s=0.1,
        router_kwargs=None,
    ):
        self.supervisor = ShardSupervisor(
            shards,
            serve_args=serve_args,
            poll_interval_s=poll_interval_s,
            boot_timeout_s=60.0,
            backoff_base_s=0.1,
        )
        self._router_kwargs = dict(router_kwargs or {})
        self.port: int | None = None
        self._started = threading.Event()
        self._boot_error: BaseException | None = None
        self._stop: asyncio.Event | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        try:
            addresses = await self._loop.run_in_executor(
                None, self.supervisor.start
            )
            router = ShardRouter(addresses, port=0, **self._router_kwargs)
            await router.start()
        except BaseException as exc:  # surface boot failures to __enter__
            self._boot_error = exc
            self._started.set()
            raise
        self.port = router.port
        monitor = self._loop.create_task(
            self.supervisor.monitor(router, stop=self._stop)
        )
        self._started.set()
        try:
            await self._stop.wait()
        finally:
            await router.close()
            await monitor

    def __enter__(self) -> "ShardedCluster":
        self._thread.start()
        if not self._started.wait(timeout=120):
            raise RuntimeError("sharded cluster did not start within 120s")
        if self._boot_error is not None:
            raise RuntimeError(f"cluster boot failed: {self._boot_error}")
        return self

    def __exit__(self, *exc_info) -> None:
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=60)
        self.supervisor.stop(drain_s=5.0)


def _serve_args(count: int) -> dict:
    return {"workers": 1, "max-queue": max(64, count)}


def run_routed_identity(
    sharded_port: int, single_port: int, *, sizes, delta, seed, count=8
) -> dict:
    """Bit-identity: routed replies == single-process replies."""
    graphs = [
        random_regular_graph(sizes[i % len(sizes)], delta, seed=seed + i)
        for i in range(count)
    ]
    identical = 0
    with ColoringClient(port=sharded_port, timeout=300.0) as routed, \
            ColoringClient(port=single_port, timeout=300.0) as single:
        for graph in graphs:
            a = routed.solve(graph, algorithm="auto", seed=seed)
            b = single.solve(graph, algorithm="auto", seed=seed)
            validate_coloring(
                graph, list(a.result.colors), max_colors=a.result.palette
            )
            if (
                a.fingerprint == b.fingerprint
                and a.result.content_digest() == b.result.content_digest()
            ):
                identical += 1
    return {"requests": count, "bit_identical": identical}


def run_update_locality(
    port: int, *, roots, chain_length, n, delta, seed
) -> dict:
    """Update chains through the router: no broken chains, and every
    chain's live engine on exactly one shard."""
    from repro.analysis.harness import carve_matching

    stale = 0
    updates = 0
    with ColoringClient(port=port, timeout=300.0) as client:
        for root in range(roots):
            full = random_regular_graph(n, delta, seed=seed + root)
            matching = carve_matching(full, chain_length)
            base = full.apply_updates(removed=matching)
            parent = client.solve(base, seed=seed).fingerprint
            current = base
            for step in range(chain_length):
                try:
                    reply = client.update(
                        parent, edges_added=[matching[step]]
                    )
                except Exception as exc:  # noqa: BLE001 - counted, re-raised below
                    if type(exc).__name__ == "StaleParentError":
                        stale += 1
                        break
                    raise
                updates += 1
                current = current.apply_updates(added=[matching[step]])
                validate_coloring(
                    current, list(reply.result.colors),
                    max_colors=reply.result.palette,
                )
                parent = reply.fingerprint
        stats = client.stats()
    per_shard_chains = [
        shard.get("graph_store", {}).get("chains", 0)
        for shard in stats["shards"]
        if shard.get("alive")
    ]
    return {
        "roots": roots,
        "chain_length": chain_length,
        "updates_ok": updates,
        "stale_parent": stale,
        "per_shard_chains": per_shard_chains,
        "total_chains": sum(per_shard_chains),
    }


def run_kill_restart(
    cluster: ShardedCluster, *, rate, count, sizes, delta, seed
) -> dict:
    """SIGKILL one shard mid-load; only retriable errors allowed, and the
    fleet must be whole (and serving) again afterwards."""
    workload, _ = _mixed_workload(count, sizes, delta, 0.5, 4, seed)
    kill_at = count // 4
    shards = len(cluster.supervisor.workers)

    async def drive():
        client = await AsyncColoringClient(port=cluster.port).connect()
        completed = retriable = 0
        unexpected: list[str] = []

        async def one(graph, index, fire_at):
            nonlocal completed, retriable
            delay = fire_at - time.perf_counter()
            if delay > 0:
                await asyncio.sleep(delay)
            if index == kill_at:
                # murder shard-0 from under the open connections
                cluster.supervisor.workers[0].process.kill()
            try:
                await client.solve(graph, algorithm="auto", seed=seed)
                completed += 1
            except ServiceOverloadedError:
                retriable += 1
            except Exception as exc:  # noqa: BLE001 - the bench's whole point
                unexpected.append(f"{type(exc).__name__}: {exc}")

        start = time.perf_counter() + 0.05
        await asyncio.gather(
            *(
                one(graph, i, start + i / rate)
                for i, graph in enumerate(workload)
            )
        )
        # wait for the supervisor to bring the fleet back to full strength
        deadline = time.monotonic() + 60.0
        alive = 0
        while time.monotonic() < deadline:
            stats = await client.stats()
            alive = stats["router"]["alive"]
            if alive == shards:
                break
            await asyncio.sleep(0.2)
        # the restarted arc serves again (cold cache, fresh process)
        post = 0
        for i in range(8):
            try:
                await client.solve(
                    random_regular_graph(
                        sizes[0], delta, seed=seed + 10_000 + i
                    ),
                    algorithm="auto",
                    seed=seed,
                )
                post += 1
            except ServiceOverloadedError:
                pass
        await client.close()
        return completed, retriable, unexpected, alive, post

    completed, retriable, unexpected, alive, post = asyncio.run(drive())
    return {
        "requests": count,
        "completed": completed,
        "retriable_errors": retriable,
        "unexpected_errors": unexpected,
        "alive_after_recovery": alive,
        "shards": shards,
        "restarts": cluster.supervisor.workers[0].restarts,
        "post_recovery_completed": post,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI gate (make shard-smoke)")
    parser.add_argument("--rate", type=float, default=300.0,
                        help="offered requests/s (above capacity, so "
                        "achieved QPS measures capacity)")
    parser.add_argument("--requests", type=int, default=300)
    parser.add_argument("--sizes", default="64,256,1024")
    parser.add_argument("--delta", type=int, default=4)
    parser.add_argument("--dup-ratio", type=float, default=0.5)
    parser.add_argument("--hot-instances", type=int, default=8)
    parser.add_argument("--shard-counts", default="1,2,4",
                        help="sharded topologies to measure")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--json", default=str(RESULTS_DIR / "s3_sharded.json"))
    args = parser.parse_args(argv)

    sizes = [int(s) for s in args.sizes.split(",") if s]
    shard_counts = [int(s) for s in args.shard_counts.split(",") if s]
    count = args.requests
    rate = args.rate
    if args.smoke:
        sizes = [32, 64, 128]
        count = 60
        rate = 150.0
        shard_counts = [1, 2]

    open_loop_kwargs = dict(
        count=count, sizes=sizes, delta=args.delta,
        dup_ratio=args.dup_ratio, hot_instances=args.hot_instances,
        seed=args.seed,
    )
    report = {
        "bench": "s3_sharded",
        "mode": "smoke" if args.smoke else "load",
        "cpu_count": os.cpu_count() or 1,
        "shard_counts": shard_counts,
    }

    # -- throughput: plain single process, then each sharded topology ------
    with ServerThread(workers=1, max_queue=max(64, count)) as single:
        report["single_process"] = run_open_loop(
            single.port, rate=rate, **open_loop_kwargs
        )
        single_qps = report["single_process"]["achieved_qps"]

        # routed identity needs both topologies up at once
        with ShardedCluster(2, serve_args=_serve_args(count)) as pair:
            report["routed_identity"] = run_routed_identity(
                pair.port, single.port,
                sizes=sizes, delta=args.delta, seed=args.seed + 777,
            )

    report["sharded"] = {}
    for shards in shard_counts:
        with ShardedCluster(shards, serve_args=_serve_args(count)) as cluster:
            point = run_open_loop(cluster.port, rate=rate, **open_loop_kwargs)
            point["speedup_vs_single_process"] = (
                round(point["achieved_qps"] / single_qps, 3)
                if single_qps else None
            )
            report["sharded"][str(shards)] = point
    two = report["sharded"].get("2")
    report["speedup_2shard"] = (
        two["speedup_vs_single_process"] if two else None
    )

    # -- correctness under the interesting failure modes -------------------
    with ShardedCluster(2, serve_args=_serve_args(count)) as cluster:
        report["update_locality"] = run_update_locality(
            cluster.port,
            roots=3 if args.smoke else 6,
            chain_length=4 if args.smoke else 8,
            n=64, delta=args.delta, seed=args.seed + 31,
        )
        report["kill_restart"] = run_kill_restart(
            cluster,
            rate=min(rate, 50.0),
            count=40 if args.smoke else 120,
            sizes=sizes, delta=args.delta, seed=args.seed + 97,
        )

    RESULTS_DIR.mkdir(exist_ok=True)
    Path(args.json).write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))

    failures = []
    identity = report["routed_identity"]
    if identity["bit_identical"] != identity["requests"]:
        failures.append(
            f"routed solves not bit-identical to single-process "
            f"({identity['bit_identical']}/{identity['requests']})"
        )
    locality = report["update_locality"]
    if locality["stale_parent"]:
        failures.append(
            f"{locality['stale_parent']} update chain(s) broke (stale_parent)"
        )
    if locality["total_chains"] != locality["roots"]:
        failures.append(
            f"chain accounting off: {locality['total_chains']} live engines "
            f"for {locality['roots']} chains (a chain crossed shards?)"
        )
    kill = report["kill_restart"]
    if kill["unexpected_errors"]:
        failures.append(
            f"kill/restart produced non-retriable client errors: "
            f"{kill['unexpected_errors'][:3]}"
        )
    if kill["alive_after_recovery"] != kill["shards"]:
        failures.append(
            f"fleet never recovered: {kill['alive_after_recovery']}/"
            f"{kill['shards']} alive"
        )
    if kill["post_recovery_completed"] == 0:
        failures.append("nothing served after the restart")
    # The >= 1.5x two-shard throughput floor is enforced by
    # scripts/check_bench_regression.py --sharded-current, which knows to
    # skip the gate on boxes without >= 2 CPUs (this report records
    # cpu_count for exactly that decision).

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        speed = report["speedup_2shard"]
        print(
            f"s3_sharded ok: single {single_qps} qps, "
            + ", ".join(
                f"{k}-shard {v['achieved_qps']} qps"
                for k, v in report["sharded"].items()
            )
            + (f", 2-shard speedup {speed}x" if speed else "")
            + f", kill/restart clean ({kill['retriable_errors']} retriable, "
            f"{kill['restarts']} restart)",
            file=sys.stderr,
        )
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
