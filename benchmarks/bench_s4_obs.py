"""S4 — observability: cross-tier trace completeness + sampling-off tax.

Two acceptance gates behind ``make obs-smoke``:

* ``trace_completeness`` — a real 2-shard fleet (``repro serve`` child
  processes behind an in-thread :class:`ShardRouter`, exactly the
  ``--shards 2 --trace-dir`` topology) serves solves and an update with
  tracing on.  Every process exports its own span JSONL; the bench then
  reassembles them with :func:`repro.obs.load_spans` and asserts that
  each request produced one *connected* tree crossing every tier —
  ``router.request → router.forward → server.request → gateway.* →
  solver.*`` — with parent links resolving across process boundaries.
  The export directory is left in place as the CI trace artifact.
* ``overhead`` — the cached hot path is timed over TCP against a
  single-process server with no tracer and again with an
  enabled-but-sampling-off tracer (``sample=0.0``: every request walks
  the NOOP-span branches).  The sampling-off tax must stay under
  ``REPRO_OBS_MAX_OVERHEAD_PCT`` (default 2%); best-of-N batch timing
  keeps scheduler noise out of the comparison.

Modes::

    python benchmarks/bench_s4_obs.py            # full run
    python benchmarks/bench_s4_obs.py --smoke    # make obs-smoke

Results land in ``benchmarks/results/s4_obs.json``; spans in
``benchmarks/results/obs_traces/``.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import time
from pathlib import Path

from bench_s1_service import ServerThread
from bench_s3_sharded import ShardedCluster

from repro.analysis.harness import carve_matching
from repro.graphs.generators import random_regular_graph
from repro.graphs.validation import validate_coloring
from repro.obs import Tracer, group_traces, load_spans, render_report
from repro.service import ColoringClient

RESULTS_DIR = Path(__file__).parent / "results"
TRACE_TIERS = ("router.request", "router.forward", "server.request")


def run_trace_completeness(
    trace_dir: Path, *, solves: int, chain_length: int, seed: int
) -> dict:
    """Drive a traced 2-shard fleet and reassemble its span exports."""
    if trace_dir.exists():
        shutil.rmtree(trace_dir)
    trace_dir.mkdir(parents=True)
    router_tracer = Tracer(
        sample=1.0, export_path=str(trace_dir / "router.jsonl")
    )
    serve_args = {
        "workers": 1,
        "trace-dir": str(trace_dir),
        "trace-sample": 1.0,
    }
    requests = 0
    with ShardedCluster(
        2, serve_args=serve_args, router_kwargs={"tracer": router_tracer}
    ) as cluster:
        with ColoringClient(port=cluster.port, timeout=300.0) as client:
            for i in range(solves):
                graph = random_regular_graph(64, 4, seed=seed + i)
                reply = client.solve(graph, algorithm="auto", seed=seed)
                requests += 1
                validate_coloring(
                    graph, list(reply.result.colors),
                    max_colors=reply.result.palette,
                )
            full = random_regular_graph(64, 4, seed=seed + 1000)
            matching = carve_matching(full, chain_length)
            base = full.apply_updates(removed=matching)
            parent = client.solve(base, seed=seed).fingerprint
            requests += 1
            for step in range(chain_length):
                parent = client.update(
                    parent, edges_added=[matching[step]]
                ).fingerprint
                requests += 1
            merged_metrics = client.metrics()
            prometheus_text = client.metrics(format="prometheus")

    records = load_spans([str(trace_dir)])
    views = group_traces(records)
    complete = []
    for view in views:
        names = {span.get("name") for span in view.spans}
        if not all(tier in names for tier in TRACE_TIERS):
            continue
        if not any(name.startswith("gateway.") for name in names):
            continue
        # every non-root parent pointer must resolve across the files
        by_id = {span["span_id"]: span for span in view.spans}
        if all(
            span.get("parent_id") is None or span["parent_id"] in by_id
            for span in view.spans
        ):
            complete.append(view)
    solver_spans = sum(
        1
        for view in complete
        for span in view.spans
        if str(span.get("name", "")).startswith(("solver.", "repair."))
    )
    fleet_completed = sum(
        series["value"]
        for series in merged_metrics.get("repro_requests_total", {}).get(
            "values", ()
        )
    )
    report = {
        "requests": requests,
        "export_files": sorted(
            p.name for p in trace_dir.glob("*.jsonl")
        ),
        "spans": len(records),
        "traces": len(views),
        "complete_traces": len(complete),
        "solver_or_repair_spans": solver_spans,
        "fleet_completed_via_metrics_verb": int(fleet_completed),
        "prometheus_exposition_ok": (
            "# TYPE repro_router_requests_total counter" in prometheus_text
            and "# TYPE repro_requests_total counter" in prometheus_text
        ),
    }
    if complete:
        # the slowest complete trace, rendered — the artifact a human
        # reads first when the smoke trips
        report["example_waterfall"] = render_report(
            [span for span in complete[0].spans], top=1
        )
    return report


def run_overhead(
    *, batch: int, repeats: int, trials: int, seed: int, threshold_pct: float
) -> dict:
    """Sampling-off tracing tax on the cached hot path, over real TCP.

    Both servers (no tracer; enabled tracer at ``sample=0.0``) stay up
    for the whole measurement and batches alternate between them —
    A/B/A/B, best-of per config — so scheduler and allocator drift hits
    both sides alike instead of whichever happened to run second.

    The reported ``overhead_pct`` is the *minimum* over ``trials``
    independent best-of-``repeats`` estimates.  Wall-clock A/B deltas on
    a busy single-CPU runner carry a few percent of one-sided noise per
    trial; a genuine hot-path regression shows up in every trial, while
    noise has to land high ``trials`` times in a row to survive the min.
    """
    graph = random_regular_graph(64, 4, seed=seed)
    estimates = []
    with ServerThread(workers=1) as baseline_server, ServerThread(
        workers=1, tracer=Tracer(sample=0.0, seed=seed)
    ) as traced_server:
        with ColoringClient(
            port=baseline_server.port, timeout=300.0
        ) as baseline_client, ColoringClient(
            port=traced_server.port, timeout=300.0
        ) as traced_client:
            def one_batch(client, size: int) -> float:
                started = time.perf_counter()
                for _ in range(size):
                    client.solve(graph, algorithm="auto", seed=seed)
                return time.perf_counter() - started

            for client in (baseline_client, traced_client):
                one_batch(client, max(8, batch // 4))  # cache + conn warmup
            for _ in range(trials):
                baseline_s = sampled_off_s = float("inf")
                for _ in range(repeats):
                    baseline_s = min(
                        baseline_s, one_batch(baseline_client, batch)
                    )
                    sampled_off_s = min(
                        sampled_off_s, one_batch(traced_client, batch)
                    )
                estimates.append(
                    100.0 * (sampled_off_s - baseline_s) / baseline_s
                )
    return {
        "batch": batch,
        "repeats": repeats,
        "trials": trials,
        "trial_estimates_pct": [round(e, 2) for e in estimates],
        "overhead_pct": round(min(estimates), 2),
        "threshold_pct": threshold_pct,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI gate (make obs-smoke)")
    parser.add_argument("--solves", type=int, default=8)
    parser.add_argument("--chain-length", type=int, default=4)
    parser.add_argument("--overhead-batch", type=int, default=400)
    parser.add_argument("--overhead-repeats", type=int, default=5)
    parser.add_argument("--overhead-trials", type=int, default=3)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--trace-dir",
                        default=str(RESULTS_DIR / "obs_traces"))
    parser.add_argument("--json", default=str(RESULTS_DIR / "s4_obs.json"))
    args = parser.parse_args(argv)

    solves = args.solves
    chain_length = args.chain_length
    batch = args.overhead_batch
    repeats = args.overhead_repeats
    trials = args.overhead_trials
    if args.smoke:
        solves = 4
        chain_length = 2
        batch = 150
        repeats = 4
        trials = 3
    threshold_pct = float(os.environ.get("REPRO_OBS_MAX_OVERHEAD_PCT", "2.0"))

    # Overhead first: it is the noise-sensitive measurement, and the
    # trace phase's child-process fleet leaves the box (especially a
    # single-CPU CI runner) churning for a while after teardown.
    report = {
        "bench": "s4_obs",
        "mode": "smoke" if args.smoke else "full",
        "cpu_count": os.cpu_count() or 1,
        "overhead": run_overhead(
            batch=batch, repeats=repeats, trials=trials, seed=args.seed,
            threshold_pct=threshold_pct,
        ),
        "trace_completeness": run_trace_completeness(
            Path(args.trace_dir),
            solves=solves, chain_length=chain_length, seed=args.seed,
        ),
    }

    RESULTS_DIR.mkdir(exist_ok=True)
    Path(args.json).write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))

    failures = []
    traces = report["trace_completeness"]
    if traces["complete_traces"] < traces["requests"]:
        failures.append(
            f"only {traces['complete_traces']}/{traces['requests']} requests "
            f"produced a complete router→shard→gateway trace"
        )
    if traces["solver_or_repair_spans"] == 0:
        failures.append("no solver-phase or repair-rung spans were emitted")
    if traces["fleet_completed_via_metrics_verb"] < traces["requests"]:
        failures.append(
            f"metrics verb undercounts the fleet: "
            f"{traces['fleet_completed_via_metrics_verb']} completed for "
            f"{traces['requests']} requests"
        )
    if not traces["prometheus_exposition_ok"]:
        failures.append("prometheus exposition missing expected TYPE lines")
    overhead = report["overhead"]
    if overhead["overhead_pct"] > threshold_pct:
        failures.append(
            f"sampling-off tracing overhead {overhead['overhead_pct']}% "
            f"exceeds {threshold_pct}% "
            f"(override via REPRO_OBS_MAX_OVERHEAD_PCT)"
        )

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print(
            f"s4_obs ok: {traces['complete_traces']}/{traces['requests']} "
            f"complete cross-tier traces over "
            f"{len(traces['export_files'])} export files, "
            f"sampling-off overhead {overhead['overhead_pct']}% "
            f"(limit {threshold_pct}%)",
            file=sys.stderr,
        )
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
