"""S5 — durable store: populate a fleet, SIGKILL it, restart warm.

The tentpole contract of the pluggable storage layer
(:mod:`repro.service.storage`): a serving fleet started with
``--store-dir`` must come back from a hard kill *warm* — old digests
served from the durable store without re-solving, update chains rebuilt
from the WAL — because results are content-addressed and pure, so disk
is as authoritative as a solver run.  This bench drives that end to end
with real processes and reports one JSON document with:

* ``populate`` — N distinct solves + a few update chains through a
  2-shard fleet (per shard: ``<store-dir>/<shard-id>``), every coloring
  validated, every digest recorded.
* ``kill`` — every shard worker SIGKILLed (no drain, no atexit; the
  journal's write()-per-append discipline means process death loses
  nothing that was acknowledged).
* ``warm_restart`` — a fresh fleet on the *same* store directory:
  warm hit rate over the populated keyspace (gate: ≥ 90% ``cached``),
  every reply bit-identical (``content_digest``-asserted) to its
  pre-kill twin, per-shard WAL replay visible in ``stats()``
  (gate: every chain replayed), and restart-to-warm time bounded
  against the cold boot (gate: warm boot ≤ cold boot + 20 s).
* chain continuation after restart — recorded per chain; a head may
  route to a non-owning shard (the router's chain map is in-memory)
  where it degrades to the retriable ``stale_parent``, never to a
  wrong answer.  In-place continuation is gated at the gateway level
  in ``tests/test_storage_replay.py``.

Modes::

    python benchmarks/bench_s5_store.py            # full run
    python benchmarks/bench_s5_store.py --smoke    # make store-smoke

Results land in ``benchmarks/results/s5_store.json``; the store
directory itself (``benchmarks/results/s5_store_dir/``) is the CI
artifact to inspect when the gate fails.
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import time
from pathlib import Path

from bench_s3_sharded import ShardedCluster

from repro.analysis.harness import carve_matching
from repro.errors import StaleParentError
from repro.graphs.generators import random_regular_graph
from repro.graphs.validation import validate_coloring
from repro.service import ColoringClient

RESULTS_DIR = Path(__file__).parent / "results"

#: Replay must not turn a restart into an outage: warm boot may exceed
#: the cold boot by at most this much (covers journal scans + chain
#: replays at bench scale with plenty of CI-box slack).
REPLAY_BUDGET_S = 20.0


def _serve_args(store_dir: Path, fsync: str) -> dict:
    return {
        "workers": 1,
        "max-queue": 128,
        "store-dir": str(store_dir),
        "wal": "on",
        "fsync": fsync,
    }


def _workload(count, sizes, delta, seed):
    return [
        random_regular_graph(sizes[i % len(sizes)], delta, seed=seed + i)
        for i in range(count)
    ]


def run_populate(port, graphs, *, roots, chain_length, n, delta, seed) -> dict:
    """Fill the fleet: distinct solves + update chains, digests recorded."""
    solved = []
    chains = []
    started = time.perf_counter()
    with ColoringClient(port=port, timeout=300.0) as client:
        for graph in graphs:
            reply = client.solve(graph, algorithm="auto", seed=seed)
            validate_coloring(
                graph, list(reply.result.colors), max_colors=reply.result.palette
            )
            solved.append(
                {
                    "fingerprint": reply.fingerprint,
                    "digest": reply.result.content_digest(),
                }
            )
        for root in range(roots):
            full = random_regular_graph(n, delta, seed=seed + 10_000 + root)
            matching = carve_matching(full, chain_length + 1)
            base = full.apply_updates(removed=matching)
            parent = client.solve(base, seed=seed).fingerprint
            for step in range(chain_length):
                reply = client.update(
                    parent, edges_added=[matching[step]], backend="dynamic"
                )
                parent = reply.fingerprint
            chains.append(
                {
                    "head": parent,
                    "head_digest": reply.result.content_digest(),
                    "next_delta": list(matching[chain_length]),
                }
            )
    return {
        "solves": len(solved),
        "chains": len(chains),
        "chain_length": chain_length,
        "wall_s": round(time.perf_counter() - started, 3),
        "solved": solved,
        "chain_state": chains,
    }


def run_warm_phase(port, graphs, populate: dict, *, seed) -> dict:
    """Re-offer the populated keyspace to the restarted fleet."""
    hits = identical = 0
    with ColoringClient(port=port, timeout=300.0) as client:
        started = time.perf_counter()
        for graph, before in zip(graphs, populate["solved"]):
            reply = client.solve(graph, algorithm="auto", seed=seed)
            if reply.cached:
                hits += 1
            if (
                reply.fingerprint == before["fingerprint"]
                and reply.result.content_digest() == before["digest"]
            ):
                identical += 1
        serve_wall = time.perf_counter() - started

        # chain continuation: in place when the router's hash fallback
        # lands on the owning shard, retriable stale_parent otherwise
        continued = stale = 0
        for chain in populate["chain_state"]:
            try:
                reply = client.update(
                    chain["head"],
                    edges_added=[tuple(chain["next_delta"])],
                    backend="dynamic",
                )
            except StaleParentError:
                stale += 1
                continue
            continued += 1
            if reply.parent_digest != chain["head"]:
                raise AssertionError(
                    "continued chain lost its lineage: "
                    f"{reply.parent_digest} != {chain['head']}"
                )
        stats = client.stats()

    shard_storage = [
        shard.get("storage") or {}
        for shard in stats["shards"]
        if shard.get("alive")
    ]
    replays = [s.get("replay") or {} for s in shard_storage]
    return {
        "requests": len(graphs),
        "warm_hits": hits,
        "hit_rate": round(hits / len(graphs), 4) if graphs else 0.0,
        "bit_identical": identical,
        "serve_wall_s": round(serve_wall, 3),
        "chains_continued_in_place": continued,
        "chains_stale_after_reroute": stale,
        "chains_replayed": sum(r.get("chains_replayed", 0) for r in replays),
        "deltas_replayed": sum(r.get("deltas_replayed", 0) for r in replays),
        "chains_skipped": sum(r.get("chains_skipped", 0) for r in replays),
        "per_shard_store": [
            {
                "entries": (s.get("store") or {}).get("entries", 0),
                "segments": (s.get("store") or {}).get("segments", 0),
                "bytes": (s.get("store") or {}).get("bytes", 0),
                "torn_records": (s.get("store") or {}).get("torn_records", 0),
            }
            for s in shard_storage
        ],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI gate (make store-smoke)")
    parser.add_argument("--requests", type=int, default=40,
                        help="distinct solves to populate (the keyspace)")
    parser.add_argument("--sizes", default="64,256,1024")
    parser.add_argument("--delta", type=int, default=4)
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--fsync", default="batch",
                        choices=("always", "batch", "never"))
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--store-dir",
                        default=str(RESULTS_DIR / "s5_store_dir"))
    parser.add_argument("--json", default=str(RESULTS_DIR / "s5_store.json"))
    args = parser.parse_args(argv)

    sizes = [int(s) for s in args.sizes.split(",") if s]
    count = args.requests
    roots, chain_length = 4, 3
    if args.smoke:
        sizes = [32, 64, 128]
        count = 12
        roots, chain_length = 3, 2

    store_dir = Path(args.store_dir)
    if store_dir.exists():
        shutil.rmtree(store_dir)  # each run measures a fresh population
    serve_args = _serve_args(store_dir, args.fsync)
    graphs = _workload(count, sizes, args.delta, args.seed)

    report = {
        "bench": "s5_store",
        "mode": "smoke" if args.smoke else "load",
        "shards": args.shards,
        "fsync": args.fsync,
        "store_dir": str(store_dir),
    }

    # -- populate, then kill the whole fleet without ceremony --------------
    # poll_interval_s is high so the supervisor cannot resurrect the
    # corpses in the gap between our SIGKILLs and the teardown.
    boot_started = time.perf_counter()
    with ShardedCluster(
        args.shards, serve_args=serve_args, poll_interval_s=30.0
    ) as cluster:
        cold_boot_s = time.perf_counter() - boot_started
        report["populate"] = run_populate(
            cluster.port, graphs,
            roots=roots, chain_length=chain_length,
            n=64, delta=args.delta, seed=args.seed,
        )
        for worker in cluster.supervisor.workers:
            worker.process.kill()
    report["cold_boot_s"] = round(cold_boot_s, 3)
    report["kill"] = {"signal": "SIGKILL", "workers": args.shards}

    # -- fresh fleet, same directory: it must come back warm ---------------
    boot_started = time.perf_counter()
    with ShardedCluster(
        args.shards, serve_args=serve_args, poll_interval_s=30.0
    ) as cluster:
        warm_boot_s = time.perf_counter() - boot_started
        report["warm_restart"] = run_warm_phase(
            cluster.port, graphs, report["populate"], seed=args.seed
        )
    report["warm_boot_s"] = round(warm_boot_s, 3)
    report["restart_to_warm_budget_s"] = round(cold_boot_s + REPLAY_BUDGET_S, 3)

    # the digests themselves stay out of the committed JSON's way
    report["populate"] = {
        k: v for k, v in report["populate"].items()
        if k not in ("solved", "chain_state")
    }

    RESULTS_DIR.mkdir(exist_ok=True)
    Path(args.json).write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))

    failures = []
    warm = report["warm_restart"]
    if warm["hit_rate"] < 0.9:
        failures.append(
            f"warm hit rate {warm['hit_rate']} < 0.9 — the fleet re-solved "
            "the populated keyspace after restart"
        )
    if warm["bit_identical"] != warm["requests"]:
        failures.append(
            f"restart broke bit-identity: {warm['bit_identical']}/"
            f"{warm['requests']} digests matched pre-kill replies"
        )
    if warm["chains_replayed"] != report["populate"]["chains"]:
        failures.append(
            f"WAL replay incomplete: {warm['chains_replayed']}/"
            f"{report['populate']['chains']} chains rebuilt"
        )
    expected_deltas = report["populate"]["chains"] * report["populate"]["chain_length"]
    if warm["deltas_replayed"] != expected_deltas:
        failures.append(
            f"WAL replay incomplete: {warm['deltas_replayed']}/"
            f"{expected_deltas} deltas reapplied"
        )
    if warm["chains_continued_in_place"] + warm["chains_stale_after_reroute"] \
            != report["populate"]["chains"]:
        failures.append("a chain continuation failed non-retriably")
    if warm_boot_s > cold_boot_s + REPLAY_BUDGET_S:
        failures.append(
            f"restart-to-warm took {warm_boot_s:.1f}s "
            f"(cold boot {cold_boot_s:.1f}s + {REPLAY_BUDGET_S:g}s budget)"
        )
    if any(s["torn_records"] for s in warm["per_shard_store"]):
        failures.append("SIGKILL tore acknowledged records (flush discipline broken)")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print(
            f"s5_store ok: {warm['warm_hits']}/{warm['requests']} warm hits "
            f"after SIGKILL ({warm['bit_identical']} bit-identical), "
            f"{warm['chains_replayed']} chains / {warm['deltas_replayed']} "
            f"deltas replayed, warm boot {warm_boot_s:.1f}s "
            f"vs cold {cold_boot_s:.1f}s",
            file=sys.stderr,
        )
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
