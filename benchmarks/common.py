"""Shared infrastructure for the experiment benchmarks.

Every bench builds a :class:`repro.analysis.Table`, prints it, and writes
it to ``benchmarks/results/<name>.txt`` so the tables survive pytest's
output capture.  Set ``REPRO_BENCH_FULL=1`` for the larger sweeps recorded
in EXPERIMENTS.md; the default quick mode keeps the whole suite within a
few minutes.  Set ``REPRO_BENCH_SMOKE=1`` (what ``make bench-smoke`` /
``python -m repro bench --smoke`` do) to shrink every sweep to its single
smallest point — a CI-speed pass whose only job is to catch benches
rotting against the library API.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.analysis.experiments import Table

RESULTS_DIR = Path(__file__).parent / "results"

FULL = os.environ.get("REPRO_BENCH_FULL", "") == "1"
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") == "1"


def emit(table: Table, name: str) -> Table:
    """Print the table and persist it under benchmarks/results/."""
    rendered = table.render()
    print()
    print(rendered)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(rendered + "\n")
    return table


def sizes(quick: list[int], full: list[int]) -> list[int]:
    """Pick the sweep sizes for the current mode (smoke = one tiny point)."""
    if SMOKE:
        return quick[:1]
    return full if FULL else quick


_GRAPH_CACHE: dict[tuple, object] = {}


def cached_high_girth(n: int, d: int, girth: int, seed: int):
    """High-girth regular graphs are the most expensive workload to
    generate; benches sweeping other parameters share them via this cache."""
    from repro.graphs.generators import high_girth_regular_graph

    key = ("hg", n, d, girth, seed)
    if key not in _GRAPH_CACHE:
        _GRAPH_CACHE[key] = high_girth_regular_graph(n, d, girth, seed=seed)
    return _GRAPH_CACHE[key]
