"""Pytest configuration for the benchmark suite."""

import sys
from pathlib import Path

# Allow `import common` from bench modules regardless of invocation dir.
sys.path.insert(0, str(Path(__file__).parent))
