"""Algorithm shootout: every registered Δ-colorer on the same instances.

Iterates the solver registry (``repro.list_algorithms``) instead of
hand-picking entry points: the paper's randomized algorithms (Theorem 1
picked automatically for Δ = 3, Theorem 3 for Δ ≥ 4), the deterministic
layering pipeline, the SLOCAL colorer, and the Panconesi–Srinivasan
baseline, printing LOCAL round counts side by side — a miniature version
of benchmark E4.  A new engine registered under a new name shows up here
with zero changes.

Run:  python examples/algorithm_shootout.py
"""

from repro import (
    get_algorithm,
    high_girth_regular_graph,
    random_regular_graph,
    solve,
    torus_grid,
    validate_coloring,
)

CONTENDERS = ["randomized", "deterministic", "slocal", "ps"]


def run_all(graph, name: str, seed: int) -> None:
    delta = graph.max_degree()
    print(f"\n[{name}]  n={graph.n}, Δ={delta}")
    for algorithm in CONTENDERS:
        spec = get_algorithm(algorithm)
        result = solve(graph, algorithm=algorithm, seed=seed)
        validate_coloring(graph, result.colors, max_colors=delta)
        cost = (
            f"{result.rounds:>7} rounds" if result.stats.get("model") != "SLOCAL"
            else f"{result.rounds:>7} locality"
        )
        kind = "det" if spec.deterministic else "rand"
        print(f"  {result.algorithm:<18} [{kind}] {cost}   ({spec.summary})")


def main() -> None:
    run_all(random_regular_graph(2000, 3, seed=1), "random cubic", seed=1)
    run_all(high_girth_regular_graph(2000, 3, girth=9, seed=2),
            "high-girth cubic (DCC-free)", seed=2)
    run_all(random_regular_graph(2000, 8, seed=3), "random 8-regular", seed=3)
    run_all(torus_grid(40, 50), "40x50 torus", seed=4)
    print("\nAll outputs validated as proper Δ-colorings.")
    print("See benchmarks/bench_e4_baseline.py for the full scaling study.")


if __name__ == "__main__":
    main()
