"""Algorithm shootout: all four Δ-colorers on the same instances.

Runs the paper's three algorithms (small-Δ randomized, large-Δ
randomized, deterministic) and the Panconesi–Srinivasan baseline on a
family sweep, printing LOCAL round counts side by side — a miniature
version of benchmark E4.

Run:  python examples/algorithm_shootout.py
"""

from repro import (
    delta_coloring_deterministic,
    delta_coloring_large_delta,
    delta_coloring_small_delta,
    high_girth_regular_graph,
    ps_delta_coloring,
    random_regular_graph,
    torus_grid,
    validate_coloring,
)


def run_all(graph, name: str, seed: int) -> None:
    delta = graph.max_degree()
    rows = []
    if delta == 3:
        rows.append(("randomized small-Δ (Thm 1)",
                     delta_coloring_small_delta(graph, seed=seed)))
    else:
        rows.append(("randomized large-Δ (Thm 3)",
                     delta_coloring_large_delta(graph, seed=seed)))
    rows.append(("deterministic (Thm 4)", delta_coloring_deterministic(graph)))
    rows.append(("Panconesi–Srinivasan '95", ps_delta_coloring(graph, seed=seed)))
    print(f"\n[{name}]  n={graph.n}, Δ={delta}")
    for label, result in rows:
        validate_coloring(graph, result.colors, max_colors=delta)
        print(f"  {label:<28} {result.rounds:>7} rounds")


def main() -> None:
    run_all(random_regular_graph(2000, 3, seed=1), "random cubic", seed=1)
    run_all(high_girth_regular_graph(2000, 3, girth=9, seed=2),
            "high-girth cubic (DCC-free)", seed=2)
    run_all(random_regular_graph(2000, 8, seed=3), "random 8-regular", seed=3)
    run_all(torus_grid(40, 50), "40x50 torus", seed=4)
    print("\nAll outputs validated as proper Δ-colorings.")
    print("See benchmarks/bench_e4_baseline.py for the full scaling study.")


if __name__ == "__main__":
    main()
