"""Frequency assignment in a wireless mesh: the classic coloring workload.

Scenario: radio nodes on a torus-shaped mesh (a standard model for
sensor-network deployments with wrap-around routing) must each pick one of
F frequencies so that no two interfering (adjacent) nodes share one.  The
interference graph is 4-regular, so F = Δ = 4 suffices by Brooks' theorem
— but a naive greedy assignment needs 5.  On licensed spectrum, one fewer
frequency is real money; this is the "single color of difference" the
paper's introduction debates.

The demo also runs an irregular deployment (random placement with a
degree cap) and shows the LOCAL round counts: the assignment is computed
by message passing among the radios themselves, no central controller.
Both the Δ-coloring and the greedy reference come from the same facade
call (``repro.solve``), differing only in the algorithm name.

Run:  python examples/frequency_assignment.py
"""

from collections import Counter

from repro import (
    random_nice_graph,
    random_regular_graph,
    solve,
    torus_grid,
    validate_coloring,
)
from repro.graphs.properties import is_nice


def assign_frequencies(graph, name: str, seed: int) -> None:
    delta = graph.max_degree()
    result = solve(graph, algorithm="randomized", seed=seed)
    validate_coloring(graph, result.colors, max_colors=delta)
    greedy = solve(graph, algorithm="greedy")
    usage = Counter(result.colors)
    print(f"[{name}] n={graph.n}, interference degree Δ={delta}")
    print(f"  distributed Δ-coloring : {len(usage)} frequencies "
          f"(guarantee: Δ = {result.palette}), {result.rounds} LOCAL rounds")
    print(f"  channel load           : "
          + ", ".join(f"f{c}:{k}" for c, k in sorted(usage.items())))
    print(f"  greedy (centralized)   : {greedy.num_colors_used} frequencies "
          f"(guarantee only Δ+1 = {delta + 1})")
    print()


def main() -> None:
    # Structured deployment: 24x25 torus mesh (600 radios).
    assign_frequencies(torus_grid(24, 25), "torus mesh", seed=1)

    # Irregular deployment: 700 radios, at most 5 interference neighbours.
    graph = random_nice_graph(700, 5, seed=11)
    assert graph.is_connected() and is_nice(graph)
    assign_frequencies(graph, "irregular deployment", seed=11)

    # Dense deployment where greedy actually pays the extra channel.
    graph = random_regular_graph(600, 6, seed=2)
    assign_frequencies(graph, "dense 6-regular deployment", seed=2)


if __name__ == "__main__":
    main()
