"""Local repair after a node reset — Theorem 5 in action.

Scenario: a running network already holds a valid Δ-coloring (say, TDMA
slots) — computed here through the solver facade (``repro.solve``).  A
node crashes, loses its slot, and rejoins; worse, its neighbourhood may
have been re-arranged so that all Δ slots appear around it.  Recomputing
the whole schedule is wasteful; the distributed Brooks' theorem
(Theorem 5) guarantees the coloring can be mended by changing slots only
within radius 2·log_{Δ-1} n of the rejoining node.

The demo colors a network, then repeatedly knocks out a node, re-colors
its surroundings from scratch (the adversarial case — simply restoring
the old color is the easy case), repairs locally, and reports how far the
repair reached vs the theorem's bound.

Run:  python examples/network_repair.py
"""

import random

from repro import (
    Graph,
    UNCOLORED,
    default_fix_radius,
    degree_list_color,
    fix_uncolored_node,
    random_regular_graph,
    solve,
    validate_coloring,
)
from repro.errors import InfeasibleListColoringError
from repro.local import RoundLedger


def scramble_without(graph: Graph, v: int, delta: int, rng: random.Random):
    """Color G−v from scratch (no memory of v's old slot), randomized."""
    colors = [UNCOLORED] * graph.n
    rest = [u for u in range(graph.n) if u != v]
    sub, originals = graph.subgraph(rest)
    for component in sub.connected_components():
        comp_orig = sorted(originals[i] for i in component)
        sub2, orig2 = graph.subgraph(comp_orig)
        try:
            assignment = degree_list_color(
                sub2, [set(range(1, delta + 1)) for _ in range(sub2.n)]
            )
        except InfeasibleListColoringError:
            return None
        for i, u in enumerate(orig2):
            colors[u] = assignment[i]
    for _ in range(5 * graph.n):  # Glauber dynamics: diversify the coloring
        u = rng.randrange(graph.n)
        if u == v:
            continue
        used = {colors[w] for w in graph.adj[u] if w != v and colors[w] != UNCOLORED}
        options = [c for c in range(1, delta + 1) if c not in used and c != colors[u]]
        if options:
            colors[u] = rng.choice(options)
    return colors


def main() -> None:
    delta = 3
    graph = random_regular_graph(1000, delta, seed=5)
    # The running network's schedule: one facade call, Δ slots.
    schedule = solve(graph, seed=5)
    print(f"network: n={graph.n}, Δ={delta}; initial schedule by "
          f"[{schedule.algorithm}] in {schedule.rounds} LOCAL rounds")
    bound = default_fix_radius(graph.n, delta)
    rng = random.Random(42)
    print(f"Theorem 5 bound: repairs reach at most radius {bound}\n")
    print(f"{'node':>6} {'stuck?':>7} {'mode':>16} {'radius':>7} "
          f"{'recolored':>10} {'rounds':>7}")
    repairs = 0
    while repairs < 10:
        v = rng.randrange(graph.n)
        colors = scramble_without(graph, v, delta, rng)
        if colors is None:
            continue
        # "Stuck" = the rejoining node sees all Δ slots around it — the
        # interesting case Theorem 5 exists for.  Prefer showing those.
        stuck = len({colors[u] for u in graph.adj[v]}) == delta
        if not stuck and repairs >= 3:
            continue  # keep a few easy rows, then hunt for hard ones
        ledger = RoundLedger()
        result = fix_uncolored_node(graph, colors, v, delta, ledger=ledger)
        validate_coloring(graph, colors, max_colors=delta)
        print(f"{v:>6} {'yes' if stuck else 'no':>7} {result.mode:>16} "
              f"{result.radius:>7} {len(result.recolored):>10} {result.rounds:>7}")
        assert result.radius <= bound
        repairs += 1
    print("\nall repairs valid and within the Theorem 5 radius bound;")
    print("a full recompute would have touched all 1000 nodes each time.")


if __name__ == "__main__":
    main()
