"""Quickstart: Δ-color a graph with one call and inspect the result.

A Δ-coloring uses exactly Δ = max-degree colors — one fewer than the
trivial greedy (Δ+1) coloring.  By Brooks' theorem it exists for every
*nice* graph (connected, not a clique / cycle / path); this package
reproduces the PODC 2018 distributed algorithms that compute it in very
few LOCAL rounds.  Everything goes through the unified facade:
``repro.solve`` returns one :class:`repro.ColoringResult` whatever
algorithm runs underneath.

Run:  python examples/quickstart.py
"""

from repro import random_regular_graph, solve, validate_coloring


def main() -> None:
    # A random 4-regular graph on 2000 nodes: Δ = 4.
    graph = random_regular_graph(2000, d=4, seed=7)
    delta = graph.max_degree()
    print(f"graph: n={graph.n}, m={graph.num_edges}, Δ={delta}")

    # One call; "auto" dispatches to the right algorithm for (n, Δ, class).
    result = solve(graph, seed=7)
    validate_coloring(graph, result.colors, max_colors=delta)
    print(f"Δ-coloring [{result.algorithm}]: {result.num_colors_used} colors "
          f"(palette 1..{result.palette}), {result.rounds} LOCAL rounds, "
          f"{result.wall_time_s:.3f}s wall clock")

    # The per-phase round breakdown mirrors the paper's phases (1)-(9).
    print("\nrounds by phase:")
    for phase, rounds in result.phase_rounds.items():
        print(f"  {phase:<22} {rounds:>6}")

    # Structural statistics the algorithm gathered along the way.
    interesting = ("num_dccs", "b0_components", "h_size", "t_nodes",
                   "leftover_components", "fallbacks")
    print("\nstats:")
    for key in interesting:
        print(f"  {key:<22} {result.stats[key]}")

    # Contrast: sequential greedy needs Δ+1 colors on regular graphs —
    # the baseline is just another registry name.
    greedy = solve(graph, algorithm="greedy")
    print(f"\ngreedy baseline uses {greedy.num_colors_used} colors "
          f"(Δ-coloring saves one full color class)")

    # The whole result round-trips through JSON for scripted callers.
    print(f"\nresult schema keys: {sorted(result.as_dict())}")


if __name__ == "__main__":
    main()
