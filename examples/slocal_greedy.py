"""SLOCAL Δ-coloring (Remark 17): sequential-greedy with local repairs.

The SLOCAL model processes nodes in an adversarial order; each node reads
its small neighbourhood (including earlier outputs) and commits.  The
paper's Remark 17 observes that the distributed Brooks' theorem turns the
trivial sequential greedy into an SLOCAL(O(log_Δ n)) Δ-coloring: almost
every node just picks a free color, and the rare stuck node repairs
within a logarithmic ball instead of giving up or using color Δ+1.

The demo runs ``solve(graph, algorithm="slocal")`` with a shuffled order
and prints the locality histogram from the result's stats: the whole
point is how thin the expensive tail is.

Run:  python examples/slocal_greedy.py
"""

import random

from repro import (
    default_fix_radius,
    random_regular_graph,
    solve,
    validate_coloring,
)


def main() -> None:
    graph = random_regular_graph(3000, d=4, seed=3)
    delta = graph.max_degree()
    order = list(range(graph.n))
    random.Random(99).shuffle(order)

    result = solve(graph, algorithm="slocal", order=order)
    validate_coloring(graph, result.colors, max_colors=delta)

    bound = default_fix_radius(graph.n, delta)
    histogram = {
        int(radius): count
        for radius, count in result.stats["locality_histogram"].items()
    }
    print(f"n={graph.n}, Δ={delta}: valid Δ-coloring in adversarial order")
    print(f"Theorem 5 locality bound: {bound}\n")
    print("locality  nodes")
    for radius in sorted(histogram):
        print(f"{radius:>8}  {histogram[radius]}")
    print(f"\nmax locality used: {result.stats['max_locality']} (bound {bound});")
    expensive = sum(k for r, k in histogram.items() if r > 2)
    print(f"nodes needing more than a 2-ball: {expensive} of {graph.n} "
          f"({100 * expensive / graph.n:.2f}%)")


if __name__ == "__main__":
    main()
