#!/usr/bin/env python3
"""CI perf-regression gate over the bench-smoke timings.

``python -m repro bench --smoke --smoke-json BENCH_smoke.json`` emits one
wall-clock figure per quick-suite bench module; this script compares a
current run against the committed baseline
(``benchmarks/baselines/bench_smoke_baseline.json``) and fails when any
module slowed down by more than ``--threshold`` (default 1.5×).

CI runners and developer machines differ in raw speed, so raw ratios
would gate on hardware, not code.  The comparison is therefore
**calibrated**: each module's ratio ``current / baseline`` is divided by
the *median* ratio across modules (the machine-speed factor), and only
the calibrated ratio is gated.  A uniform slowdown (slower runner) moves
every ratio equally and passes; a regression in one module moves only
that module's ratio and fails.  Modules faster than ``--min-seconds`` in
the baseline are reported but never gated (timer noise dominates them).

Usage::

    python scripts/check_bench_regression.py --current BENCH_smoke.json
    python scripts/check_bench_regression.py --current ... --update-baseline

Exit codes: 0 ok, 1 regression(s), 2 bad input.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
DEFAULT_BASELINE = REPO_ROOT / "benchmarks" / "baselines" / "bench_smoke_baseline.json"


def module_seconds(doc: dict) -> dict[str, float]:
    """``{module: seconds}`` from a bench-smoke JSON document, failed
    modules excluded (the smoke run itself already gates on failures)."""
    modules = doc.get("modules")
    if not isinstance(modules, dict) or not modules:
        raise ValueError("document has no 'modules' timings")
    out: dict[str, float] = {}
    for name, entry in modules.items():
        if not isinstance(entry, dict) or "seconds" not in entry:
            raise ValueError(
                f"module {name!r} entry has no 'seconds' timing "
                "(is this really a bench --smoke --smoke-json document?)"
            )
        if not entry.get("ok", True):
            continue
        out[name] = float(entry["seconds"])
    return out


def compare(
    current: dict[str, float],
    baseline: dict[str, float],
    threshold: float = 1.5,
    min_seconds: float = 0.5,
) -> tuple[list[str], list[str]]:
    """Calibrated comparison; returns ``(regressions, report_lines)``."""
    common = sorted(set(current) & set(baseline))
    if not common:
        raise ValueError("no common modules between current and baseline")
    ratios = {name: current[name] / max(1e-9, baseline[name]) for name in common}
    gated = [name for name in common if baseline[name] >= min_seconds]
    calibration_pool = gated if gated else common
    calibration = statistics.median(ratios[name] for name in calibration_pool)
    calibration = max(calibration, 1e-9)
    regressions: list[str] = []
    lines = [
        f"machine-speed calibration factor: {calibration:.3f} "
        f"(median ratio over {len(calibration_pool)} modules)"
    ]
    for name in common:
        calibrated = ratios[name] / calibration
        gate = baseline[name] >= min_seconds
        status = "ok"
        if gate and calibrated > threshold:
            status = f"REGRESSION (> {threshold:.2f}x)"
            regressions.append(
                f"{name}: {baseline[name]:.2f}s -> {current[name]:.2f}s "
                f"({calibrated:.2f}x calibrated)"
            )
        elif not gate:
            status = "ungated (baseline below min-seconds)"
        lines.append(
            f"  {name:<28} base {baseline[name]:7.2f}s  cur {current[name]:7.2f}s  "
            f"raw {ratios[name]:5.2f}x  calibrated {calibrated:5.2f}x  {status}"
        )
    # A module with no baseline entry cannot be gated at all — silently
    # skipping it would let a brand-new bench rot from day one, so both
    # directions are hard failures with an actionable message instead of
    # a KeyError (or nothing).
    missing = sorted(set(baseline) - set(current))
    for name in missing:
        regressions.append(
            f"{name}: present in the baseline but missing from the current "
            "run — if the bench module was removed on purpose, refresh the "
            "baseline with --update-baseline"
        )
    new = sorted(set(current) - set(baseline))
    for name in new:
        regressions.append(
            f"{name}: missing from the baseline ({len(baseline)} modules) — "
            "commit a refreshed baseline via "
            "scripts/check_bench_regression.py --current <smoke.json> "
            "--update-baseline"
        )
    return regressions, lines


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--current", required=True,
        help="bench-smoke JSON of the run under test "
        "(python -m repro bench --smoke --smoke-json <path>)",
    )
    parser.add_argument(
        "--baseline", default=str(DEFAULT_BASELINE),
        help=f"committed baseline JSON (default {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--threshold", type=float, default=1.5,
        help="fail when a module's calibrated slowdown exceeds this (default 1.5)",
    )
    parser.add_argument(
        "--min-seconds", type=float, default=0.5,
        help="baseline entries faster than this are reported but not gated",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="overwrite the baseline with the current run and exit 0",
    )
    args = parser.parse_args(argv)

    try:
        current_doc = json.loads(Path(args.current).read_text())
        current = module_seconds(current_doc)
    except (OSError, ValueError, KeyError) as exc:
        print(f"check_bench_regression: bad --current: {exc}", file=sys.stderr)
        return 2

    baseline_path = Path(args.baseline)
    if args.update_baseline:
        baseline_path.parent.mkdir(parents=True, exist_ok=True)
        baseline_path.write_text(json.dumps(current_doc, indent=2) + "\n")
        print(f"baseline updated: {baseline_path} ({len(current)} modules)")
        return 0

    try:
        baseline = module_seconds(json.loads(baseline_path.read_text()))
    except (OSError, ValueError, KeyError) as exc:
        print(f"check_bench_regression: bad --baseline: {exc}", file=sys.stderr)
        return 2

    try:
        regressions, lines = compare(
            current, baseline, threshold=args.threshold,
            min_seconds=args.min_seconds,
        )
    except ValueError as exc:
        print(f"check_bench_regression: {exc}", file=sys.stderr)
        return 2
    print("\n".join(lines))
    if regressions:
        print(
            f"check_bench_regression: {len(regressions)} regression(s):",
            file=sys.stderr,
        )
        for regression in regressions:
            print(f"  {regression}", file=sys.stderr)
        return 1
    print("check_bench_regression: ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
