#!/usr/bin/env python3
"""CI perf-regression gate over the bench-smoke timings.

``python -m repro bench --smoke --smoke-json BENCH_smoke.json`` emits one
wall-clock figure per quick-suite bench module; this script compares a
current run against the committed baseline
(``benchmarks/baselines/bench_smoke_baseline.json``) and fails when any
module slowed down by more than ``--threshold`` (default 1.5×).

CI runners and developer machines differ in raw speed, so raw ratios
would gate on hardware, not code.  The comparison is therefore
**calibrated**: each module's ratio ``current / baseline`` is divided by
the *median* ratio across modules (the machine-speed factor), and only
the calibrated ratio is gated.  A uniform slowdown (slower runner) moves
every ratio equally and passes; a regression in one module moves only
that module's ratio and fails.  Modules faster than ``--min-seconds`` in
the baseline are reported but never gated (timer noise dominates them).

The incremental subsystem gets its own gate over the
``bench_s2_incremental.py --smoke`` report (``--incremental-current``):
the single-edge ``update_ms`` and the sustained-stream ``ops_per_sec``
are compared against ``benchmarks/baselines/s2_incremental_baseline.json``,
calibrated by the cold fresh-solve time of the same run — the one number
in that report that tracks raw machine speed and not the incremental
code paths under test.

The sharded service gets a third gate over the
``bench_s3_sharded.py --smoke`` report (``--sharded-current``): the
2-shard-vs-single-process throughput ratio must clear the absolute
``--sharded-floor`` (default 1.5×).  A speedup ratio is already
machine-calibrated (both sides ran on the same box in the same run), but
it is *meaningless* on a single-CPU box — two solver processes cannot
outrun one on one core — so the throughput gate is skipped (with a
message, exit 0) when the report's recorded ``cpu_count`` is below 2.
The report's correctness sections (bit-identity, update locality,
kill/restart) are asserted by the bench itself regardless of CPU count.

Usage::

    python scripts/check_bench_regression.py --current BENCH_smoke.json
    python scripts/check_bench_regression.py --current ... --update-baseline
    python scripts/check_bench_regression.py \
        --incremental-current benchmarks/results/s2_incremental.json
    python scripts/check_bench_regression.py \
        --sharded-current benchmarks/results/s3_sharded.json

Exit codes: 0 ok, 1 regression(s), 2 bad input.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
DEFAULT_BASELINE = REPO_ROOT / "benchmarks" / "baselines" / "bench_smoke_baseline.json"
DEFAULT_INC_BASELINE = (
    REPO_ROOT / "benchmarks" / "baselines" / "s2_incremental_baseline.json"
)
DEFAULT_SHARDED_BASELINE = (
    REPO_ROOT / "benchmarks" / "baselines" / "s3_sharded_baseline.json"
)


def module_seconds(doc: dict) -> dict[str, float]:
    """``{module: seconds}`` from a bench-smoke JSON document, failed
    modules excluded (the smoke run itself already gates on failures)."""
    modules = doc.get("modules")
    if not isinstance(modules, dict) or not modules:
        raise ValueError("document has no 'modules' timings")
    out: dict[str, float] = {}
    for name, entry in modules.items():
        if not isinstance(entry, dict) or "seconds" not in entry:
            raise ValueError(
                f"module {name!r} entry has no 'seconds' timing "
                "(is this really a bench --smoke --smoke-json document?)"
            )
        if not entry.get("ok", True):
            continue
        out[name] = float(entry["seconds"])
    return out


def compare(
    current: dict[str, float],
    baseline: dict[str, float],
    threshold: float = 1.5,
    min_seconds: float = 0.5,
) -> tuple[list[str], list[str]]:
    """Calibrated comparison; returns ``(regressions, report_lines)``."""
    common = sorted(set(current) & set(baseline))
    if not common:
        raise ValueError("no common modules between current and baseline")
    ratios = {name: current[name] / max(1e-9, baseline[name]) for name in common}
    gated = [name for name in common if baseline[name] >= min_seconds]
    calibration_pool = gated if gated else common
    calibration = statistics.median(ratios[name] for name in calibration_pool)
    calibration = max(calibration, 1e-9)
    regressions: list[str] = []
    lines = [
        f"machine-speed calibration factor: {calibration:.3f} "
        f"(median ratio over {len(calibration_pool)} modules)"
    ]
    for name in common:
        calibrated = ratios[name] / calibration
        gate = baseline[name] >= min_seconds
        status = "ok"
        if gate and calibrated > threshold:
            status = f"REGRESSION (> {threshold:.2f}x)"
            regressions.append(
                f"{name}: {baseline[name]:.2f}s -> {current[name]:.2f}s "
                f"({calibrated:.2f}x calibrated)"
            )
        elif not gate:
            status = "ungated (baseline below min-seconds)"
        lines.append(
            f"  {name:<28} base {baseline[name]:7.2f}s  cur {current[name]:7.2f}s  "
            f"raw {ratios[name]:5.2f}x  calibrated {calibrated:5.2f}x  {status}"
        )
    # A module with no baseline entry cannot be gated at all — silently
    # skipping it would let a brand-new bench rot from day one, so both
    # directions are hard failures with an actionable message instead of
    # a KeyError (or nothing).
    missing = sorted(set(baseline) - set(current))
    for name in missing:
        regressions.append(
            f"{name}: present in the baseline but missing from the current "
            "run — if the bench module was removed on purpose, refresh the "
            "baseline with --update-baseline"
        )
    new = sorted(set(current) - set(baseline))
    for name in new:
        regressions.append(
            f"{name}: missing from the baseline ({len(baseline)} modules) — "
            "commit a refreshed baseline via "
            "scripts/check_bench_regression.py --current <smoke.json> "
            "--update-baseline"
        )
    return regressions, lines


def incremental_metrics(doc: dict) -> dict[str, float]:
    """The gated numbers from a ``bench_s2_incremental`` report."""
    try:
        hot = doc["service_hot_update"]
        sustained = doc["sustained"]
        return {
            "cold_ms": float(hot["cold_ms"]),
            "update_ms": float(hot["update_ms"]),
            "ops_per_sec": float(sustained["ops_per_sec"]),
        }
    except (KeyError, TypeError) as exc:
        raise ValueError(
            f"not a bench_s2_incremental report (missing {exc})"
        ) from exc


def compare_incremental(
    current: dict[str, float],
    baseline: dict[str, float],
    threshold: float = 1.5,
) -> tuple[list[str], list[str]]:
    """Calibrated comparison of the incremental-subsystem numbers.

    The cold fresh-solve of the hot-update probe measures the *solver*
    on this machine — none of the incremental code paths — so its ratio
    ``current / baseline`` is the machine-speed factor.  ``update_ms``
    regresses when its calibrated ratio exceeds ``threshold``;
    ``ops_per_sec`` (higher is better) regresses when its calibrated
    ratio falls below ``1 / threshold``.
    """
    calibration = max(1e-9, current["cold_ms"] / max(1e-9, baseline["cold_ms"]))
    lines = [f"machine-speed calibration factor: {calibration:.3f} (cold solve)"]
    regressions: list[str] = []
    update_ratio = (current["update_ms"] / max(1e-9, baseline["update_ms"]))
    update_cal = update_ratio / calibration
    status = "ok"
    if update_cal > threshold:
        status = f"REGRESSION (> {threshold:.2f}x)"
        regressions.append(
            f"update_ms: {baseline['update_ms']:.2f}ms -> "
            f"{current['update_ms']:.2f}ms ({update_cal:.2f}x calibrated)"
        )
    lines.append(
        f"  update_ms     base {baseline['update_ms']:8.2f}  cur "
        f"{current['update_ms']:8.2f}  calibrated {update_cal:5.2f}x  {status}"
    )
    ops_ratio = current["ops_per_sec"] / max(1e-9, baseline["ops_per_sec"])
    ops_cal = ops_ratio * calibration
    status = "ok"
    if ops_cal < 1.0 / threshold:
        status = f"REGRESSION (< {1.0 / threshold:.2f}x)"
        regressions.append(
            f"ops_per_sec: {baseline['ops_per_sec']:.0f} -> "
            f"{current['ops_per_sec']:.0f} ({ops_cal:.2f}x calibrated)"
        )
    lines.append(
        f"  ops_per_sec   base {baseline['ops_per_sec']:8.0f}  cur "
        f"{current['ops_per_sec']:8.0f}  calibrated {ops_cal:5.2f}x  {status}"
    )
    return regressions, lines


def run_incremental_gate(args: argparse.Namespace) -> int:
    try:
        current_doc = json.loads(Path(args.incremental_current).read_text())
        current = incremental_metrics(current_doc)
    except (OSError, ValueError) as exc:
        print(
            f"check_bench_regression: bad --incremental-current: {exc}",
            file=sys.stderr,
        )
        return 2
    baseline_path = Path(args.incremental_baseline)
    if args.update_baseline:
        baseline_path.parent.mkdir(parents=True, exist_ok=True)
        baseline_path.write_text(json.dumps(current_doc, indent=2) + "\n")
        print(f"incremental baseline updated: {baseline_path}")
        return 0
    try:
        baseline = incremental_metrics(json.loads(baseline_path.read_text()))
    except (OSError, ValueError) as exc:
        print(
            f"check_bench_regression: bad incremental baseline: {exc}",
            file=sys.stderr,
        )
        return 2
    regressions, lines = compare_incremental(
        current, baseline, threshold=args.threshold
    )
    print("\n".join(lines))
    if regressions:
        print(
            f"check_bench_regression: {len(regressions)} regression(s):",
            file=sys.stderr,
        )
        for regression in regressions:
            print(f"  {regression}", file=sys.stderr)
        return 1
    print("check_bench_regression: ok (incremental)")
    return 0


def sharded_metrics(doc: dict) -> dict:
    """The gated numbers from a ``bench_s3_sharded`` report."""
    try:
        return {
            "cpu_count": int(doc["cpu_count"]),
            "speedup_2shard": (
                None if doc["speedup_2shard"] is None
                else float(doc["speedup_2shard"])
            ),
            "single_qps": float(doc["single_process"]["achieved_qps"]),
            "sharded_qps": {
                k: float(v["achieved_qps"])
                for k, v in doc["sharded"].items()
            },
        }
    except (KeyError, TypeError, ValueError) as exc:
        raise ValueError(f"not a bench_s3_sharded report (missing {exc})") from exc


def run_sharded_gate(args: argparse.Namespace) -> int:
    try:
        current_doc = json.loads(Path(args.sharded_current).read_text())
        current = sharded_metrics(current_doc)
    except (OSError, ValueError) as exc:
        print(
            f"check_bench_regression: bad --sharded-current: {exc}",
            file=sys.stderr,
        )
        return 2
    baseline_path = Path(args.sharded_baseline)
    if args.update_baseline:
        baseline_path.parent.mkdir(parents=True, exist_ok=True)
        baseline_path.write_text(json.dumps(current_doc, indent=2) + "\n")
        print(f"sharded baseline updated: {baseline_path}")
        return 0
    qps_line = ", ".join(
        f"{k}-shard {v:.1f}" for k, v in sorted(current["sharded_qps"].items())
    )
    print(
        f"sharded run: cpu_count={current['cpu_count']}, single "
        f"{current['single_qps']:.1f} qps, {qps_line}"
    )
    if current["cpu_count"] < 2:
        print(
            "check_bench_regression: sharded throughput gate SKIPPED — "
            f"this box has {current['cpu_count']} CPU(s); two solver "
            "processes cannot outrun one on a single core.  The bench's "
            "correctness assertions (bit-identity, update locality, "
            "kill/restart) still ran and gated."
        )
        return 0
    regressions: list[str] = []
    speedup = current["speedup_2shard"]
    if speedup is None:
        regressions.append("report has no 2-shard topology measurement")
    elif speedup < args.sharded_floor:
        regressions.append(
            f"2-shard speedup {speedup:.2f}x < the {args.sharded_floor:.2f}x "
            "floor"
        )
    else:
        print(
            f"  2-shard speedup {speedup:.2f}x >= {args.sharded_floor:.2f}x "
            "floor: ok"
        )
    # Relative compare against the committed baseline, only when that
    # baseline was itself recorded on a multi-CPU box (a 1-CPU baseline
    # carries no scale-out signal to regress against).
    try:
        baseline = sharded_metrics(json.loads(baseline_path.read_text()))
    except (OSError, ValueError):
        baseline = None
        print("  (no usable sharded baseline; absolute floor only)")
    if baseline is not None and baseline["cpu_count"] >= 2 and speedup:
        base_speedup = baseline["speedup_2shard"] or 0.0
        if base_speedup and speedup < base_speedup / args.threshold:
            regressions.append(
                f"2-shard speedup regressed: baseline {base_speedup:.2f}x "
                f"-> {speedup:.2f}x (> {args.threshold:.2f}x drop)"
            )
        else:
            print(
                f"  vs baseline speedup {base_speedup:.2f}x: ok"
            )
    if regressions:
        print(
            f"check_bench_regression: {len(regressions)} regression(s):",
            file=sys.stderr,
        )
        for regression in regressions:
            print(f"  {regression}", file=sys.stderr)
        return 1
    print("check_bench_regression: ok (sharded)")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--current",
        help="bench-smoke JSON of the run under test "
        "(python -m repro bench --smoke --smoke-json <path>)",
    )
    parser.add_argument(
        "--incremental-current",
        help="bench_s2_incremental JSON to gate against the incremental "
        "baseline instead of the bench-smoke module timings",
    )
    parser.add_argument(
        "--incremental-baseline", default=str(DEFAULT_INC_BASELINE),
        help=f"committed incremental baseline (default {DEFAULT_INC_BASELINE})",
    )
    parser.add_argument(
        "--sharded-current",
        help="bench_s3_sharded JSON to gate the 2-shard throughput floor "
        "(skipped with a message on boxes with < 2 CPUs)",
    )
    parser.add_argument(
        "--sharded-baseline", default=str(DEFAULT_SHARDED_BASELINE),
        help=f"committed sharded baseline (default {DEFAULT_SHARDED_BASELINE})",
    )
    parser.add_argument(
        "--sharded-floor", type=float, default=1.5,
        help="absolute 2-shard-vs-single-process speedup floor (default 1.5)",
    )
    parser.add_argument(
        "--baseline", default=str(DEFAULT_BASELINE),
        help=f"committed baseline JSON (default {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--threshold", type=float, default=1.5,
        help="fail when a module's calibrated slowdown exceeds this (default 1.5)",
    )
    parser.add_argument(
        "--min-seconds", type=float, default=0.5,
        help="baseline entries faster than this are reported but not gated",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="overwrite the baseline with the current run and exit 0",
    )
    args = parser.parse_args(argv)

    if args.incremental_current:
        return run_incremental_gate(args)
    if args.sharded_current:
        return run_sharded_gate(args)
    if not args.current:
        parser.error(
            "one of --current / --incremental-current / --sharded-current "
            "is required"
        )

    try:
        current_doc = json.loads(Path(args.current).read_text())
        current = module_seconds(current_doc)
    except (OSError, ValueError, KeyError) as exc:
        print(f"check_bench_regression: bad --current: {exc}", file=sys.stderr)
        return 2

    baseline_path = Path(args.baseline)
    if args.update_baseline:
        baseline_path.parent.mkdir(parents=True, exist_ok=True)
        baseline_path.write_text(json.dumps(current_doc, indent=2) + "\n")
        print(f"baseline updated: {baseline_path} ({len(current)} modules)")
        return 0

    try:
        baseline = module_seconds(json.loads(baseline_path.read_text()))
    except (OSError, ValueError, KeyError) as exc:
        print(f"check_bench_regression: bad --baseline: {exc}", file=sys.stderr)
        return 2

    try:
        regressions, lines = compare(
            current, baseline, threshold=args.threshold,
            min_seconds=args.min_seconds,
        )
    except ValueError as exc:
        print(f"check_bench_regression: {exc}", file=sys.stderr)
        return 2
    print("\n".join(lines))
    if regressions:
        print(
            f"check_bench_regression: {len(regressions)} regression(s):",
            file=sys.stderr,
        )
        for regression in regressions:
            print(f"  {regression}", file=sys.stderr)
        return 1
    print("check_bench_regression: ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
