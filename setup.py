"""Legacy setuptools entry point.

Kept so that ``pip install -e .`` works in offline environments without the
``wheel`` package (pip then falls back to ``setup.py develop``); all project
metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
