"""repro — a LOCAL-model reproduction of *Improved Distributed Δ-Coloring*
(Ghaffari, Hirvonen, Kuhn, Maus; PODC 2018, arXiv:1803.03248).

The package builds the paper's complete algorithmic system: the randomized
Δ-coloring algorithms (Theorems 1 and 3), the deterministic one (Theorem
4), the distributed Brooks' theorem repair procedure (Theorem 5), the
structural machinery (degree-choosable components, Gallai trees, the
marking process, layering, shattering), every substrate they cite (Linial
coloring, MIS, ruling sets, (deg+1)-list coloring), and the
Panconesi–Srinivasan baseline they improve on.

Quick start — everything routes through the unified solver facade
(:mod:`repro.api`)::

    from repro import random_regular_graph, solve

    graph = random_regular_graph(1000, d=4, seed=1)
    result = solve(graph, seed=1)            # "auto": picks by (n, Δ, class)
    print(result.algorithm, result.palette)  # randomized-large, Δ = 4 colors
    print(result.rounds, result.phase_rounds)
    print(result.as_dict()["wall_time_s"])   # JSON-ready schema

    # Pick an engine by registry name, batch over a process pool:
    from repro import SolverConfig, solve_many, list_algorithms

    print(list_algorithms())  # auto, randomized, ..., ps, greedy, components
    results = solve_many(graphs, SolverConfig(algorithm="ps"), workers=4)

The pre-facade entry points (:func:`delta_color`, the per-theorem
``delta_coloring_*`` functions, :func:`color_graph`, ...) remain as
deprecated-but-stable wrappers over the same engines — see docs/API.md.
See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured experiment index.
"""

from repro.api import (
    AlgorithmSpec,
    ColoringResult,
    SolverConfig,
    SolverPool,
    get_algorithm,
    list_algorithms,
    register_algorithm,
    solve,
    solve_many,
)
from repro.baselines import centralized_brooks, centralized_greedy, ps_delta_coloring
from repro.core import (
    ComponentColoring,
    DeltaColoringResult,
    DeterministicResult,
    RandomizedParams,
    default_fix_radius,
    degree_list_color,
    delta_coloring_deterministic,
    delta_coloring_large_delta,
    delta_coloring_randomized,
    delta_coloring_small_delta,
    color_graph,
    color_special,
    fix_uncolored_node,
    slocal_delta_coloring,
)
from repro.errors import (
    AlgorithmContractError,
    ColoringError,
    GraphError,
    InfeasibleListColoringError,
    NotNiceGraphError,
    ReproError,
)
from repro.graphs import (
    Graph,
    UNCOLORED,
    complete_graph,
    complete_graph_minus_edge,
    cycle_graph,
    hypercube,
    is_gallai_tree,
    is_nice,
    path_graph,
    random_gallai_tree,
    random_graph_with_max_degree,
    random_nice_graph,
    random_regular_graph,
    random_tree,
    torus_grid,
    validate_coloring,
)
from repro.graphs.generators import high_girth_regular_graph
from repro.local import RoundLedger

__version__ = "1.0.0"

__all__ = [
    "solve",
    "solve_many",
    "SolverConfig",
    "SolverPool",
    "ColoringResult",
    "AlgorithmSpec",
    "register_algorithm",
    "get_algorithm",
    "list_algorithms",
    "delta_color",
    "Graph",
    "UNCOLORED",
    "validate_coloring",
    "RandomizedParams",
    "DeltaColoringResult",
    "DeterministicResult",
    "delta_coloring_randomized",
    "delta_coloring_small_delta",
    "delta_coloring_large_delta",
    "delta_coloring_deterministic",
    "color_graph",
    "color_special",
    "ComponentColoring",
    "slocal_delta_coloring",
    "ps_delta_coloring",
    "centralized_brooks",
    "centralized_greedy",
    "degree_list_color",
    "fix_uncolored_node",
    "default_fix_radius",
    "RoundLedger",
    "cycle_graph",
    "path_graph",
    "complete_graph",
    "complete_graph_minus_edge",
    "torus_grid",
    "hypercube",
    "random_regular_graph",
    "high_girth_regular_graph",
    "random_graph_with_max_degree",
    "random_nice_graph",
    "random_gallai_tree",
    "random_tree",
    "is_nice",
    "is_gallai_tree",
    "ReproError",
    "GraphError",
    "ColoringError",
    "NotNiceGraphError",
    "InfeasibleListColoringError",
    "AlgorithmContractError",
]


def delta_color(graph: Graph, seed: int = 0, strict: bool = False) -> DeltaColoringResult:
    """Δ-color a nice graph with the best-fitting algorithm of the paper.

    Deprecated-but-stable wrapper over ``solve(graph,
    algorithm="randomized")``: dispatches on Δ exactly as the paper's
    results do — the small-Δ algorithm (Theorem 1) for Δ = 3, the
    large-Δ algorithm (Theorem 3) for Δ >= 4 — and repackages the
    facade's :class:`ColoringResult` as the legacy
    :class:`DeltaColoringResult`.  The result's ``colors`` use palette
    {1..Δ}.

    Raises :class:`NotNiceGraphError` on cliques, cycles, and paths —
    those are exactly the graphs Brooks' theorem excludes (or that need
    Ω(n) rounds).
    """
    result = solve(
        graph, algorithm="randomized", seed=seed, strict=strict, validate=False
    )
    return DeltaColoringResult(
        colors=list(result.colors),
        delta=result.delta,
        rounds=result.rounds,
        phase_rounds=dict(result.phase_rounds),
        stats=dict(result.stats),
    )
