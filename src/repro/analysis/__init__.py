"""Analysis utilities: expansion measurements, experiment sweeps, statistics."""

from repro.analysis.experiments import Row, Table, sweep
from repro.analysis.expansion import (
    ExpansionSample,
    bfs_tree_is_unique,
    lemma12_bound,
    lemma14_bound,
    lemma15_bound,
    measure_expansion,
)
from repro.analysis.stats import fit_against, loglog_slope, mean, median, stdev

__all__ = [
    "Row",
    "Table",
    "sweep",
    "ExpansionSample",
    "measure_expansion",
    "bfs_tree_is_unique",
    "lemma15_bound",
    "lemma12_bound",
    "lemma14_bound",
    "mean",
    "median",
    "stdev",
    "loglog_slope",
    "fit_against",
]
