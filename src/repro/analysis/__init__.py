"""Analysis utilities: expansion measurements, experiment sweeps,
wall-clock harness, statistics."""

from repro.analysis.experiments import Row, Table, sweep
from repro.analysis.harness import (
    HarnessReport,
    Measurement,
    SweepPoint,
    delta_coloring_sweep,
    measure,
    size_sweep,
    throughput_sweep,
)
from repro.analysis.expansion import (
    ExpansionSample,
    bfs_tree_is_unique,
    lemma12_bound,
    lemma14_bound,
    lemma15_bound,
    measure_expansion,
)
from repro.analysis.stats import fit_against, loglog_slope, mean, median, stdev

__all__ = [
    "Row",
    "Table",
    "sweep",
    "HarnessReport",
    "Measurement",
    "SweepPoint",
    "measure",
    "size_sweep",
    "delta_coloring_sweep",
    "throughput_sweep",
    "ExpansionSample",
    "measure_expansion",
    "bfs_tree_is_unique",
    "lemma15_bound",
    "lemma12_bound",
    "lemma14_bound",
    "mean",
    "median",
    "stdev",
    "loglog_slope",
    "fit_against",
]
