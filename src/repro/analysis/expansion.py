"""Expansion measurements: the structural lemmas as measurable quantities.

Section 2.2 proves that graphs without small degree-choosable components
expand:

* **Lemma 10** — the depth-r BFS tree in a DCC-free ball is *unique*
  (every non-root node has exactly one neighbour on the previous level);
* **Lemma 15** — with all degrees Δ and no DCC within radius r,
  |B_r(v)| >= (Δ-1)^{r/2} for even r;
* **Lemma 12** — after the marking process (b = 6, Δ >= 4) the unmarked
  graph still expands: |B_r(v)| >= (Δ-2)^{r/2};
* **Lemma 14** — for Δ = 3 with b = 12: |B_r(v)| >= 4^{r/6} = 2^{r/3}.

Experiment E6 samples nodes in high-girth regular graphs (with and
without a marking pass) and tabulates the measured level sizes against
these bounds.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.graphs.bfs import bfs_levels, bfs_tree
from repro.graphs.graph import Graph

__all__ = [
    "ExpansionSample",
    "measure_expansion",
    "bfs_tree_is_unique",
    "lemma15_bound",
    "lemma12_bound",
    "lemma14_bound",
]


@dataclass
class ExpansionSample:
    """Measured BFS level sizes around sampled roots.

    ``level_sizes[i]`` is the list of |B_i(v)| over sampled roots v;
    ``min_at_radius``/``mean_at_radius`` summarise the target radius.
    """

    radius: int
    roots: list[int] = field(default_factory=list)
    level_sizes: list[list[int]] = field(default_factory=list)

    def min_at_radius(self) -> int:
        if not self.level_sizes:
            return 0
        return min(sizes[self.radius] for sizes in self.level_sizes)

    def mean_at_radius(self) -> float:
        if not self.level_sizes:
            return 0.0
        return sum(sizes[self.radius] for sizes in self.level_sizes) / len(self.level_sizes)


def measure_expansion(
    graph: Graph,
    radius: int,
    num_roots: int = 30,
    allowed: set[int] | None = None,
    rng: random.Random | None = None,
) -> ExpansionSample:
    """Sample BFS level sizes |B_0..B_radius| around random roots.

    ``allowed`` restricts the traversal (e.g. to unmarked nodes for the
    Lemma 12/14 measurements).
    """
    rng = rng if rng is not None else random.Random(0)
    pool = sorted(allowed) if allowed is not None else list(range(graph.n))
    sample = ExpansionSample(radius=radius)
    if not pool:
        return sample
    for _ in range(num_roots):
        root = pool[rng.randrange(len(pool))]
        levels = bfs_levels(graph, root, radius, allowed=allowed)
        sample.roots.append(root)
        sample.level_sizes.append([len(level) for level in levels])
    return sample


def bfs_tree_is_unique(graph: Graph, root: int, radius: int) -> bool:
    """Check Lemma 10's uniqueness: every node at level t >= 1 of the BFS
    tree has exactly one neighbour on level t-1."""
    _parent, level = bfs_tree(graph, root, radius)
    for v, lv in level.items():
        if lv == 0:
            continue
        up_neighbors = sum(1 for u in graph.adj[v] if level.get(u) == lv - 1)
        if up_neighbors != 1:
            return False
    return True


def lemma15_bound(delta: int, radius: int) -> float:
    """(Δ-1)^{r/2} — the DCC-free, Δ-regular expansion bound."""
    return float(max(1, delta - 1)) ** (radius / 2)


def lemma12_bound(delta: int, radius: int) -> float:
    """(Δ-2)^{r/2} — expansion surviving the marking process (Δ >= 4)."""
    return float(max(1, delta - 2)) ** (radius / 2)


def lemma14_bound(radius: int) -> float:
    """4^{r/6} — the Δ = 3 variant (backoff 12)."""
    return 4.0 ** (radius / 6)
