"""Experiment harness: sweeps, repetition, and table rendering.

Every benchmark in ``benchmarks/`` builds its table through this module so
that the output format is uniform: one row per parameter point, measured
columns (mean ± stdev over seeds) next to the paper-predicted shape.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass, field

from repro.analysis.stats import mean, stdev

__all__ = ["Row", "Table", "sweep"]


@dataclass
class Row:
    """One table row: a parameter point plus measured/derived columns."""

    params: dict[str, object]
    values: dict[str, float]
    spreads: dict[str, float] = field(default_factory=dict)


@dataclass
class Table:
    """A rendered experiment table (the benchmark deliverable)."""

    title: str
    rows: list[Row] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def render(self) -> str:
        """Fixed-width text rendering with one header line per column."""
        if not self.rows:
            return f"== {self.title} ==\n(no rows)"
        param_keys = list(self.rows[0].params)
        value_keys = list(self.rows[0].values)
        headers = param_keys + value_keys
        body: list[list[str]] = []
        for row in self.rows:
            cells = [str(row.params[k]) for k in param_keys]
            for k in value_keys:
                value = row.values[k]
                spread = row.spreads.get(k)
                if spread is not None and spread > 0:
                    cells.append(f"{value:.1f}±{spread:.1f}")
                else:
                    cells.append(f"{value:g}" if value != int(value) else str(int(value)))
            body.append(cells)
        widths = [
            max(len(headers[i]), max(len(r[i]) for r in body)) for i in range(len(headers))
        ]
        lines = [f"== {self.title} =="]
        lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
        lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
        for cells in body:
            lines.append("  ".join(cells[i].ljust(widths[i]) for i in range(len(cells))))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)


def sweep(
    title: str,
    points: Iterable[dict[str, object]],
    run: Callable[[dict[str, object], int], dict[str, float]],
    seeds: Sequence[int] = (0, 1, 2),
    notes: Sequence[str] = (),
) -> Table:
    """Run ``run(point, seed)`` for every point × seed and aggregate.

    ``run`` returns a dict of measured values; each value column is
    aggregated to mean ± stdev over the seeds.
    """
    table = Table(title=title, notes=list(notes))
    for point in points:
        samples: dict[str, list[float]] = {}
        for seed in seeds:
            measured = run(point, seed)
            for key, value in measured.items():
                samples.setdefault(key, []).append(float(value))
        values = {k: mean(v) for k, v in samples.items()}
        spreads = {k: stdev(v) for k, v in samples.items()}
        table.rows.append(Row(params=dict(point), values=values, spreads=spreads))
    return table
