"""Scalable wall-clock benchmark harness: size sweeps, warmup, repetition,
JSON output.

The experiment tables in :mod:`repro.analysis.experiments` measure *round
complexity* — the paper's own metric.  This module measures the other axis
the ROADMAP cares about: **wall-clock throughput of the simulator itself**,
so that performance work on the CSR graph core and the hot algorithm loops
is demonstrated by numbers, not claimed.  Design:

* :func:`measure` — run one thunk with warmup and repetition, reporting
  best/mean/stdev seconds (best-of-N is the standard noise-resistant
  summary for CPU-bound benchmarks).
* :func:`size_sweep` — run a ``setup → run`` pair across instance sizes;
  ``setup`` (graph generation) is excluded from the timed region.
* :class:`HarnessReport` — collects sweeps plus environment metadata and
  serialises to JSON (``benchmarks/results/*.json``) so regressions can be
  diffed mechanically between commits.
* :func:`delta_coloring_sweep` — the canonical scaling workload: generate
  a random Δ-regular graph at each size and Δ-color it end-to-end.  This
  is what ``python -m repro bench --sweep`` drives, up to and beyond the
  million-edge instances the CSR core was built for.

The harness is dependency-free (``time.perf_counter`` + ``json``) and
deliberately decoupled from pytest-benchmark: CI smoke runs and ad-hoc
scaling measurements should not need a test runner.
"""

from __future__ import annotations

import json
import math
import platform
import sys
import time
from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

__all__ = [
    "Measurement",
    "SweepPoint",
    "HarnessReport",
    "measure",
    "size_sweep",
    "delta_coloring_sweep",
    "throughput_sweep",
    "service_load_sweep",
    "incremental_update_sweep",
    "carve_matching",
]


@dataclass
class Measurement:
    """Timing summary of one measured case."""

    label: str
    repeats: int
    best_s: float
    mean_s: float
    stdev_s: float
    meta: dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        out = {
            "label": self.label,
            "repeats": self.repeats,
            "best_s": round(self.best_s, 6),
            "mean_s": round(self.mean_s, 6),
            "stdev_s": round(self.stdev_s, 6),
        }
        if self.meta:
            out["meta"] = self.meta
        return out


@dataclass
class SweepPoint:
    """One size point of a sweep: the parameters plus its measurement."""

    params: dict[str, Any]
    measurement: Measurement

    def as_dict(self) -> dict[str, Any]:
        return {"params": self.params, **self.measurement.as_dict()}


def measure(
    fn: Callable[[], Any],
    label: str = "case",
    warmup: int = 1,
    repeats: int = 3,
    meta_from_result: Callable[[Any], dict[str, Any]] | None = None,
) -> Measurement:
    """Time ``fn`` with ``warmup`` discarded runs and ``repeats`` kept runs.

    ``meta_from_result`` may extract result metadata (rounds, palette, ...)
    from the final run's return value into ``Measurement.meta``.
    """
    if warmup < 0 or repeats < 1:
        raise ValueError("need warmup >= 0 and repeats >= 1")
    for _ in range(warmup):
        fn()
    samples: list[float] = []
    result: Any = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        samples.append(time.perf_counter() - t0)
    mean = sum(samples) / len(samples)
    var = sum((s - mean) ** 2 for s in samples) / len(samples)
    meta = meta_from_result(result) if meta_from_result is not None else {}
    return Measurement(
        label=label,
        repeats=repeats,
        best_s=min(samples),
        mean_s=mean,
        stdev_s=math.sqrt(var),
        meta=meta,
    )


def size_sweep(
    points: Iterable[dict[str, Any]],
    setup: Callable[[dict[str, Any]], Any],
    run: Callable[[Any], Any],
    warmup: int = 1,
    repeats: int = 3,
    label: Callable[[dict[str, Any]], str] | None = None,
    meta_from_result: Callable[[Any], dict[str, Any]] | None = None,
) -> list[SweepPoint]:
    """Measure ``run(setup(point))`` for every parameter point.

    ``setup`` output (typically a generated graph) is built once per point
    and excluded from the timed region; ``run`` is what warmup/repetition
    time.
    """
    results: list[SweepPoint] = []
    for point in points:
        fixture = setup(point)
        name = label(point) if label is not None else str(point)
        measurement = measure(
            lambda: run(fixture),
            label=name,
            warmup=warmup,
            repeats=repeats,
            meta_from_result=meta_from_result,
        )
        results.append(SweepPoint(params=dict(point), measurement=measurement))
    return results


@dataclass
class HarnessReport:
    """A named collection of sweep results with environment metadata."""

    name: str
    sweeps: dict[str, list[SweepPoint]] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    def add(self, sweep_name: str, points: list[SweepPoint]) -> None:
        self.sweeps[sweep_name] = points

    def as_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "python": sys.version.split()[0],
            "platform": platform.platform(),
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
            "notes": list(self.notes),
            "sweeps": {
                key: [p.as_dict() for p in points]
                for key, points in self.sweeps.items()
            },
        }

    def write_json(self, path: str | Path) -> Path:
        """Serialise to ``path`` (parent directories created)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.as_dict(), indent=2) + "\n")
        return path

    def render(self) -> str:
        """Fixed-width text summary (one line per sweep point)."""
        lines = [f"== harness: {self.name} =="]
        for sweep_name, points in self.sweeps.items():
            lines.append(f"-- {sweep_name}")
            for p in points:
                meta = (
                    " ".join(f"{k}={v}" for k, v in p.measurement.meta.items())
                    if p.measurement.meta
                    else ""
                )
                lines.append(
                    f"   {p.measurement.label:<28} best {p.measurement.best_s:8.3f}s  "
                    f"mean {p.measurement.mean_s:8.3f}s ±{p.measurement.stdev_s:.3f}  {meta}"
                )
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)


def delta_coloring_sweep(
    sizes: Sequence[int],
    delta: int = 8,
    seed: int = 0,
    warmup: int = 1,
    repeats: int = 3,
    validate: bool = True,
    algorithm: str = "randomized-large",
    on_phase: Callable[[str, int, dict[str, Any]], None] | None = None,
) -> list[SweepPoint]:
    """End-to-end Δ-coloring wall-clock sweep on random Δ-regular graphs.

    ``sizes`` are node counts; edges per instance are ``n·Δ/2`` (so a
    250_000-node Δ=8 instance is the canonical million-edge run).  Graph
    generation is excluded from the timed region; validation is part of the
    pipeline under test (it is unconditional in production use).

    Each point runs through :func:`repro.api.solve`; ``algorithm`` is any
    registry name and ``on_phase`` is the solver's phase observer (the
    harness reads phase costs from the hook, not result internals).  The
    observer is replayed exactly **once per size point** — from the final
    measured run — so aggregating consumers see one event per phase per
    point, not warmup+repeats duplicates; the timed runs themselves are
    observer-free.
    """
    from repro.api import SolverConfig, solve
    from repro.graphs.generators import random_regular_graph

    config = SolverConfig(algorithm=algorithm, seed=seed, validate=validate)

    def setup(point: dict[str, Any]):
        return random_regular_graph(point["n"], delta, seed=seed)

    def run(graph):
        return solve(graph, config)

    # measure() hands the final repeat's result to meta_from_result once
    # per point — the natural place to replay the phases.
    def meta_from_result(result) -> dict[str, Any]:
        if on_phase is not None:
            for name, rounds in result.phase_rounds.items():
                on_phase(name, rounds, result.phase_stats.get(name, {}))
        return {"rounds": result.rounds}

    return size_sweep(
        [{"n": n, "delta": delta, "m": n * delta // 2} for n in sizes],
        setup,
        run,
        warmup=warmup,
        repeats=repeats,
        label=lambda p: f"n={p['n']} Δ={p['delta']} m={p['m']}",
        meta_from_result=meta_from_result,
    )


def throughput_sweep(
    sizes: Sequence[int],
    delta: int = 8,
    seed: int = 0,
    batch: int = 4,
    workers: int = 1,
    warmup: int = 1,
    repeats: int = 3,
    algorithm: str = "randomized-large",
) -> list[SweepPoint]:
    """Batch-throughput sweep: ``batch`` instances per size point through
    :func:`repro.api.solve_many` on ``workers`` processes.

    One :class:`repro.api.SolverPool` is created and warmed up front and
    reused across every sweep point (and every warmup/repeat run), so the
    timed region measures solving, not worker re-spawning.  The per-point
    metadata records instances/second — the number the ROADMAP's
    throughput workloads care about.
    """
    from repro.api import SolverConfig, SolverPool, solve_many
    from repro.graphs.generators import random_regular_graph

    config = SolverConfig(algorithm=algorithm, seed=seed, validate=False)

    def setup(point: dict[str, Any]):
        return [
            random_regular_graph(point["n"], delta, seed=seed + i)
            for i in range(batch)
        ]

    points = [
        {"n": n, "delta": delta, "batch": batch, "workers": workers}
        for n in sizes
    ]
    pool = SolverPool(workers).warm() if workers > 1 else None
    try:
        sweep_points = size_sweep(
            points,
            setup,
            lambda graphs: solve_many(graphs, config, pool=pool),
            warmup=warmup,
            repeats=repeats,
            label=lambda p: f"n={p['n']} Δ={p['delta']} ×{p['batch']} w={p['workers']}",
            meta_from_result=lambda rs: {"solved": len(rs)},
        )
    finally:
        if pool is not None:
            pool.close()
    for point in sweep_points:
        point.measurement.meta["graphs_per_s"] = round(
            batch / point.measurement.best_s, 2
        )
    return sweep_points


def carve_matching(graph, size: int) -> list[tuple[int, int]]:
    """``size`` pairwise-disjoint edges of ``graph`` (greedy matching).

    The canonical way to build an *updatable* benchmark instance: a
    Δ-regular graph minus a matching keeps Δ while giving every matched
    endpoint one unit of degree slack, so re-inserting matching edges is
    a Δ-preserving edit stream (inserting into a perfectly Δ-regular
    graph would raise Δ and force a full re-solve on every op).
    """
    matching: list[tuple[int, int]] = []
    used: set[int] = set()
    for u, v in graph.edges():
        if u not in used and v not in used:
            matching.append((u, v))
            used.add(u)
            used.add(v)
            if len(matching) == size:
                break
    if len(matching) < size:
        raise ValueError(
            f"graph has no matching of size {size} (found {len(matching)})"
        )
    return matching


def incremental_update_sweep(
    sizes: Sequence[int],
    delta: int = 8,
    edits: Sequence[int] = (1, 16, 256),
    seed: int = 0,
    warmup: int = 1,
    repeats: int = 5,
    algorithm: str = "randomized-large",
) -> list[SweepPoint]:
    """Update-op latency vs fresh-solve latency across edit sizes.

    Per size point: a random Δ-regular graph minus a matching (the
    updatable instance — see :func:`carve_matching`) is solved fresh
    (timed), then for each edit size ``k`` the same ``k`` matching edges
    are repeatedly *inserted* through :func:`repro.api.solve_incremental`
    — the op that can conflict and exercise the repair ladder; each
    timed call is one update op on the current version, seeded by the
    previous op's result, exactly the service's ``update``-verb workload
    (validation included on both sides of the comparison).  Between
    timed samples the chunk is deleted again, *outside* the timed
    region: deletions are trivially conflict-free, and letting them into
    the sample pool would report the cheap half of the stream as the
    headline.  Per-point metadata aggregates the repair stats over every
    timed insert and records the fresh baseline and the speedup — the
    number the incremental subsystem exists to deliver.
    """
    from repro.api import SolverConfig, solve, solve_incremental
    from repro.graphs.generators import random_regular_graph

    config = SolverConfig(algorithm=algorithm, seed=seed)
    points: list[SweepPoint] = []
    for n in sizes:
        full = random_regular_graph(n, delta, seed=seed)
        matching = carve_matching(full, max(edits))
        base = full.apply_updates(removed=matching)
        fresh = measure(
            lambda: solve(base, config),
            label=f"fresh-solve n={n} Δ={delta}",
            warmup=warmup,
            repeats=repeats,
            meta_from_result=lambda r: {"rounds": r.rounds},
        )
        points.append(
            SweepPoint(
                params={"n": n, "delta": delta, "kind": "fresh"},
                measurement=fresh,
            )
        )
        parent = solve(base, config)
        for k in edits:
            chunk = matching[:k]
            graph, result = base, parent
            samples: list[float] = []
            agg = {"conflicts": 0, "recolored": 0, "max_radius": 0,
                   "full_resolves": 0}
            for i in range(warmup + repeats):
                t0 = time.perf_counter()
                inserted = solve_incremental(
                    graph, result, edges_added=chunk, config=config
                )
                elapsed = time.perf_counter() - t0
                if i >= warmup:
                    samples.append(elapsed)
                    agg["conflicts"] += inserted.update["conflicts"]
                    agg["recolored"] += inserted.update["recolored_count"]
                    agg["max_radius"] = max(
                        agg["max_radius"], inserted.update["max_repair_radius"]
                    )
                    agg["full_resolves"] += inserted.update["full_resolve"]
                # untimed restore so every timed sample inserts afresh
                restored = solve_incremental(
                    inserted.graph, inserted.result, edges_removed=chunk,
                    config=config,
                )
                graph, result = restored.graph, restored.result
            mean = sum(samples) / len(samples)
            var = sum((s - mean) ** 2 for s in samples) / len(samples)
            update = Measurement(
                label=f"update k={k} n={n} Δ={delta}",
                repeats=len(samples),
                best_s=min(samples),
                mean_s=mean,
                stdev_s=math.sqrt(var),
                meta=dict(agg),
            )
            update.meta["fresh_best_s"] = round(fresh.best_s, 6)
            update.meta["speedup"] = round(fresh.best_s / update.best_s, 1)
            points.append(
                SweepPoint(
                    params={"n": n, "delta": delta, "kind": "update", "edits": k},
                    measurement=update,
                )
            )
    return points


def sustained_update_stream(
    n: int = 100_000,
    delta: int = 8,
    ops: int = 2000,
    matching_size: int = 256,
    seed: int = 0,
    validate: bool = True,
    backend: str = "dynamic",
    algorithm: str = "randomized-large",
) -> dict:
    """Sustained update throughput on one long-lived engine.

    The complement of :func:`incremental_update_sweep`: instead of one
    facade call per measurement (engine setup, fresh immutable graph,
    result marshalling — the *service* path), a single
    :class:`repro.core.incremental.IncrementalColoring` engine absorbs a
    long alternating insert/delete stream over a carved matching — the
    *streaming* path the dynamic backend exists for.  Matching edges
    keep Δ fixed by construction (see :func:`carve_matching`), so no op
    forces a full re-solve and every op exercises exactly the in-place
    delta + conflict-repair machinery, with per-op dirty-region
    validation on unless disabled.

    Returns a flat dict (ops/sec, p50/p99/max latencies, engine repair
    totals, the cold fresh-solve baseline) ready for the bench report.
    """
    from repro.api import SolverConfig, solve
    from repro.core.incremental import IncrementalColoring
    from repro.graphs.generators import random_regular_graph

    config = SolverConfig(algorithm=algorithm, seed=seed)
    full = random_regular_graph(n, delta, seed=seed)
    matching = carve_matching(full, matching_size)
    base = full.apply_updates(removed=matching)
    t0 = time.perf_counter()
    parent = solve(base, config)
    cold_s = time.perf_counter() - t0
    engine = IncrementalColoring.from_result(
        base,
        parent,
        config=config.without_observer(),
        backend=backend,
        validate=validate,
    )
    # One untimed round trip warms the stream: backend conversion,
    # adjacency caches, the engine's registry lookup.
    engine.insert_edge(*matching[0])
    engine.delete_edge(*matching[0])
    inserted = [False] * len(matching)
    latencies: list[float] = []
    idx = 0
    started = time.perf_counter()
    for _ in range(ops):
        u, v = matching[idx]
        t1 = time.perf_counter()
        if inserted[idx]:
            engine.delete_edge(u, v)
        else:
            engine.insert_edge(u, v)
        latencies.append(time.perf_counter() - t1)
        inserted[idx] = not inserted[idx]
        idx = (idx + 1) % len(matching)
    elapsed = time.perf_counter() - started
    latencies.sort()
    return {
        "n": n,
        "delta": delta,
        "ops": ops,
        "backend": backend,
        "validate": validate,
        "matching_size": matching_size,
        "elapsed_s": round(elapsed, 6),
        "ops_per_sec": round(ops / elapsed, 1),
        "p50_us": round(latencies[len(latencies) // 2] * 1e6, 1),
        "p99_us": round(latencies[(len(latencies) * 99) // 100] * 1e6, 1),
        "max_us": round(latencies[-1] * 1e6, 1),
        "cold_solve_s": round(cold_s, 6),
        "conflicts": engine.totals["conflicts"],
        "recolored": engine.totals["recolored"],
        "full_resolves": engine.totals["full_resolves"],
    }


def service_load_sweep(
    duplicate_ratios: Sequence[float] = (0.0, 0.5, 0.9),
    n: int = 512,
    delta: int = 4,
    requests: int = 100,
    hot_instances: int = 8,
    workers: int = 1,
    max_batch: int = 8,
    seed: int = 0,
    algorithm: str = "auto",
) -> list[SweepPoint]:
    """Serving-layer sweep: QPS / tail latency / hit rate vs duplicate ratio.

    Drives the :class:`repro.service.BatchingGateway` *in process* (no
    TCP — the wire-level load generator is ``benchmarks/
    bench_s1_service.py``), submitting ``requests`` solve requests per
    point.  A ``duplicate_ratio`` fraction of them is drawn from a pool
    of ``hot_instances`` repeated instances (cache/coalescing traffic);
    the rest are fresh seeds.  The queue bound is sized to admit
    everything — shedding behaviour is the load generator's concern;
    this sweep measures the cache's effect on throughput and tail.

    Per-point metadata: achieved ``qps``, latency ``p50_ms``/``p99_ms``,
    and the cache ``hit_rate`` over the whole point.
    """
    import asyncio

    from repro.api import SolverConfig
    from repro.graphs.generators import random_regular_graph
    from repro.service.batcher import BatchingGateway

    if hot_instances < 1:
        raise ValueError(f"hot_instances must be >= 1, got {hot_instances}")
    config = SolverConfig(algorithm=algorithm, seed=seed, validate=False)
    points: list[SweepPoint] = []
    for ratio in duplicate_ratios:
        if not 0.0 <= ratio <= 1.0:
            raise ValueError(f"duplicate ratio must be in [0, 1], got {ratio}")
        hot = [
            random_regular_graph(n, delta, seed=seed + i)
            for i in range(hot_instances)
        ]
        duplicates = int(round(ratio * requests))
        fresh = [
            random_regular_graph(n, delta, seed=seed + hot_instances + 1 + i)
            for i in range(requests - duplicates)
        ]
        # Deterministic interleaving: every k-th request is a hot repeat.
        schedule: list[Any] = list(fresh)
        for i in range(duplicates):
            schedule.insert(
                (i * (len(schedule) + 1)) // max(1, duplicates), hot[i % len(hot)]
            )

        async def _drive(workload: list[Any]) -> tuple[float, dict[str, Any]]:
            gateway = BatchingGateway(
                workers=workers, max_batch=max_batch, max_queue=len(workload) + 1
            )
            gateway.warm()
            # Closed-loop with a bounded concurrency window: firing the
            # whole schedule at once would make every duplicate *coalesce*
            # onto its in-flight leader, so the cache would record zero
            # hits at any ratio; the window lets later duplicates arrive
            # after their leader resolved — actual cache traffic.
            window = asyncio.Semaphore(
                max(1, min(2 * max_batch, len(workload) // 4))
            )

            async def one(graph: Any) -> None:
                async with window:
                    await gateway.submit(graph, config)

            started = time.perf_counter()
            async with gateway:
                await asyncio.gather(*(one(graph) for graph in workload))
                elapsed = time.perf_counter() - started
                snapshot = gateway.metrics.snapshot()
                cache_stats = gateway.cache.stats()
            meta = {
                "qps": round(len(workload) / elapsed, 2),
                "p50_ms": snapshot["latency"].get("p50_ms", 0.0),
                "p99_ms": snapshot["latency"].get("p99_ms", 0.0),
                "hit_rate": cache_stats.as_dict()["hit_rate"],
                "coalesced": gateway.coalesced,
            }
            return elapsed, meta

        elapsed, meta = asyncio.run(_drive(schedule))
        points.append(
            SweepPoint(
                params={
                    "dup_ratio": ratio,
                    "n": n,
                    "delta": delta,
                    "requests": requests,
                },
                measurement=Measurement(
                    label=f"dup={ratio:.2f} n={n} reqs={requests}",
                    repeats=1,
                    best_s=elapsed,
                    mean_s=elapsed,
                    stdev_s=0.0,
                    meta=meta,
                ),
            )
        )
    return points
