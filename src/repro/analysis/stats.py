"""Statistics helpers for the experiment harness (pure Python, no deps)."""

from __future__ import annotations

import math
from collections.abc import Sequence

__all__ = ["mean", "stdev", "median", "loglog_slope", "fit_against"]


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean (0.0 for empty input)."""
    return sum(values) / len(values) if values else 0.0


def stdev(values: Sequence[float]) -> float:
    """Sample standard deviation (0.0 for fewer than two values)."""
    if len(values) < 2:
        return 0.0
    m = mean(values)
    return math.sqrt(sum((x - m) ** 2 for x in values) / (len(values) - 1))


def median(values: Sequence[float]) -> float:
    """Median (0.0 for empty input)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    k = len(ordered)
    mid = k // 2
    if k % 2:
        return float(ordered[mid])
    return (ordered[mid - 1] + ordered[mid]) / 2


def loglog_slope(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Least-squares slope of log(y) against log(x).

    The scaling-experiment summary statistic: a measured slope ~0 means
    constant, ~1 linear, etc.  Pairs with non-positive entries are
    skipped.
    """
    points = [(math.log(x), math.log(y)) for x, y in zip(xs, ys) if x > 0 and y > 0]
    if len(points) < 2:
        return 0.0
    mx = mean([p[0] for p in points])
    my = mean([p[1] for p in points])
    num = sum((px - mx) * (py - my) for px, py in points)
    den = sum((px - mx) ** 2 for px, py in points)
    return num / den if den else 0.0


def fit_against(
    xs: Sequence[float], ys: Sequence[float], predictor
) -> float:
    """Best multiplicative constant c minimising Σ (y - c·f(x))² for the
    model y ≈ c·f(x); used to overlay predicted shapes on measured rows."""
    num = sum(y * predictor(x) for x, y in zip(xs, ys))
    den = sum(predictor(x) ** 2 for x in xs)
    return num / den if den else 0.0
