"""repro.api — the unified solver facade.

One stable surface over the package's family of Δ-coloring pipelines:

* a string-keyed **algorithm registry** with capability metadata
  (:func:`list_algorithms`, :func:`get_algorithm`,
  :func:`register_algorithm`, :class:`AlgorithmSpec`);
* a single frozen result type every engine adapts into
  (:class:`ColoringResult`, JSON-round-trippable via ``as_dict`` /
  ``from_dict``);
* one configuration object (:class:`SolverConfig`) consolidating the
  previously scattered kwargs, including an ``on_phase`` observer hook;
* :func:`solve` for one graph and :func:`solve_many` (+
  :class:`SolverPool`) for process-parallel batches;
* :func:`solve_incremental` for graph *streams* — re-color after an
  edge delta by local repair of a parent result instead of a fresh
  solve (see :mod:`repro.core.incremental` and docs/INCREMENTAL.md).

Quick start::

    from repro.api import solve, solve_many, SolverConfig

    result = solve(graph, algorithm="randomized", seed=1)
    print(result.rounds, result.palette, result.as_dict()["phase_rounds"])

    results = solve_many(graphs, SolverConfig(algorithm="ps"), workers=4)

See docs/API.md for the registry names, config fields, and the result
schema.  The pre-facade entry points (``repro.delta_color``,
``repro.color_graph``, the per-theorem functions) remain available as
deprecated-but-stable wrappers over the same engines.
"""

from repro.api.config import PhaseObserver, SolverConfig
from repro.api.registry import (
    AlgorithmSpec,
    algorithm_specs,
    get_algorithm,
    list_algorithms,
    register_algorithm,
)
from repro.api.result import ColoringResult
from repro.api.solver import (
    IncrementalUpdate,
    SolverPool,
    apply_incremental,
    default_workers,
    solve,
    solve_incremental,
    solve_many,
)

__all__ = [
    "solve",
    "solve_many",
    "solve_incremental",
    "apply_incremental",
    "IncrementalUpdate",
    "SolverPool",
    "SolverConfig",
    "ColoringResult",
    "PhaseObserver",
    "AlgorithmSpec",
    "register_algorithm",
    "get_algorithm",
    "list_algorithms",
    "algorithm_specs",
    "default_workers",
]
