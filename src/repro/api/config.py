"""`SolverConfig` — one place for every knob the solver facade accepts.

Consolidates the kwargs that used to be scattered per entry point
(``seed=`` here, ``strict=`` there, a ``RandomizedParams`` object for the
randomized family, ``ruling_k`` for the deterministic ablations, an
``order`` list for SLOCAL, a ``validate`` toggle in the harness) into a
single dataclass that :func:`repro.api.solve` and
:func:`repro.api.solve_many` take.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core.randomized import RandomizedParams

__all__ = ["SolverConfig", "PhaseObserver"]

# on_phase(name, rounds, stats) — called once per pipeline phase, in
# execution order, after the run completes (the engines are black boxes;
# the facade replays the ledger rather than interleaving callbacks with
# the hot loops).
PhaseObserver = Callable[[str, int, dict[str, Any]], None]


@dataclass
class SolverConfig:
    """Configuration for one solver run (or a whole batch).

    Attributes
    ----------
    algorithm:
        A registry name (see :func:`repro.api.list_algorithms`); the
        default ``"auto"`` picks per instance by (n, Δ, graph class).
    seed:
        Seed for the randomized pipelines (ignored by deterministic ones,
        recorded in the result either way).
    strict:
        Enable the per-phase contract checks of the pipelines.
    validate:
        Re-validate the returned coloring at the facade level against the
        algorithm's palette bound (the engines also validate internally;
        turn this off to skip the extra O(n+m) pass in throughput runs).
    params:
        Full override of the randomized pipeline's knobs; when set, the
        randomized algorithms run with these parameters instead of the
        per-Δ presets.  ``params.seed`` then takes precedence over
        ``seed`` (and is what the result records); ``strict=True`` on
        the config is still honoured — it is folded into the params.
    ruling_k:
        Override of the deterministic pipeline's ruling distance R
        (the A3-style ablations).
    order:
        Processing order for ``algorithm="slocal"`` (default: by id).
    on_phase:
        Observer replayed once per phase after each solve; not part of
        equality/serialisation and stripped before results are shipped to
        process-pool workers (the parent replays it from the result).
    """

    algorithm: str = "auto"
    seed: int = 0
    strict: bool = False
    validate: bool = True
    params: RandomizedParams | None = None
    ruling_k: int | None = None
    order: list[int] | None = None
    on_phase: PhaseObserver | None = field(
        default=None, repr=False, compare=False
    )

    def replace(self, **changes: Any) -> "SolverConfig":
        """A copy with the given fields replaced."""
        return dataclasses.replace(self, **changes)

    def without_observer(self) -> "SolverConfig":
        """A picklable copy (observers cannot cross process boundaries)."""
        if self.on_phase is None:
            return self
        return self.replace(on_phase=None)

    def as_dict(self) -> dict[str, Any]:
        """JSON-friendly view (omits the observer callable)."""
        return {
            "algorithm": self.algorithm,
            "seed": self.seed,
            "strict": self.strict,
            "validate": self.validate,
            "params": dataclasses.asdict(self.params) if self.params else None,
            "ruling_k": self.ruling_k,
            "order": list(self.order) if self.order is not None else None,
        }

    def fingerprint_payload(self) -> dict[str, Any]:
        """The *result-affecting* fields, canonically ordered.

        This is the config half of a request fingerprint
        (:func:`repro.service.fingerprint.request_fingerprint`): two
        configs with equal payloads produce bit-identical colorings on
        the same graph.  ``validate`` and ``on_phase`` are deliberately
        excluded — they never change the colors — and so is ``strict``
        (both the config flag and the field inside ``params``): strict
        mode only adds contract assertions without touching the rng
        stream (see :func:`repro.api.registry._effective_params`), so it
        must not fragment a result cache.
        """
        params = dataclasses.asdict(self.params) if self.params else None
        if params is not None:
            params.pop("strict", None)
        return {
            "algorithm": self.algorithm,
            "seed": self.seed,
            "params": params,
            "ruling_k": self.ruling_k,
            "order": list(self.order) if self.order is not None else None,
        }
