"""The string-keyed algorithm registry behind :func:`repro.api.solve`.

Every Δ-coloring pipeline in the package is registered here under a
stable name, together with capability metadata (does it require a *nice*
graph, is it deterministic, what palette does it guarantee) and an
adapter that runs the native engine and normalises its output.  New
engines (e.g. the MIS-reduction solver of "Faster Distributed Δ-Coloring
via a Reduction to MIS") plug in with one :func:`register_algorithm`
call — no caller changes.

Registered names
----------------
``auto``              policy: pick by (n, Δ, graph class) per instance
``randomized``        paper dispatch: Theorem 1 for Δ = 3, Theorem 3 for Δ ≥ 4
``randomized-small``  Theorem 1 preset (Δ = O(1), n-aware detection radius)
``randomized-large``  Theorem 3 preset (Δ ≥ 4, constant detection radius)
``deterministic``     Theorem 4 layering pipeline
``slocal``            Remark 17 sequential-local colorer
``ps``                Panconesi–Srinivasan '95 baseline
``greedy``            centralized sequential greedy ((Δ+1)-coloring)
``components``        arbitrary graphs, per-component dispatch (incl.
                      Brooks' excluded families, which get χ colors)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.api.config import SolverConfig
from repro.errors import ReproError
from repro.graphs.graph import Graph
from repro.graphs.properties import is_nice

__all__ = [
    "AlgorithmSpec",
    "EngineRun",
    "register_algorithm",
    "get_algorithm",
    "list_algorithms",
    "algorithm_specs",
]


@dataclass
class EngineRun:
    """Normalised engine output an adapter hands back to the facade."""

    algorithm: str
    colors: list[int]
    delta: int
    palette: int
    rounds: int
    phase_rounds: dict[str, int] = field(default_factory=dict)
    phase_stats: dict[str, dict[str, Any]] = field(default_factory=dict)
    stats: dict[str, Any] = field(default_factory=dict)
    seed_used: int | None = None


@dataclass(frozen=True)
class AlgorithmSpec:
    """One registry entry: the adapter plus its capability metadata.

    ``supports_incremental`` marks algorithms whose results the
    incremental engine (:mod:`repro.core.incremental`) can maintain under
    edge updates via local repair: the palette is a single instance-wide
    bound the Theorem 5 machinery can repair against.  Per-component
    χ palettes (``components``) are not — a conflicting update on such a
    seed always falls through to a full re-solve.
    """

    name: str
    summary: str
    needs_nice: bool
    deterministic: bool
    palette_bound: str
    run: Callable[[Graph, SolverConfig], EngineRun]
    supports_incremental: bool = False


_REGISTRY: dict[str, AlgorithmSpec] = {}


def register_algorithm(spec: AlgorithmSpec) -> AlgorithmSpec:
    """Add an algorithm to the registry (names are unique)."""
    if spec.name in _REGISTRY:
        raise ReproError(f"algorithm {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return spec


def get_algorithm(name: str) -> AlgorithmSpec:
    """Look up a registered algorithm; unknown names list the options."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ReproError(
            f"unknown algorithm {name!r}; registered: {known}"
        ) from None


def list_algorithms() -> list[str]:
    """Registered names, in registration order."""
    return list(_REGISTRY)


def algorithm_specs() -> list[AlgorithmSpec]:
    """The registered specs, in registration order."""
    return list(_REGISTRY.values())


def _attribute_stats(
    stats: dict[str, Any],
    key_map: dict[str, tuple[str, ...]],
    phase_wall: dict[str, float] | None = None,
) -> dict[str, dict[str, Any]]:
    """Split a run's flat stats dict into per-phase dicts.

    ``phase_wall`` (the ledger's wall-clock breakdown, keyed by the same
    phase names) lands under the reserved ``wall_s`` key; nested ledger
    phases absent from ``key_map`` get an entry of their own, so the
    timing decomposition is complete even where no stats were attributed.
    ``wall_s`` is reserved: it is stripped from content digests, so two
    runs of equal coloring content stay digest-equal across machines.
    """
    attributed = {
        phase: {k: stats[k] for k in keys if k in stats}
        for phase, keys in key_map.items()
    }
    for phase, wall in (phase_wall or {}).items():
        attributed.setdefault(phase, {})["wall_s"] = round(wall, 6)
    return attributed


def _effective_params(config: SolverConfig):
    """The randomized-family params with ``config.strict`` folded in.

    ``params`` owns the pipeline knobs (including its own seed), but an
    explicit ``strict=True`` on the config is a request for contract
    checks and must not be silently dropped; strict mode only adds
    assertions, never touches the rng stream, so folding it in keeps
    colors bit-identical.
    """
    import dataclasses

    params = config.params
    if params is not None and config.strict and not params.strict:
        params = dataclasses.replace(params, strict=True)
    return params


# Which stats keys each pipeline phase produced (module-level so new
# stats keys fail loudly in tests rather than silently vanishing from
# the observer's view).
RANDOMIZED_PHASE_KEYS: dict[str, tuple[str, ...]] = {
    "0:linial": ("linial_palette", "linial_iterations"),
    "1:dcc-detect": ("num_dccs", "nodes_in_dccs"),
    "2:dcc-ruling-set": ("b0_components", "b0_size", "virtual_ruling_iterations"),
    "3:b-layers": ("h_size",),
    "4:marking": ("selection_p", "t_nodes", "marked", "initially_selected", "backed_off"),
    "5:happiness-layers": (
        "happiness_radius", "c_layers", "leftover_nodes", "uncolored_marks",
    ),
    "6:small-components": (
        "leftover_components", "leftover_max_component", "fallbacks",
    ),
}

DETERMINISTIC_PHASE_KEYS: dict[str, tuple[str, ...]] = {
    "0:linial": ("linial_palette",),
    "1:ruling-forest": ("ruling_distance", "b0_size"),
    "2:layers": ("num_layers",),
    "3:color-layers": ("layer_iterations",),
    "4:color-b0-brooks": ("fix_modes", "fix_slots", "max_fix_radius"),
}

PS_PHASE_KEYS: dict[str, tuple[str, ...]] = {
    "1:ruling-forest": ("ruling_distance", "b0_size"),
    "2:layers": ("num_layers",),
    "3:color-layers": ("layer_iterations", "max_layer_iterations"),
    "4:color-b0-brooks": ("fix_modes",),
}


def _run_randomized(graph: Graph, config: SolverConfig) -> EngineRun:
    """The paper's dispatch: Theorem 1 for Δ = 3, Theorem 3 for Δ ≥ 4
    (exactly :func:`repro.delta_color`); ``config.params`` overrides the
    presets and runs the nine-phase pipeline with those knobs."""
    from repro.core.randomized import (
        delta_coloring_large_delta,
        delta_coloring_randomized,
        delta_coloring_small_delta,
    )
    from repro.graphs.properties import assert_nice

    # Checked before the Δ dispatch so degenerate graphs (paths, cycles)
    # raise NotNiceGraphError, not the small-Δ contract error.
    assert_nice(graph)
    seed_used = config.seed
    params = _effective_params(config)
    if params is not None:
        result = delta_coloring_randomized(graph, params)
        name = "randomized"
        seed_used = params.seed
    elif graph.max_degree() >= 4:
        result = delta_coloring_large_delta(
            graph, seed=config.seed, strict=config.strict
        )
        name = "randomized-large"
    else:
        result = delta_coloring_small_delta(
            graph, seed=config.seed, strict=config.strict
        )
        name = "randomized-small"
    return EngineRun(
        algorithm=name,
        colors=result.colors,
        delta=result.delta,
        palette=result.delta,
        rounds=result.rounds,
        phase_rounds=result.phase_rounds,
        phase_stats=_attribute_stats(
            result.stats, RANDOMIZED_PHASE_KEYS, result.phase_wall
        ),
        stats=result.stats,
        seed_used=seed_used,
    )


def _run_randomized_small(graph: Graph, config: SolverConfig) -> EngineRun:
    from repro.core.randomized import delta_coloring_small_delta

    result = delta_coloring_small_delta(
        graph, seed=config.seed, strict=config.strict,
        params=_effective_params(config),
    )
    return EngineRun(
        algorithm="randomized-small",
        colors=result.colors,
        delta=result.delta,
        palette=result.delta,
        rounds=result.rounds,
        phase_rounds=result.phase_rounds,
        phase_stats=_attribute_stats(
            result.stats, RANDOMIZED_PHASE_KEYS, result.phase_wall
        ),
        stats=result.stats,
        seed_used=config.params.seed if config.params else config.seed,
    )


def _run_randomized_large(graph: Graph, config: SolverConfig) -> EngineRun:
    from repro.core.randomized import delta_coloring_large_delta

    result = delta_coloring_large_delta(
        graph, seed=config.seed, strict=config.strict,
        params=_effective_params(config),
    )
    return EngineRun(
        algorithm="randomized-large",
        colors=result.colors,
        delta=result.delta,
        palette=result.delta,
        rounds=result.rounds,
        phase_rounds=result.phase_rounds,
        phase_stats=_attribute_stats(
            result.stats, RANDOMIZED_PHASE_KEYS, result.phase_wall
        ),
        stats=result.stats,
        seed_used=config.params.seed if config.params else config.seed,
    )


def _run_deterministic(graph: Graph, config: SolverConfig) -> EngineRun:
    from repro.core.deterministic import delta_coloring_deterministic

    result = delta_coloring_deterministic(
        graph, strict=config.strict, ruling_k=config.ruling_k
    )
    return EngineRun(
        algorithm="deterministic",
        colors=result.colors,
        delta=result.delta,
        palette=result.delta,
        rounds=result.rounds,
        phase_rounds=result.phase_rounds,
        phase_stats=_attribute_stats(
            result.stats, DETERMINISTIC_PHASE_KEYS, result.phase_wall
        ),
        stats=result.stats,
    )


def _run_slocal(graph: Graph, config: SolverConfig) -> EngineRun:
    from repro.core.slocal_coloring import slocal_delta_coloring

    colors, run = slocal_delta_coloring(graph, order=config.order)
    histogram: dict[str, int] = {}
    for radius in run.per_node_radius.values():
        histogram[str(radius)] = histogram.get(str(radius), 0) + 1
    stats: dict[str, Any] = {
        "model": "SLOCAL",
        "read_radius": run.read_radius,
        "write_radius": run.write_radius,
        "max_locality": run.write_radius,
        "locality_histogram": histogram,
    }
    return EngineRun(
        algorithm="slocal",
        colors=colors,
        delta=graph.max_degree(),
        palette=graph.max_degree(),
        rounds=run.write_radius,  # SLOCAL's measure is locality, not rounds
        phase_rounds={"slocal": run.write_radius},
        phase_stats={"slocal": dict(stats)},
        stats=stats,
    )


def _run_ps(graph: Graph, config: SolverConfig) -> EngineRun:
    from repro.baselines.panconesi_srinivasan import ps_delta_coloring

    result = ps_delta_coloring(graph, seed=config.seed, strict=config.strict)
    return EngineRun(
        algorithm="ps",
        colors=result.colors,
        delta=result.delta,
        palette=result.delta,
        rounds=result.rounds,
        phase_rounds=result.phase_rounds,
        phase_stats=_attribute_stats(
            result.stats, PS_PHASE_KEYS, result.phase_wall
        ),
        stats=result.stats,
    )


def _run_greedy(graph: Graph, config: SolverConfig) -> EngineRun:
    from repro.baselines.greedy import centralized_greedy

    colors = centralized_greedy(graph, order=config.order)
    delta = graph.max_degree() if graph.n else 0
    palette = max(colors, default=0)
    return EngineRun(
        algorithm="greedy",
        colors=colors,
        delta=delta,
        palette=palette,
        # A sequential pass over n nodes: the honest LOCAL dependency chain.
        rounds=graph.n,
        phase_rounds={"greedy": graph.n},
        phase_stats={"greedy": {"model": "centralized"}},
        stats={"model": "centralized", "colors_used": len(set(colors))},
    )


def _run_components(graph: Graph, config: SolverConfig) -> EngineRun:
    from repro.core.special_cases import color_graph

    result = color_graph(graph, seed=config.seed, strict=config.strict)
    delta = graph.max_degree() if graph.n else 0
    stats: dict[str, Any] = {
        "component_families": dict(result.component_families),
        "num_components": sum(result.component_families.values()),
    }
    return EngineRun(
        algorithm="components",
        colors=result.colors,
        delta=delta,
        palette=result.num_colors,
        rounds=result.rounds,
        phase_rounds={"components": result.rounds},
        phase_stats={"components": dict(stats)},
        stats=stats,
    )


def _run_auto(graph: Graph, config: SolverConfig) -> EngineRun:
    """The ``auto`` policy, picking by (n, Δ, graph class).

    A connected *nice* graph gets the paper's dispatch — Theorem 1 for
    Δ = 3 (whose preset radius grows with log log n), Theorem 3 for
    Δ ≥ 4; everything else (disconnected graphs, Brooks' excluded
    families) goes through the per-component dispatcher, which colors
    each component with its own optimum.
    """
    if graph.n > 0 and is_nice(graph):  # is_nice implies connected
        return _run_randomized(graph, config)
    return _run_components(graph, config)


register_algorithm(AlgorithmSpec(
    name="auto",
    supports_incremental=True,
    summary="pick per instance: paper dispatch on nice graphs, "
            "per-component handling otherwise",
    needs_nice=False,
    deterministic=False,
    palette_bound="Δ (nice) / χ per excluded component",
    run=_run_auto,
))
register_algorithm(AlgorithmSpec(
    name="randomized",
    supports_incremental=True,
    summary="paper dispatch: Thm 1 (Δ=3) or Thm 3 (Δ≥4) randomized Δ-coloring",
    needs_nice=True,
    deterministic=False,
    palette_bound="Δ",
    run=_run_randomized,
))
register_algorithm(AlgorithmSpec(
    name="randomized-small",
    supports_incremental=True,
    summary="Theorem 1: randomized Δ-coloring tuned for Δ = O(1)",
    needs_nice=True,
    deterministic=False,
    palette_bound="Δ",
    run=_run_randomized_small,
))
register_algorithm(AlgorithmSpec(
    name="randomized-large",
    supports_incremental=True,
    summary="Theorem 3: randomized Δ-coloring for Δ ≥ 4",
    needs_nice=True,
    deterministic=False,
    palette_bound="Δ",
    run=_run_randomized_large,
))
register_algorithm(AlgorithmSpec(
    name="deterministic",
    supports_incremental=True,
    summary="Theorem 4: deterministic layering Δ-coloring",
    needs_nice=True,
    deterministic=True,
    palette_bound="Δ",
    run=_run_deterministic,
))
register_algorithm(AlgorithmSpec(
    name="slocal",
    supports_incremental=True,
    summary="Remark 17: SLOCAL(O(log_Δ n)) sequential-local Δ-coloring",
    needs_nice=True,
    deterministic=True,
    palette_bound="Δ",
    run=_run_slocal,
))
register_algorithm(AlgorithmSpec(
    name="ps",
    supports_incremental=True,
    summary="Panconesi–Srinivasan '95 baseline: O(log³n/logΔ) Δ-coloring",
    needs_nice=True,
    deterministic=False,
    palette_bound="Δ",
    run=_run_ps,
))
register_algorithm(AlgorithmSpec(
    name="greedy",
    supports_incremental=True,
    summary="centralized sequential greedy (the (Δ+1)-coloring reference)",
    needs_nice=False,
    deterministic=True,
    palette_bound="Δ+1",
    run=_run_greedy,
))
register_algorithm(AlgorithmSpec(
    name="components",
    summary="arbitrary graphs: per-component dispatch incl. Brooks' "
            "excluded families",
    needs_nice=False,
    deterministic=False,
    palette_bound="max over components (Δ or χ)",
    run=_run_components,
))
