"""The one result type every solver entry point returns.

Historically each pipeline had its own result shape
(``DeltaColoringResult``, ``DeterministicResult``, ``PSResult``,
``ComponentColoring``, ``SpecialColoring``, plus the bare
``(colors, SLocalRun)`` tuple of the SLOCAL colorer), and every caller —
CLI, harness, benchmarks, examples — poked at whichever attributes its
algorithm happened to expose.  :class:`ColoringResult` is the single,
frozen, JSON-round-trippable record they all adapt into; the legacy
types remain as the engines' native outputs and as deprecated-but-stable
wrappers.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Mapping

__all__ = ["ColoringResult"]

#: Timing keys reserved inside ``phase_stats``/``stats`` values.  They are
#: measurement noise, not solve content, so :meth:`ColoringResult.
#: content_digest` strips them — a pooled worker's solve and an in-process
#: solve of the same request must stay digest-equal.
_TIMING_KEYS = frozenset({"wall_s", "wall_time_s", "rung_wall_s"})


def _strip_timing(value: Any) -> Any:
    """Recursively drop reserved timing keys from a jsonable structure."""
    if isinstance(value, dict):
        return {
            k: _strip_timing(v)
            for k, v in value.items()
            if k not in _TIMING_KEYS
        }
    if isinstance(value, list):
        return [_strip_timing(v) for v in value]
    return value


def _jsonable(value: Any) -> Any:
    """Coerce a stats value into a JSON-serialisable structure."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (set, frozenset)):
        return sorted(_jsonable(v) for v in value)
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    return str(value)


@dataclass(frozen=True)
class ColoringResult:
    """Outcome of one :func:`repro.api.solve` run.

    Attributes
    ----------
    algorithm:
        The *resolved* registry name that actually ran (``"auto"`` never
        appears here — the policy records what it picked).
    n, delta:
        Instance size and maximum degree.
    palette:
        The guaranteed palette size: colors are drawn from
        ``{1..palette}`` (Δ for the paper's algorithms, χ per component
        for the special families, ≤ Δ+1 for greedy).
    colors:
        The color vector, immutable, indexed by node id.
    rounds:
        Total LOCAL rounds charged (for ``slocal`` this is the certified
        SLOCAL locality radius instead — see ``stats["model"]``).
    phase_rounds:
        The per-phase round decomposition, in execution order.
    phase_stats:
        Per-phase structural statistics (subset of ``stats`` attributed
        to the phase that produced it); what :func:`repro.api.solve`
        replays through the ``on_phase`` observer.
    stats:
        All structural statistics of the run, unattributed.
    seed:
        The seed the run was configured with (recorded even for
        deterministic algorithms, which ignore it).
    wall_time_s:
        Wall-clock seconds spent inside the engine (excludes facade
        validation).
    """

    algorithm: str
    n: int
    delta: int
    palette: int
    colors: tuple[int, ...]
    rounds: int
    phase_rounds: dict[str, int] = field(default_factory=dict)
    phase_stats: dict[str, dict[str, Any]] = field(default_factory=dict)
    stats: dict[str, Any] = field(default_factory=dict)
    seed: int | None = None
    wall_time_s: float = 0.0

    @property
    def num_colors_used(self) -> int:
        """Distinct colors actually present (≤ ``palette``)."""
        return len(set(self.colors))

    def content_digest(self) -> str:
        """SHA-256 over the canonical JSON of :meth:`as_dict` minus
        every timing field (top-level ``wall_time_s`` plus the reserved
        ``wall_s``/``wall_time_s``/``rung_wall_s`` keys nested inside
        ``phase_stats``/``stats``).

        Two results are *the same solve outcome* iff their digests match;
        wall time is excluded because it is measurement noise, not
        content.  The result cache uses this to assert that a cached
        result is bit-identical to a fresh solve of the same request.
        """
        payload = _strip_timing(self.as_dict())
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def as_dict(self) -> dict[str, Any]:
        """A JSON-serialisable dict; inverse of :meth:`from_dict`."""
        return {
            "algorithm": self.algorithm,
            "n": self.n,
            "delta": self.delta,
            "palette": self.palette,
            "colors": list(self.colors),
            "rounds": self.rounds,
            "phase_rounds": dict(self.phase_rounds),
            "phase_stats": _jsonable(self.phase_stats),
            "stats": _jsonable(self.stats),
            "seed": self.seed,
            "wall_time_s": self.wall_time_s,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ColoringResult":
        """Rebuild a result from :meth:`as_dict` output (or parsed JSON)."""
        return cls(
            algorithm=data["algorithm"],
            n=data["n"],
            delta=data["delta"],
            palette=data["palette"],
            colors=tuple(data["colors"]),
            rounds=data["rounds"],
            phase_rounds=dict(data.get("phase_rounds", {})),
            phase_stats={k: dict(v) for k, v in data.get("phase_stats", {}).items()},
            stats=dict(data.get("stats", {})),
            seed=data.get("seed"),
            wall_time_s=data.get("wall_time_s", 0.0),
        )
