"""`solve` / `solve_many` — the facade every caller routes through.

:func:`solve` runs one graph through a registered algorithm and returns
a :class:`repro.api.result.ColoringResult`; :func:`solve_many` fans a
batch of graphs out over a process pool for throughput workloads.
:class:`SolverPool` keeps one warmed pool alive across many
``solve_many`` calls (the harness reuses it across sweep points instead
of re-spawning workers per point).

Determinism: a solve is a pure function of ``(graph, config)`` — workers
only change scheduling, never results, so ``solve_many(workers=4)`` is
bit-identical to ``workers=1``.
"""

from __future__ import annotations

import os
import time
from collections.abc import Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any

from repro.api.config import SolverConfig
from repro.api.registry import get_algorithm
from repro.api.result import ColoringResult
from repro.graphs.graph import Graph
from repro.graphs.validation import validate_coloring

__all__ = [
    "solve",
    "solve_many",
    "solve_incremental",
    "apply_incremental",
    "IncrementalUpdate",
    "SolverPool",
    "default_workers",
]


def _make_config(config: SolverConfig | None, overrides: dict[str, Any]) -> SolverConfig:
    if config is None:
        config = SolverConfig()
    if overrides:
        config = config.replace(**overrides)
    return config


def solve(
    graph: Graph, config: SolverConfig | None = None, **overrides: Any
) -> ColoringResult:
    """Color ``graph`` with the configured algorithm.

    ``overrides`` are :class:`SolverConfig` fields applied on top of
    ``config`` (so ``solve(g, algorithm="ps", seed=3)`` needs no explicit
    config object).  Raises the engine's own errors unchanged
    (:class:`repro.errors.NotNiceGraphError` for algorithms that need a
    nice graph, etc.).
    """
    config = _make_config(config, overrides)
    spec = get_algorithm(config.algorithm)
    started = time.perf_counter()
    run = spec.run(graph, config)
    wall_time = time.perf_counter() - started
    if config.validate:
        validate_coloring(graph, run.colors, max_colors=run.palette or None)
    phase_stats = {k: dict(v) for k, v in run.phase_stats.items()}
    if len(run.phase_rounds) == 1:
        # Single-phase engines (slocal, greedy, components) have no
        # ledger breakdown; the whole engine run is that phase's wall.
        (only_phase,) = run.phase_rounds
        phase_stats.setdefault(only_phase, {}).setdefault(
            "wall_s", round(wall_time, 6)
        )
    result = ColoringResult(
        algorithm=run.algorithm,
        n=graph.n,
        delta=run.delta,
        palette=run.palette,
        colors=tuple(run.colors),
        rounds=run.rounds,
        phase_rounds=dict(run.phase_rounds),
        phase_stats=phase_stats,
        stats=dict(run.stats),
        seed=run.seed_used if run.seed_used is not None else config.seed,
        wall_time_s=wall_time,
    )
    _notify(config, result)
    return result


def _notify(config: SolverConfig, result: ColoringResult) -> None:
    """Replay the run's phases through the observer, in execution order."""
    if config.on_phase is None:
        return
    for name, rounds in result.phase_rounds.items():
        config.on_phase(name, rounds, result.phase_stats.get(name, {}))


@dataclass(frozen=True)
class IncrementalUpdate:
    """What :func:`solve_incremental` returns.

    ``result`` is a normal :class:`ColoringResult` for the *child* graph
    (``stats["incremental"]`` carries the update's repair statistics;
    ``rounds`` is the charged LOCAL repair cost, not a full pipeline's),
    ``graph`` is the child graph itself (reusable as the next parent),
    and ``update`` is the raw per-op outcome dict.

    ``graph`` is None only for :func:`apply_incremental` calls with
    ``materialize_graph=False`` — sustained streams keep the graph inside
    the engine and skip the O(n + m) snapshot per op.
    """

    result: ColoringResult
    graph: Graph | None
    update: dict[str, Any]


def solve_incremental(
    graph: Graph,
    parent: ColoringResult,
    edges_added: Iterable[tuple[int, int]] = (),
    edges_removed: Iterable[tuple[int, int]] = (),
    config: SolverConfig | None = None,
    **overrides: Any,
) -> IncrementalUpdate:
    """Re-color ``graph`` after an edge delta, seeded by ``parent``.

    The streaming counterpart of :func:`solve`: instead of solving the
    child instance from scratch, the parent coloring is kept and only the
    conflicts the delta created are repaired through the incremental
    ladder (greedy free color → Theorem 5 token walk → full re-solve;
    see :mod:`repro.core.incremental`).  ``parent`` must be a result for
    ``graph`` itself (the *pre-update* instance); the child graph is
    built internally via :meth:`repro.graphs.Graph.apply_updates` and
    returned alongside the result so callers can chain updates.

    ``config`` (plus ``overrides``) governs validation and the full
    re-solve fallback — by default ``algorithm="auto"`` with the parent's
    seed.  Raises the engine's typed errors
    (:class:`repro.errors.EdgeAlreadyPresentError`,
    :class:`repro.errors.EdgeNotPresentError`) on rejected deltas.
    """
    from repro.core.incremental import IncrementalColoring

    config = _make_config(config, overrides)
    engine = IncrementalColoring.from_result(
        graph, parent, config=config.without_observer()
    )
    return apply_incremental(engine, edges_added, edges_removed, config)


def apply_incremental(
    engine: "Any",
    edges_added: Iterable[tuple[int, int]] = (),
    edges_removed: Iterable[tuple[int, int]] = (),
    config: SolverConfig | None = None,
    *,
    materialize_graph: bool = True,
    **overrides: Any,
) -> IncrementalUpdate:
    """One delta against a **long-lived** :class:`repro.core.incremental.
    IncrementalColoring` engine, packaged exactly like
    :func:`solve_incremental`.

    Where ``solve_incremental`` builds a fresh engine per call (the
    one-shot price), this is the sustained-stream entry point: the caller
    keeps the engine across ops — the service's chain-head
    ``GraphStore`` does — and each call advances it in place.  The
    returned result is bit-identical to what ``solve_incremental`` would
    produce for the same lineage (same colors, seed, and stats layout),
    which is what pins the service's chained-update digests to the old
    re-materializing path.

    ``config.validate`` checks the op through the engine's own dirty-
    region validation (O(vol(region)) for repairs, full pass after a
    re-solve — the same contract ``solve_incremental`` applied
    externally, minus the graph snapshot).  ``materialize_graph=False``
    additionally skips the O(n + m) ``engine.graph`` snapshot and
    returns ``graph=None``; callers on the streaming path read sizes
    from the engine instead.
    """
    config = _make_config(config, overrides)
    engine.set_resolve_config(config.without_observer())
    started = time.perf_counter()
    validate_here = bool(config.validate) and not engine.validate
    if validate_here:
        engine.validate = True
    try:
        outcome = engine.batch_update(edges_added, edges_removed)
    finally:
        if validate_here:
            engine.validate = False
    update = outcome.as_dict()
    result = ColoringResult(
        algorithm=engine.algorithm,
        n=engine.n,
        delta=engine.delta,
        palette=engine.palette,
        colors=tuple(engine.colors),
        rounds=outcome.rounds,
        phase_rounds={"incremental-repair": outcome.rounds},
        phase_stats={
            "incremental-repair": {
                **update, "wall_s": update.get("wall_time_s", 0.0),
            }
        },
        stats={"incremental": dict(update)},
        seed=engine.result_seed,
        wall_time_s=time.perf_counter() - started,
    )
    _notify(config, result)
    graph = engine.graph if materialize_graph else None
    return IncrementalUpdate(result=result, graph=graph, update=update)


def _solve_task(task: tuple[Graph, SolverConfig]) -> ColoringResult:
    """Top-level worker entry point (must be picklable by name)."""
    graph, config = task
    return solve(graph, config)


def default_workers() -> int:
    """Usable CPU count (affinity-aware; ≥ 1)."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # pragma: no cover - non-Linux
        return max(1, os.cpu_count() or 1)


def solve_many(
    graphs: Iterable[Graph],
    config: SolverConfig | None = None,
    workers: int = 1,
    pool: "SolverPool | None" = None,
    **overrides: Any,
) -> list[ColoringResult]:
    """Solve a batch of graphs, optionally fanning out over processes.

    Results come back in input order and are bit-identical for any
    ``workers`` value.  ``workers=1`` (the default) stays in-process;
    ``workers=N`` spawns a transient pool; passing an existing
    :class:`SolverPool` reuses its warmed workers and overrides
    ``workers``.  Observers fire in the parent, per graph, in input
    order — they never cross the process boundary.
    """
    config = _make_config(config, overrides)
    graphs = list(graphs)
    if pool is not None:
        results = pool._map(graphs, config.without_observer())
    elif workers > 1 and len(graphs) > 1:
        with SolverPool(workers) as transient:
            results = transient._map(graphs, config.without_observer())
    else:
        return [solve(graph, config) for graph in graphs]
    for result in results:
        _notify(config, result)
    return results


class SolverPool:
    """A reusable process pool for :func:`solve_many` batches.

    Spawning workers (and re-importing the package in each) costs real
    time; sweeps that call ``solve_many`` once per size point should
    create one pool up front and pass it to every call::

        with SolverPool(workers=4) as pool:
            for batch in batches:
                results = solve_many(batch, config, pool=pool)

    The pool lazily spawns on first use; :meth:`warm` forces the spawn
    (and a no-op round-trip per worker) ahead of any timed region.
    """

    def __init__(self, workers: int | None = None):
        self.workers = workers if workers and workers > 0 else default_workers()
        self._executor: ProcessPoolExecutor | None = None

    def _ensure(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self.workers)
        return self._executor

    def warm(self) -> "SolverPool":
        """Spawn the workers now (outside any timed region)."""
        executor = self._ensure()
        for _ in executor.map(_noop, range(self.workers)):
            pass
        return self

    def _map(
        self, graphs: Sequence[Graph], config: SolverConfig
    ) -> list[ColoringResult]:
        executor = self._ensure()
        tasks = [(graph, config) for graph in graphs]
        return list(executor.map(_solve_task, tasks))

    def solve_many(
        self,
        graphs: Iterable[Graph],
        config: SolverConfig | None = None,
        **overrides: Any,
    ) -> list[ColoringResult]:
        """Convenience: :func:`solve_many` bound to this pool."""
        return solve_many(graphs, config, pool=self, **overrides)

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None

    def __enter__(self) -> "SolverPool":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def _noop(_: Any) -> None:
    return None
