"""Baselines: the algorithms the paper improves on or is checked against."""

from repro.baselines.greedy import centralized_brooks, centralized_greedy
from repro.baselines.panconesi_srinivasan import PSResult, ps_delta_coloring

__all__ = ["centralized_brooks", "centralized_greedy", "PSResult", "ps_delta_coloring"]
