"""Centralized reference colorers: the correctness oracles.

* :func:`centralized_greedy` — the trivial sequential (Δ+1)-coloring the
  paper's introduction contrasts Δ-coloring against.
* :func:`centralized_brooks` — a polynomial-time centralized Δ-coloring of
  nice graphs (Brooks' theorem via Lovász's constructive proof, reusing
  the degree-list machinery: a nice graph either has a deficient node —
  surplus — or is regular and non-Gallai).

These are used by the test suite as oracles and by the benchmarks as the
"sequential reference" row.
"""

from __future__ import annotations

from repro.errors import NotNiceGraphError
from repro.core.degree_choosable import degree_list_color
from repro.graphs.graph import Graph
from repro.graphs.properties import assert_nice

__all__ = ["centralized_greedy", "centralized_brooks"]


def centralized_greedy(graph: Graph, order: list[int] | None = None) -> list[int]:
    """Sequential greedy (Δ+1)-coloring in the given (default: id) order."""
    sequence = order if order is not None else list(range(graph.n))
    colors = [0] * graph.n
    for v in sequence:
        used = {colors[u] for u in graph.adj[v] if colors[u] != 0}
        c = 1
        while c in used:
            c += 1
        colors[v] = c
    return colors


def centralized_brooks(graph: Graph) -> list[int]:
    """Centralized Δ-coloring of a nice graph (Brooks / Lovász 1975).

    Runs the constructive degree-list colorer with every list equal to
    {1..Δ}: a nice graph always has either a node of degree < Δ (a surplus
    node) or is Δ-regular and contains a degree-choosable block, so the
    constructive cases always apply.  Raises :class:`NotNiceGraphError`
    for cliques, cycles, and paths.
    """
    assert_nice(graph)
    delta = graph.max_degree()
    if delta < 3:
        raise NotNiceGraphError("centralized Brooks needs Δ >= 3")
    lists = [set(range(1, delta + 1)) for _ in range(graph.n)]
    return degree_list_color(graph, lists)
