"""The Panconesi–Srinivasan baseline: O(log³ n / log Δ) Δ-coloring [PS92/95].

This is the 25-year state of the art the paper improves on, rebuilt inside
the same layering framework from the components available in 1993 (see
DESIGN.md §3; the original exposition uses network decompositions and
token machinery, but its cost structure is exactly reproduced here):

* base layer: a deterministic (R, (R-1)·log n) AGLP ruling forest with
  R = Θ(log_{Δ-1} n)   →  z = O(log² n / log Δ) layers;
* every layer colored by *iterated random trials* (the pre-[Gha16]
  list-coloring engine), O(log n) rounds per layer w.h.p.;
* B0 repaired via the distributed Brooks' theorem — [PS95]'s own Theorem 5.

Total: O(log² n / log Δ) · O(log n) = O(log³ n / log Δ) rounds — the
baseline row of experiment E4, against which the new algorithms'
O((log log n)²) / O(log Δ) + … rounds are compared.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import AlgorithmContractError
from repro.core.brooks import fix_uncolored_node
from repro.core.deterministic import ruling_distance
from repro.core.layering import color_layers_in_reverse
from repro.graphs.bfs import distance_layers
from repro.graphs.graph import Graph
from repro.graphs.properties import assert_nice
from repro.graphs.validation import UNCOLORED, validate_coloring
from repro.local.rounds import RoundLedger
from repro.primitives.ruling_sets import ruling_forest_aglp

__all__ = ["PSResult", "ps_delta_coloring"]


@dataclass
class PSResult:
    """Output of the baseline (mirrors DeltaColoringResult)."""

    colors: list[int]
    delta: int
    rounds: int
    phase_rounds: dict[str, int] = field(default_factory=dict)
    stats: dict[str, object] = field(default_factory=dict)
    phase_wall: dict[str, float] = field(default_factory=dict)


def ps_delta_coloring(
    graph: Graph, seed: int = 0, strict: bool = False
) -> PSResult:
    """Δ-color a nice graph with the PS-shaped baseline (module docstring)."""
    assert_nice(graph)
    delta = graph.max_degree()
    if delta < 3:
        raise AlgorithmContractError(f"baseline needs Δ >= 3, got {delta}")
    n = graph.n
    rng = random.Random(seed)
    ledger = RoundLedger()
    colors = [UNCOLORED] * n
    stats: dict[str, object] = {}

    big_r = ruling_distance(n, delta)
    stats["ruling_distance"] = big_r
    with ledger.phase("1:ruling-forest"):
        ruling = ruling_forest_aglp(graph, big_r, ledger)
    base_layer = ruling.nodes
    stats["b0_size"] = len(base_layer)

    with ledger.phase("2:layers"):
        layers = distance_layers(graph, base_layer)
        ledger.charge(len(layers))
    stats["num_layers"] = len(layers) - 1

    with ledger.phase("3:color-layers"):
        report = color_layers_in_reverse(
            graph, colors, layers, delta, "random", ledger, rng, strict=strict
        )
    stats["layer_iterations"] = report.total_iterations
    stats["max_layer_iterations"] = report.max_iterations_per_layer

    with ledger.phase("4:color-b0-brooks"):
        budget_radius = max(2, (big_r - 1) // 2)
        costs = []
        modes: dict[str, int] = {}
        for v in sorted(base_layer):
            if colors[v] != UNCOLORED:
                continue
            local = RoundLedger()
            result = fix_uncolored_node(
                graph, colors, v, delta, max_radius=budget_radius, ledger=local
            )
            modes[result.mode] = modes.get(result.mode, 0) + 1
            costs.append(local.total_rounds)
        ledger.charge_max(costs)
        stats["fix_modes"] = modes

    validate_coloring(graph, colors, max_colors=delta)
    return PSResult(
        colors=colors,
        delta=delta,
        rounds=ledger.total_rounds,
        phase_rounds=ledger.snapshot(),
        stats=stats,
        phase_wall=ledger.wall_snapshot(),
    )
