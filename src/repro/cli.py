"""Command-line interface: ``python -m repro``.

Gives downstream users a zero-code path to the library:

* ``color`` — Δ-color a graph given as an edge list file (one ``u v``
  pair per line, whitespace-separated, ``#`` comments allowed, 0-based
  or arbitrary integer ids); writes ``node color`` lines to stdout or a
  file, or the full :class:`repro.api.ColoringResult` schema with
  ``--json``.  ``--algorithm`` accepts any registry name
  (``repro.api.list_algorithms()``); the default ``auto`` picks per
  instance and handles arbitrary graphs (nice components get Δ colors,
  Brooks' exceptions get their optimum).
* ``serve`` — run the newline-delimited-JSON coloring service
  (:mod:`repro.service`): an asyncio TCP gateway that fingerprints,
  caches, micro-batches and load-sheds solve requests over a warmed
  :class:`repro.api.SolverPool`.  ``--shards N`` scales out to N
  supervised worker processes behind a consistent-hash router speaking
  the same protocol.  See docs/SERVICE.md for the protocol and the
  sharding topology.
* ``trace`` — render span JSONL exported by ``serve --trace-dir`` (see
  :mod:`repro.obs`) as a slowest-traces table plus per-trace waterfalls;
  the cross-process view of where one request's time went, router to
  solver phase.
* ``lint`` — run **reprolint**, the repository's AST-based invariant
  linter (:mod:`repro.devtools`): seven repo-contract rules (seeded-only
  randomness, non-blocking async tiers, guarded numpy imports, clock-free
  fingerprints, typed storage excepts, validated wire access, complete
  vectorized/python fallback pairs) with suppressions, pyproject config
  and a committed baseline.  See docs/DEVTOOLS.md.
* ``demo`` — run one of the bundled example scenarios.
* ``info`` — parse a graph and print its structural profile (Δ, girth
  probe, niceness, Gallai-tree status, component count).
* ``bench`` — wall-clock measurement via :mod:`repro.analysis.harness`:
  ``--smoke`` runs every ``benchmarks/bench_e*.py`` at its tiniest size
  (the CI rot check behind ``make bench-smoke``), ``--sweep`` times
  end-to-end Δ-coloring across instance sizes with warmup/repetition and
  optional JSON output; ``--workers N --batch B`` adds a throughput
  sweep that fans B instances per size over a shared N-worker pool via
  :func:`repro.api.solve_many`.

Examples::

    python -m repro color edges.txt
    python -m repro color edges.txt --algorithm deterministic -o colors.txt
    python -m repro color edges.txt --json
    python -m repro info edges.txt
    python -m repro bench --smoke
    python -m repro bench --sweep --sizes 2000,20000,250000 --json out.json
    python -m repro bench --sweep --workers 4 --batch 8
    python -m repro serve --port 8512 --workers 2 --max-queue 128
    python -m repro serve --port 8512 --shards 2
    python -m repro serve --port 8512 --shards 2 --trace-dir traces/
    python -m repro trace traces/ --top 3
    python -m repro lint src scripts benchmarks
    python -m repro lint --list-rules
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.api import SolverConfig, list_algorithms, solve
from repro.errors import GraphConstructionError, ReproError
from repro.graphs.graph import Graph
from repro.graphs.properties import girth_up_to, is_gallai_tree, is_nice

__all__ = ["main", "load_edge_list"]


def load_edge_list(path: str) -> tuple[Graph, list[int]]:
    """Parse an edge-list file into a Graph.

    Node ids may be arbitrary integers; they are compacted to 0..n-1.
    Returns ``(graph, original_ids)`` where ``original_ids[i]`` is the id
    written back in the output for internal node i.

    ``#`` starts a comment (full-line or trailing); blank lines are
    skipped.  Malformed lines, self-loops, and duplicate edges raise
    :class:`repro.errors.GraphConstructionError` naming the offending
    ``path:line`` — bad inputs fail at parse time with a clear message
    instead of surfacing as confusing downstream failures.

    The file is streamed line by line (never materialised as one
    string), so peak memory on large uploads — the service ingest path —
    is the parsed edge list, not the edge list plus its text.
    """
    pairs: list[tuple[int, int]] = []
    ids: set[int] = set()
    first_seen: dict[tuple[int, int], int] = {}
    with Path(path).open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, 1):
            stripped = line.split("#", 1)[0].strip()
            if not stripped:
                continue
            parts = stripped.split()
            if len(parts) != 2:
                raise GraphConstructionError(
                    f"{path}:{line_number}: expected 'u v', got {line.rstrip()!r}"
                )
            try:
                u, v = int(parts[0]), int(parts[1])
            except ValueError:
                raise GraphConstructionError(
                    f"{path}:{line_number}: node ids must be integers, "
                    f"got {line.rstrip()!r}"
                ) from None
            if u == v:
                raise GraphConstructionError(
                    f"{path}:{line_number}: self-loop at node {u} "
                    "(coloring graphs must be simple)"
                )
            key = (min(u, v), max(u, v))
            if key in first_seen:
                raise GraphConstructionError(
                    f"{path}:{line_number}: duplicate edge {u} {v} "
                    f"(first seen at line {first_seen[key]})"
                )
            first_seen[key] = line_number
            pairs.append((u, v))
            ids.add(u)
            ids.add(v)
    original_ids = sorted(ids)
    index = {node: i for i, node in enumerate(original_ids)}
    edges = [
        (min(index[u], index[v]), max(index[u], index[v])) for u, v in pairs
    ]
    return Graph(len(original_ids), edges), original_ids


def _cmd_color(args: argparse.Namespace) -> int:
    graph, original_ids = load_edge_list(args.edges)
    config = SolverConfig(algorithm=args.algorithm, seed=args.seed)
    result = solve(graph, config)
    if args.json:
        payload = dict(result.as_dict())
        payload["node_ids"] = original_ids
        output = json.dumps(payload, indent=2) + "\n"
    else:
        output = (
            "\n".join(
                f"{original_ids[v]} {result.colors[v]}" for v in range(graph.n)
            )
            + "\n"
        )
    if args.output:
        Path(args.output).write_text(output)
    else:
        sys.stdout.write(output)
    families = result.stats.get("component_families")
    summary = (
        f"components: {families}" if families is not None
        else f"phases: {result.phase_rounds}"
    )
    print(
        f"# colored n={graph.n} m={graph.num_edges} with {result.palette} "
        f"colors in {result.rounds} LOCAL rounds "
        f"[{result.algorithm}, {result.wall_time_s:.3f}s]; {summary}",
        file=sys.stderr,
    )
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    graph, _ = load_edge_list(args.edges)
    components = graph.connected_components()
    girth = girth_up_to(graph, 12)
    print(f"nodes        : {graph.n}")
    print(f"edges        : {graph.num_edges}")
    print(f"max degree Δ : {graph.max_degree()}")
    print(f"min degree   : {graph.min_degree()}")
    print(f"components   : {len(components)}")
    print(f"girth (<=12) : {girth if girth is not None else '>12 or acyclic'}")
    print(f"nice         : {is_nice(graph)}")
    print(f"gallai tree  : {is_gallai_tree(graph)}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    if not args.smoke and not args.sweep:
        print("bench: pass --smoke and/or --sweep", file=sys.stderr)
        return 2
    status = 0
    if args.smoke:
        status = _bench_smoke(args.smoke_json)
    if args.sweep and status == 0:
        status = _bench_sweep(args)
    return status


def _bench_smoke(json_path: str | None = None) -> int:
    """Import every ``benchmarks/bench_e*.py`` and run its ``build_*``
    functions at smoke size; any exception fails the run.

    With ``json_path``, per-module wall-clock seconds are written as one
    JSON document — the input of ``scripts/check_bench_regression.py``,
    the CI perf-regression gate (compared against the committed baseline
    in ``benchmarks/baselines/``).
    """
    import importlib
    import os
    import platform
    import time
    import traceback

    os.environ["REPRO_BENCH_SMOKE"] = "1"
    bench_dir = Path(__file__).resolve().parents[2] / "benchmarks"
    if not bench_dir.is_dir():
        print(f"bench: no benchmarks directory at {bench_dir}", file=sys.stderr)
        return 2
    sys.path.insert(0, str(bench_dir))
    failures = 0
    modules: dict[str, dict] = {}
    for path in sorted(bench_dir.glob("bench_e*.py")):
        module_name = path.stem
        started = time.perf_counter()
        try:
            module = importlib.import_module(module_name)
            builders = [
                fn
                for name in sorted(dir(module))
                if name.startswith("build_")
                and callable(fn := getattr(module, name))
                and getattr(fn, "__module__", None) == module.__name__
            ]
            if not builders:
                raise RuntimeError("no build_* functions found")
            for builder in builders:
                builder()
            elapsed = time.perf_counter() - started
            modules[module_name] = {"seconds": round(elapsed, 3), "ok": True}
            print(f"smoke {module_name:<28} ok    {elapsed:6.1f}s ({len(builders)} tables)")
        except Exception:
            failures += 1
            elapsed = time.perf_counter() - started
            modules[module_name] = {"seconds": round(elapsed, 3), "ok": False}
            print(f"smoke {module_name:<28} FAIL  {elapsed:6.1f}s")
            traceback.print_exc()
    if json_path:
        try:
            import numpy  # noqa: F401 - vectorized fast paths present?
            numeric = True
        except ImportError:
            numeric = False
        payload = {
            "bench": "smoke",
            "python": sys.version.split()[0],
            "platform": platform.platform(),
            "numeric_stack": numeric,
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
            "modules": modules,
        }
        out = Path(json_path)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {out}")
    if failures:
        print(f"bench --smoke: {failures} bench module(s) failed", file=sys.stderr)
        return 1
    return 0


def _bench_sweep(args: argparse.Namespace) -> int:
    from repro.analysis.harness import (
        HarnessReport,
        delta_coloring_sweep,
        throughput_sweep,
    )

    try:
        sweep_sizes = [int(s) for s in args.sizes.split(",") if s]
    except ValueError:
        print(f"bench: bad --sizes {args.sizes!r}", file=sys.stderr)
        return 2
    report = HarnessReport(name="delta-coloring-wall-clock")
    report.add(
        f"delta_coloring_large_delta Δ={args.delta}",
        delta_coloring_sweep(
            sweep_sizes,
            delta=args.delta,
            seed=args.seed,
            warmup=args.warmup,
            repeats=args.repeats,
        ),
    )
    if args.workers > 1:
        report.add(
            f"solve_many batch={args.batch} workers={args.workers} Δ={args.delta}",
            throughput_sweep(
                sweep_sizes,
                delta=args.delta,
                seed=args.seed,
                batch=args.batch,
                workers=args.workers,
                warmup=args.warmup,
                repeats=args.repeats,
            ),
        )
    print(report.render())
    if args.json:
        written = report.write_json(args.json)
        print(f"wrote {written}")
    return 0


def _publish_port(port_file: str | None, host: str, port: int) -> None:
    """Publish ``host port\\n`` for the ShardWorker boot handshake.

    Written to a sibling temp file and ``os.replace``d so a reader never
    observes a half-written line.
    """
    if not port_file:
        return
    import os

    target = Path(port_file)
    tmp = target.with_name(target.name + ".tmp")
    tmp.write_text(f"{host} {port}\n")
    os.replace(tmp, target)


def _install_stop_handlers(loop, stop) -> None:
    """SIGTERM/SIGINT set the stop event → graceful drain (best effort:
    not every platform/loop supports add_signal_handler)."""
    import signal

    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(sig, stop.set)
        except (NotImplementedError, RuntimeError, ValueError):
            pass


def _serve_tracer(args: argparse.Namespace, filename: str):
    """Build the process's span exporter from ``--trace-dir`` (or None).

    Each process writes its own JSONL file under the shared directory —
    ``repro trace <dir>`` reads them all and reassembles cross-process
    traces by trace id.
    """
    if not getattr(args, "trace_dir", None):
        return None
    from repro.obs.trace import Tracer

    trace_dir = Path(args.trace_dir)
    trace_dir.mkdir(parents=True, exist_ok=True)
    return Tracer(
        sample=args.trace_sample,
        export_path=str(trace_dir / filename),
    )


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import os

    if args.shards > 1:
        return _cmd_serve_sharded(args)

    from repro.service.server import ColoringServer
    from repro.service.storage import StorageConfig

    storage = StorageConfig(
        cache_entries=args.cache_entries,
        cache_bytes=args.cache_bytes if args.cache_bytes > 0 else None,
        cache_ttl_s=args.cache_ttl if args.cache_ttl and args.cache_ttl > 0 else None,
        graph_store_entries=args.graph_store_entries,
        store_dir=args.store_dir or None,
        wal=args.wal == "on",
        fsync=args.fsync,
    )
    server = ColoringServer(
        host=args.host,
        port=args.port,
        workers=args.workers,
        storage=storage,
        max_batch=args.max_batch,
        max_wait_s=args.max_wait_ms / 1000.0,
        max_queue=args.max_queue,
        max_cost=args.max_cost if args.max_cost > 0 else None,
        tracer=_serve_tracer(args, f"server-{os.getpid()}.jsonl"),
    )

    async def _serve() -> None:
        stop = asyncio.Event()
        _install_stop_handlers(asyncio.get_running_loop(), stop)
        host, port = await server.start()
        _publish_port(args.port_file, host, port)
        print(
            f"# repro service listening on {host}:{port} "
            f"[workers={args.workers} max_batch={args.max_batch} "
            f"max_queue={args.max_queue} cache_entries={args.cache_entries}"
            + (f" store_dir={args.store_dir} fsync={args.fsync}" if args.store_dir else "")
            + "]",
            file=sys.stderr,
        )
        try:
            await stop.wait()
        finally:
            await server.shutdown(drain_s=args.drain_s)
        print("# repro service stopped (drained)", file=sys.stderr)

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("# repro service stopped", file=sys.stderr)
    return 0


def _cmd_serve_sharded(args: argparse.Namespace) -> int:
    """``repro serve --shards N``: supervised worker fleet + front tier.

    Each shard is a full single-process server (its own solver pool,
    cache and graph store) spawned as a child; the router speaks the
    same NDJSON protocol on ``--host:--port``, so clients are unchanged.
    """
    import asyncio

    from repro.service.sharding import ShardRouter, ShardSupervisor

    serve_args = {
        "workers": args.workers,
        "max-batch": args.max_batch,
        "max-wait-ms": args.max_wait_ms,
        "max-queue": args.max_queue,
        "max-cost": args.max_cost,
        "graph-store-entries": args.graph_store_entries,
        "cache-entries": args.cache_entries,
        "cache-bytes": args.cache_bytes,
        "cache-ttl": args.cache_ttl,
        "drain-s": args.drain_s,
    }
    if args.store_dir:
        # Each shard persists its own ≈1/N keyspace partition: the worker
        # rewrites this to <store-dir>/<shard-id> (stable across restarts,
        # so a replacement process replays its predecessor's store).
        serve_args["store-dir"] = args.store_dir
        serve_args["wal"] = args.wal
        serve_args["fsync"] = args.fsync
    if args.trace_dir:
        # Shard children get the same flags; each exports to its own
        # server-<pid>.jsonl in the shared directory.  A shard traces
        # what its router sampled (remote parents force sampling on),
        # so the shard-local rate only governs direct-to-shard traffic.
        serve_args["trace-dir"] = args.trace_dir
        serve_args["trace-sample"] = args.trace_sample
    supervisor = ShardSupervisor(args.shards, host=args.host, serve_args=serve_args)

    async def _serve() -> None:
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        _install_stop_handlers(loop, stop)
        # Fleet bring-up blocks on N child boot handshakes — off the loop.
        addresses = await loop.run_in_executor(None, supervisor.start)
        router = ShardRouter(
            addresses, host=args.host, port=args.port, vnodes=args.vnodes,
            tracer=_serve_tracer(args, "router.jsonl"),
        )
        monitor_task = None
        try:
            host, port = await router.start()
            _publish_port(args.port_file, host, port)
            shard_list = ", ".join(f"{h}:{p}" for h, p in addresses)
            print(
                f"# repro sharded service listening on {host}:{port} "
                f"[shards={args.shards} vnodes={args.vnodes} "
                f"workers/shard={args.workers}] -> {shard_list}",
                file=sys.stderr,
            )
            monitor_task = loop.create_task(
                supervisor.monitor(router, stop=stop)
            )
            await stop.wait()
        finally:
            await router.shutdown(drain_s=args.drain_s)
            if monitor_task is not None:
                await monitor_task
            await loop.run_in_executor(
                None, lambda: supervisor.stop(drain_s=args.drain_s)
            )
        print("# repro sharded service stopped (drained)", file=sys.stderr)

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        supervisor.stop(drain_s=1.0)
        print("# repro sharded service stopped", file=sys.stderr)
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs import load_spans, render_report

    records = load_spans(args.paths)
    if not records:
        print(
            f"repro trace: no spans in {', '.join(args.paths)}",
            file=sys.stderr,
        )
        return 1
    sys.stdout.write(
        render_report(
            records,
            top=args.top,
            trace_id=args.trace_id,
            min_ms=args.min_ms,
        )
    )
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    # Lazy import: the linter is dev tooling; `repro color` must not pay
    # for it (and it must never drag the service tier into this import).
    from repro.devtools import main as lint_main

    argv: list[str] = list(args.paths)
    if args.json:
        argv.append("--json")
    if args.baseline is not None:
        argv.extend(["--baseline", args.baseline])
    if args.no_baseline:
        argv.append("--no-baseline")
    if args.update_baseline:
        argv.append("--update-baseline")
    if args.list_rules:
        argv.append("--list-rules")
    return lint_main(argv)


def _cmd_demo(args: argparse.Namespace) -> int:
    import importlib

    module = importlib.import_module(f"examples.{args.name}")
    module.main()
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Distributed Δ-coloring (PODC 2018 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    color = sub.add_parser("color", help="Δ-color an edge-list graph")
    color.add_argument("edges", help="edge list file: one 'u v' per line")
    color.add_argument(
        "--algorithm",
        choices=list_algorithms(),
        default="auto",
        help="registry name; auto = per-instance dispatch incl. non-nice graphs",
    )
    color.add_argument("--seed", type=int, default=0)
    color.add_argument(
        "--json",
        action="store_true",
        help="emit the full ColoringResult schema as JSON instead of "
        "'node color' lines",
    )
    color.add_argument("-o", "--output", help="write the output here instead of stdout")
    color.set_defaults(func=_cmd_color)

    info = sub.add_parser("info", help="structural profile of a graph")
    info.add_argument("edges")
    info.set_defaults(func=_cmd_info)

    bench = sub.add_parser("bench", help="wall-clock benchmarks (harness)")
    bench.add_argument(
        "--smoke",
        action="store_true",
        help="run every benchmarks/bench_e*.py at its tiniest size (CI rot check)",
    )
    bench.add_argument(
        "--smoke-json",
        help="write per-module --smoke timings to this JSON path (the "
        "input of scripts/check_bench_regression.py)",
    )
    bench.add_argument(
        "--sweep",
        action="store_true",
        help="time end-to-end Δ-coloring across --sizes with warmup/repeats",
    )
    bench.add_argument(
        "--sizes",
        default="2000,20000",
        help="comma-separated node counts for --sweep (default 2000,20000)",
    )
    bench.add_argument("--delta", type=int, default=8, help="degree for --sweep graphs")
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument("--warmup", type=int, default=1)
    bench.add_argument("--repeats", type=int, default=3)
    bench.add_argument(
        "--workers",
        type=int,
        default=1,
        help="add a solve_many throughput sweep over this many processes",
    )
    bench.add_argument(
        "--batch",
        type=int,
        default=4,
        help="instances per size point for the --workers throughput sweep",
    )
    bench.add_argument("--json", help="write the sweep report to this JSON path")
    bench.set_defaults(func=_cmd_bench)

    serve = sub.add_parser(
        "serve", help="run the NDJSON coloring service (see docs/SERVICE.md)"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8512, help="0 = ephemeral")
    serve.add_argument(
        "--workers", type=int, default=1,
        help="solver process-pool width (1 = solve in-thread)",
    )
    serve.add_argument(
        "--max-batch", type=int, default=8,
        help="micro-batch size cap for the request gateway",
    )
    serve.add_argument(
        "--max-wait-ms", type=float, default=2.0,
        help="how long a micro-batch waits for stragglers",
    )
    serve.add_argument(
        "--max-queue", type=int, default=64,
        help="outstanding-request bound; beyond it requests are rejected",
    )
    serve.add_argument(
        "--max-cost", type=int, default=8_000_000,
        help="cost-aware admission: bound on the summed n+m of outstanding "
        "requests, so backlog is metered in work, not request count "
        "(<= 0 disables; an oversize request is still admitted when idle)",
    )
    serve.add_argument(
        "--graph-store-entries", type=int, default=128,
        help="served instances retained for the update verb's repair parents",
    )
    serve.add_argument("--cache-entries", type=int, default=1024)
    serve.add_argument(
        "--cache-bytes", type=int, default=256 * 1024 * 1024,
        help="result-cache byte bound (<= 0 disables byte-based eviction)",
    )
    serve.add_argument(
        "--cache-ttl", type=float, default=0.0,
        help="result TTL in seconds (<= 0 = entries never expire)",
    )
    serve.add_argument(
        "--store-dir",
        help="durable content-addressed store directory: results and "
        "graphs persist as append-only segments and restarts replay "
        "instead of re-solving (sharded fleets partition it per shard); "
        "unset = in-memory only (see docs/STORAGE.md)",
    )
    serve.add_argument(
        "--wal", choices=("on", "off"), default="on",
        help="with --store-dir: keep the update write-ahead log so chain-"
        "head engines are rebuilt by delta replay on restart",
    )
    serve.add_argument(
        "--fsync", choices=("always", "batch", "never"), default="batch",
        help="durability policy for the store and WAL: fsync per append, "
        "every N appends, or leave flushing to the OS",
    )
    serve.add_argument(
        "--shards", type=int, default=1,
        help="run this many shard worker processes behind a consistent-"
        "hash router (1 = plain single-process server)",
    )
    serve.add_argument(
        "--vnodes", type=int, default=128,
        help="virtual nodes per shard on the hash ring (--shards > 1)",
    )
    serve.add_argument(
        "--port-file",
        help="publish the bound 'host port' to this file once listening "
        "(the shard supervisor's boot handshake)",
    )
    serve.add_argument(
        "--drain-s", type=float, default=5.0,
        help="graceful-shutdown deadline: how long SIGTERM/SIGINT waits "
        "for in-flight requests before forcing the close",
    )
    serve.add_argument(
        "--trace-dir",
        help="export finished spans as JSONL under this directory "
        "(server-<pid>.jsonl per process, router.jsonl for the front "
        "tier; read them back with 'repro trace'); unset = tracing off",
    )
    serve.add_argument(
        "--trace-sample", type=float, default=1.0,
        help="root sampling probability in [0,1] (with --trace-dir); "
        "shards inherit the router's per-request decision",
    )
    serve.set_defaults(func=_cmd_serve)

    trace = sub.add_parser(
        "trace",
        help="render span JSONL from serve --trace-dir as waterfalls",
    )
    trace.add_argument(
        "paths", nargs="+",
        help="span JSONL files, or directories of *.jsonl (a --trace-dir)",
    )
    trace.add_argument(
        "--top", type=int, default=5,
        help="how many of the slowest traces to render (default 5)",
    )
    trace.add_argument(
        "--trace-id",
        help="narrow the report to one trace (full 32-hex id or a prefix)",
    )
    trace.add_argument(
        "--min-ms", type=float, default=0.0,
        help="drop traces faster than this many milliseconds",
    )
    trace.set_defaults(func=_cmd_trace)

    lint = sub.add_parser(
        "lint",
        help="reprolint: repo-contract static analysis (docs/DEVTOOLS.md)",
        description=(
            "Run the repository's AST-based invariant linter over the given "
            "paths.  Exit 0 when every finding is fixed, suppressed, or "
            "baselined; 1 on new findings or stale baseline entries."
        ),
    )
    lint.add_argument(
        "paths", nargs="*", default=["src", "scripts", "benchmarks"],
        help="files or directories to lint (default: src scripts benchmarks)",
    )
    lint.add_argument("--json", action="store_true", help="machine-readable report")
    lint.add_argument(
        "--baseline", default=None,
        help="baseline file (default: [tool.reprolint].baseline in pyproject.toml)",
    )
    lint.add_argument(
        "--no-baseline", action="store_true",
        help="ignore the baseline: every finding fails",
    )
    lint.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline to tolerate every current finding",
    )
    lint.add_argument(
        "--list-rules", action="store_true",
        help="describe the registered rules and exit",
    )
    lint.set_defaults(func=_cmd_lint)

    demo = sub.add_parser("demo", help="run a bundled example")
    demo.add_argument(
        "name",
        choices=[
            "quickstart",
            "frequency_assignment",
            "network_repair",
            "algorithm_shootout",
            "slocal_greedy",
        ],
    )
    demo.set_defaults(func=_cmd_demo)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except GraphConstructionError as exc:
        print(f"repro: {exc}", file=sys.stderr)
        return 2
    except ReproError as exc:
        print(f"repro: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
