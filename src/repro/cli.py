"""Command-line interface: ``python -m repro``.

Gives downstream users a zero-code path to the library:

* ``color`` — Δ-color a graph given as an edge list file (one ``u v``
  pair per line, whitespace-separated, 0-based or arbitrary integer ids);
  writes ``node color`` lines to stdout or a file.  Handles arbitrary
  graphs via :func:`repro.core.special_cases.color_graph` (nice
  components get Δ colors, Brooks' exceptions get their optimum).
* ``demo`` — run one of the bundled example scenarios.
* ``info`` — parse a graph and print its structural profile (Δ, girth
  probe, niceness, Gallai-tree status, component count).
* ``bench`` — wall-clock measurement via :mod:`repro.analysis.harness`:
  ``--smoke`` runs every ``benchmarks/bench_e*.py`` at its tiniest size
  (the CI rot check behind ``make bench-smoke``), ``--sweep`` times
  end-to-end Δ-coloring across instance sizes with warmup/repetition and
  optional JSON output.

Examples::

    python -m repro color edges.txt
    python -m repro color edges.txt --algorithm deterministic -o colors.txt
    python -m repro info edges.txt
    python -m repro bench --smoke
    python -m repro bench --sweep --sizes 2000,20000,250000 --json out.json
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.core.deterministic import delta_coloring_deterministic
from repro.core.randomized import RandomizedParams, delta_coloring_randomized
from repro.core.special_cases import color_graph
from repro.baselines.panconesi_srinivasan import ps_delta_coloring
from repro.graphs.graph import Graph
from repro.graphs.properties import girth_up_to, is_gallai_tree, is_nice

__all__ = ["main", "load_edge_list"]


def load_edge_list(path: str) -> tuple[Graph, list[int]]:
    """Parse an edge-list file into a Graph.

    Node ids may be arbitrary integers; they are compacted to 0..n-1.
    Returns ``(graph, original_ids)`` where ``original_ids[i]`` is the id
    written back in the output for internal node i.
    """
    pairs: list[tuple[int, int]] = []
    ids: set[int] = set()
    for line_number, line in enumerate(Path(path).read_text().splitlines(), 1):
        stripped = line.split("#", 1)[0].strip()
        if not stripped:
            continue
        parts = stripped.split()
        if len(parts) != 2:
            raise SystemExit(f"{path}:{line_number}: expected 'u v', got {line!r}")
        u, v = int(parts[0]), int(parts[1])
        pairs.append((u, v))
        ids.add(u)
        ids.add(v)
    original_ids = sorted(ids)
    index = {node: i for i, node in enumerate(original_ids)}
    seen: set[tuple[int, int]] = set()
    edges = []
    for u, v in pairs:
        key = (min(index[u], index[v]), max(index[u], index[v]))
        if key[0] != key[1] and key not in seen:
            seen.add(key)
            edges.append(key)
    return Graph(len(original_ids), edges), original_ids


def _cmd_color(args: argparse.Namespace) -> int:
    graph, original_ids = load_edge_list(args.edges)
    if args.algorithm == "auto":
        result = color_graph(graph, seed=args.seed)
        colors, rounds, palette = result.colors, result.rounds, result.num_colors
        summary = f"components: {result.component_families}"
    else:
        if args.algorithm == "deterministic":
            res = delta_coloring_deterministic(graph)
        elif args.algorithm == "ps":
            res = ps_delta_coloring(graph, seed=args.seed)
        else:  # randomized
            res = delta_coloring_randomized(graph, RandomizedParams(seed=args.seed))
        colors, rounds, palette = res.colors, res.rounds, graph.max_degree()
        summary = f"phases: {res.phase_rounds}"
    lines = [f"{original_ids[v]} {colors[v]}" for v in range(graph.n)]
    output = "\n".join(lines) + "\n"
    if args.output:
        Path(args.output).write_text(output)
    else:
        sys.stdout.write(output)
    print(
        f"# colored n={graph.n} m={graph.num_edges} with {palette} colors "
        f"in {rounds} LOCAL rounds; {summary}",
        file=sys.stderr,
    )
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    graph, _ = load_edge_list(args.edges)
    components = graph.connected_components()
    girth = girth_up_to(graph, 12)
    print(f"nodes        : {graph.n}")
    print(f"edges        : {graph.num_edges}")
    print(f"max degree Δ : {graph.max_degree()}")
    print(f"min degree   : {graph.min_degree()}")
    print(f"components   : {len(components)}")
    print(f"girth (<=12) : {girth if girth is not None else '>12 or acyclic'}")
    print(f"nice         : {is_nice(graph)}")
    print(f"gallai tree  : {is_gallai_tree(graph)}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    if not args.smoke and not args.sweep:
        print("bench: pass --smoke and/or --sweep", file=sys.stderr)
        return 2
    status = 0
    if args.smoke:
        status = _bench_smoke()
    if args.sweep and status == 0:
        status = _bench_sweep(args)
    return status


def _bench_smoke() -> int:
    """Import every ``benchmarks/bench_e*.py`` and run its ``build_*``
    functions at smoke size; any exception fails the run."""
    import importlib
    import os
    import time
    import traceback

    os.environ["REPRO_BENCH_SMOKE"] = "1"
    bench_dir = Path(__file__).resolve().parents[2] / "benchmarks"
    if not bench_dir.is_dir():
        print(f"bench: no benchmarks directory at {bench_dir}", file=sys.stderr)
        return 2
    sys.path.insert(0, str(bench_dir))
    failures = 0
    for path in sorted(bench_dir.glob("bench_e*.py")):
        module_name = path.stem
        started = time.perf_counter()
        try:
            module = importlib.import_module(module_name)
            builders = [
                fn
                for name in sorted(dir(module))
                if name.startswith("build_")
                and callable(fn := getattr(module, name))
                and getattr(fn, "__module__", None) == module.__name__
            ]
            if not builders:
                raise RuntimeError("no build_* functions found")
            for builder in builders:
                builder()
            elapsed = time.perf_counter() - started
            print(f"smoke {module_name:<28} ok    {elapsed:6.1f}s ({len(builders)} tables)")
        except Exception:
            failures += 1
            elapsed = time.perf_counter() - started
            print(f"smoke {module_name:<28} FAIL  {elapsed:6.1f}s")
            traceback.print_exc()
    if failures:
        print(f"bench --smoke: {failures} bench module(s) failed", file=sys.stderr)
        return 1
    return 0


def _bench_sweep(args: argparse.Namespace) -> int:
    from repro.analysis.harness import HarnessReport, delta_coloring_sweep

    try:
        sweep_sizes = [int(s) for s in args.sizes.split(",") if s]
    except ValueError:
        print(f"bench: bad --sizes {args.sizes!r}", file=sys.stderr)
        return 2
    report = HarnessReport(name="delta-coloring-wall-clock")
    report.add(
        f"delta_coloring_large_delta Δ={args.delta}",
        delta_coloring_sweep(
            sweep_sizes,
            delta=args.delta,
            seed=args.seed,
            warmup=args.warmup,
            repeats=args.repeats,
        ),
    )
    print(report.render())
    if args.json:
        written = report.write_json(args.json)
        print(f"wrote {written}")
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    import importlib

    module = importlib.import_module(f"examples.{args.name}")
    module.main()
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Distributed Δ-coloring (PODC 2018 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    color = sub.add_parser("color", help="Δ-color an edge-list graph")
    color.add_argument("edges", help="edge list file: one 'u v' per line")
    color.add_argument(
        "--algorithm",
        choices=["auto", "randomized", "deterministic", "ps"],
        default="auto",
        help="auto = per-component dispatch incl. non-nice components",
    )
    color.add_argument("--seed", type=int, default=0)
    color.add_argument("-o", "--output", help="write 'node color' lines here")
    color.set_defaults(func=_cmd_color)

    info = sub.add_parser("info", help="structural profile of a graph")
    info.add_argument("edges")
    info.set_defaults(func=_cmd_info)

    bench = sub.add_parser("bench", help="wall-clock benchmarks (harness)")
    bench.add_argument(
        "--smoke",
        action="store_true",
        help="run every benchmarks/bench_e*.py at its tiniest size (CI rot check)",
    )
    bench.add_argument(
        "--sweep",
        action="store_true",
        help="time end-to-end Δ-coloring across --sizes with warmup/repeats",
    )
    bench.add_argument(
        "--sizes",
        default="2000,20000",
        help="comma-separated node counts for --sweep (default 2000,20000)",
    )
    bench.add_argument("--delta", type=int, default=8, help="degree for --sweep graphs")
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument("--warmup", type=int, default=1)
    bench.add_argument("--repeats", type=int, default=3)
    bench.add_argument("--json", help="write the sweep report to this JSON path")
    bench.set_defaults(func=_cmd_bench)

    demo = sub.add_parser("demo", help="run a bundled example")
    demo.add_argument(
        "name",
        choices=[
            "quickstart",
            "frequency_assignment",
            "network_repair",
            "algorithm_shootout",
            "slocal_greedy",
        ],
    )
    demo.set_defaults(func=_cmd_demo)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
