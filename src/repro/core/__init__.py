"""The paper's primary contribution: Δ-coloring algorithms and machinery.

* :mod:`repro.core.degree_choosable` — constructive Theorem 8 colorer.
* :mod:`repro.core.dcc` — DCC detection + virtual graph G_DCC (phases 1-2).
* :mod:`repro.core.brooks` — distributed Brooks' theorem (Theorem 5).
* :mod:`repro.core.layering` — the layering technique (Section 3).
* :mod:`repro.core.marking` — the marking process (phase 4).
* :mod:`repro.core.happiness` — happiness layers (phase 5).
* :mod:`repro.core.small_components` — leftover components (phase 6).
* :mod:`repro.core.randomized` — Theorems 1 and 3 orchestrators.
* :mod:`repro.core.deterministic` — Theorem 4 (subsuming Theorem 21).
"""

from repro.core.brooks import BrooksFixResult, default_fix_radius, fix_uncolored_node
from repro.core.colorstore import ColorStore
from repro.core.dcc import DCCDetection, detect_dccs, virtual_graph_ruling_set
from repro.core.degree_choosable import backtracking_list_color, degree_list_color
from repro.core.deterministic import (
    DeterministicResult,
    delta_coloring_deterministic,
    ruling_distance,
)
from repro.core.happiness import HappinessLayers, build_happiness_layers
from repro.core.layering import (
    LayerColoringReport,
    build_layers,
    color_layers_in_reverse,
)
from repro.core.marking import (
    MarkingOutcome,
    default_selection_probability,
    marking_process,
)
from repro.core.randomized import (
    DeltaColoringResult,
    RandomizedParams,
    delta_coloring_large_delta,
    delta_coloring_randomized,
    delta_coloring_small_delta,
)
from repro.core.small_components import SmallComponentsReport, color_small_components
from repro.core.special_cases import (
    ComponentColoring,
    SpecialColoring,
    color_graph,
    color_special,
)
from repro.core.slocal_coloring import slocal_delta_coloring

__all__ = [
    "degree_list_color",
    "backtracking_list_color",
    "DCCDetection",
    "detect_dccs",
    "virtual_graph_ruling_set",
    "BrooksFixResult",
    "fix_uncolored_node",
    "default_fix_radius",
    "ColorStore",
    "LayerColoringReport",
    "build_layers",
    "color_layers_in_reverse",
    "MarkingOutcome",
    "marking_process",
    "default_selection_probability",
    "HappinessLayers",
    "build_happiness_layers",
    "SmallComponentsReport",
    "color_small_components",
    "RandomizedParams",
    "DeltaColoringResult",
    "delta_coloring_randomized",
    "delta_coloring_small_delta",
    "delta_coloring_large_delta",
    "DeterministicResult",
    "delta_coloring_deterministic",
    "ruling_distance",
    "SpecialColoring",
    "color_special",
    "ComponentColoring",
    "color_graph",
    "slocal_delta_coloring",
]
