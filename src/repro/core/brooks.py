"""Distributed Brooks' theorem (Theorem 5): local single-node repair.

Setting: the graph is properly Δ-colored except for one node v.  Theorem 5
(re-proved by the paper via Lemmas 10–16) says the coloring can be
completed by changing colors only inside the (2·log_{Δ-1} n)-neighbourhood
of v.  The constructive procedure implemented here is the proof's token
walk:

1. If v has a free color, take it.
2. Otherwise every color appears exactly once around v (deg(v) = Δ and Δ
   distinct neighbour colors), so the *token* can slide: pick the
   neighbour x on a shortest path toward a chosen target, set
   c(v) := c(x) (proper — x was the unique neighbour with that color),
   uncolor x, repeat from x.
3. Targets, nearest first (Lemma 16 guarantees one within 2·log_{Δ-1} n):
   * a **deficient** node (degree < Δ) — once the token reaches it, at
     most Δ-1 neighbours exist, a free color is guaranteed;
   * a node adjacent to an **uncolored** node — same guarantee;
   * a **degree-choosable component** — slide the token into it, uncolor
     it entirely, recolor it by degree-choosability (Theorem 8);
   * a **duplicate** node (two equal-colored neighbours) — usually free
     after arrival; the walk may disturb its duplication, in which case a
     fresh target is chosen (bounded retries).
4. If no target exists within ``max_radius`` (possible only on inputs
   violating Lemma 16's hypotheses, e.g. tiny graphs), a growing region
   around the token is uncolored and resolved as a degree-list instance —
   ultimately the whole component, where Brooks' theorem guarantees
   success on nice graphs.

Rounds charged: 2·(search radius) + path length per walk segment — the
LOCAL cost of v's region discovering the target and relaying the shifts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import AlgorithmContractError, InfeasibleListColoringError
from repro.core.degree_choosable import degree_list_color
from repro.graphs.bfs import bfs_ball, bfs_tree
from repro.graphs.blocks import biconnected_components
from repro.graphs.graph import Graph
from repro.graphs.properties import is_clique_nodes, is_odd_cycle_nodes
from repro.graphs.validation import UNCOLORED
from repro.local.rounds import RoundLedger

__all__ = ["BrooksFixResult", "fix_uncolored_node", "default_fix_radius"]


@dataclass
class BrooksFixResult:
    """Outcome of one repair.

    ``mode`` records which guarantee finished the walk; ``radius`` is the
    farthest distance (from the original node) at which colors changed —
    the quantity Theorem 5 bounds by 2·log_{Δ-1} n and experiment E5
    measures.  ``recolored`` lists nodes whose color changed (excluding
    the repaired node itself); ``rounds`` is the charged LOCAL cost.
    """

    mode: str
    radius: int
    recolored: list[int] = field(default_factory=list)
    shifts: int = 0
    rounds: int = 0


def default_fix_radius(n: int, max_colors: int) -> int:
    """The Theorem 5 radius bound 2·log_{Δ-1} n (plus slack for rounding)."""
    base = max(2, max_colors - 1)
    return 2 * math.ceil(math.log(max(2, n)) / math.log(base)) + 2


def fix_uncolored_node(
    graph: Graph,
    colors: list[int],
    v: int,
    max_colors: int,
    max_radius: int | None = None,
    ledger: RoundLedger | None = None,
    max_attempts: int = 24,
) -> BrooksFixResult:
    """Complete the coloring at ``v`` by local recoloring (Theorem 5).

    Preconditions: ``colors`` is a proper partial coloring with
    ``colors[v] == UNCOLORED``; any other uncolored nodes must be farther
    than ``2·max_radius`` from v (the deterministic algorithm guarantees
    this via the ruling-set distance; strict-mode callers check it).
    Mutates ``colors``; returns a :class:`BrooksFixResult`.
    """
    ledger = ledger if ledger is not None else RoundLedger()
    if colors[v] != UNCOLORED:
        raise AlgorithmContractError(f"node {v} is already colored")
    if max_radius is None:
        max_radius = default_fix_radius(graph.n, max_colors)

    original = v
    token = v
    result = BrooksFixResult(mode="free", radius=0)
    touched: set[int] = set()
    burnt_targets: set[int] = set()

    for _attempt in range(max_attempts):
        if _take_free_color(graph, colors, token, max_colors):
            result.mode = "free" if result.shifts == 0 else result.mode
            result.recolored = sorted(touched - {original})
            result.rounds += 1
            ledger.charge(1)
            _update_radius(graph, result, original, touched | {token})
            return result

        target, kind, parent, level, dcc_block = _find_target(
            graph, colors, token, max_colors, max_radius, burnt_targets
        )
        search_radius = max(level.values(), default=0)
        ledger.charge(2 * search_radius + 1)
        result.rounds += 2 * search_radius + 1

        if target is None:
            return _regional_repair(
                graph, colors, token, original, max_colors, max_radius,
                ledger, result, touched,
            )

        path = _path_from_tree(parent, token, target)
        if kind == "dcc":
            # Slide until the token enters the component, then recolor it.
            block = set(dcc_block)
            for nxt in path[1:]:
                if token in block:
                    break
                _shift(colors, graph, token, nxt, touched, result)
                token = nxt
                if _take_free_color(graph, colors, token, max_colors):
                    result.mode = "shift-early-free"
                    result.recolored = sorted(touched - {original})
                    _update_radius(graph, result, original, touched | {token})
                    return result
            _recolor_dcc(graph, colors, block, max_colors, touched)
            result.mode = "dcc"
            result.recolored = sorted(touched - {original})
            ledger.charge(len(path) + 2)
            result.rounds += len(path) + 2
            _update_radius(graph, result, original, touched | block)
            return result

        # Deficient / uncolored-adjacent / duplicate target: walk there.
        for nxt in path[1:]:
            _shift(colors, graph, token, nxt, touched, result)
            token = nxt
            if _take_free_color(graph, colors, token, max_colors):
                result.mode = {
                    "deficient": "deficient",
                    "uncolored": "uncolored-slack",
                    "duplicate": "duplicate",
                }[kind] if token == target else "shift-early-free"
                result.recolored = sorted(touched - {original})
                ledger.charge(len(path))
                result.rounds += len(path)
                _update_radius(graph, result, original, touched | {token})
                return result
        # Arrived but no free color (duplicate destroyed en route): burn
        # this target and retry from the current token position.
        burnt_targets.add(target)
        ledger.charge(len(path))
        result.rounds += len(path)

    # Retries exhausted: fall back to regional repair around the token.
    return _regional_repair(
        graph, colors, token, original, max_colors, max_radius, ledger, result, touched
    )


def _path_from_tree(parent: dict[int, int], root: int, target: int) -> list[int]:
    """Root-to-target path in a BFS tree given the parent map."""
    path = [target]
    while path[-1] != root:
        path.append(parent[path[-1]])
    path.reverse()
    return path


def _take_free_color(graph: Graph, colors: list[int], v: int, max_colors: int) -> bool:
    used = {colors[u] for u in graph.adj[v] if colors[u] != UNCOLORED}
    for c in range(1, max_colors + 1):
        if c not in used:
            colors[v] = c
            return True
    return False


def _shift(
    colors: list[int],
    graph: Graph,
    token: int,
    nxt: int,
    touched: set[int],
    result: BrooksFixResult,
) -> None:
    """One token slide: token takes nxt's color, nxt becomes the token.

    Proper because the token had no free color, hence deg = Δ with all Δ
    colors distinct around it — nxt was the unique neighbour wearing its
    color.
    """
    if colors[nxt] == UNCOLORED:
        raise AlgorithmContractError("token walk stepped onto an uncolored node")
    colors[token] = colors[nxt]
    colors[nxt] = UNCOLORED
    touched.add(token)
    touched.add(nxt)
    result.shifts += 1


def _find_target(
    graph: Graph,
    colors: list[int],
    token: int,
    max_colors: int,
    max_radius: int,
    burnt: set[int],
):
    """BFS through *colored* nodes from the token, classifying candidates.

    Returns ``(target, kind, parent_map, level_map, dcc_block)`` with kind
    one of ``deficient`` / ``uncolored`` (= adjacent to an uncolored node
    other than the token) / ``dcc`` / ``duplicate``; ``target is None``
    when the ball contains none.  Preference order: guaranteed-success
    targets first, then the *smallest-radius* DCC (found by growing the
    ball incrementally so its block stays local instead of merging into
    the graph's 2-core), then duplicate nodes.
    """
    def allowed(u: str) -> bool:
        return u == token or colors[u] != UNCOLORED

    parent, level = bfs_tree(graph, token, max_radius, allowed=allowed)
    candidates: dict[str, tuple[int, int]] = {}

    for u, lu in level.items():
        if u == token or u in burnt:
            continue
        if graph.degree(u) < max_colors:
            if "deficient" not in candidates or lu < candidates["deficient"][0]:
                candidates["deficient"] = (lu, u)
        neighbor_colors = [colors[w] for w in graph.adj[u]]
        if any(c == UNCOLORED for w, c in zip(graph.adj[u], neighbor_colors) if w != token):
            if "uncolored" not in candidates or lu < candidates["uncolored"][0]:
                candidates["uncolored"] = (lu, u)
        colored = [c for c in neighbor_colors if c != UNCOLORED]
        if len(colored) != len(set(colored)):
            if "duplicate" not in candidates or lu < candidates["duplicate"][0]:
                candidates["duplicate"] = (lu, u)

    for kind in ("deficient", "uncolored"):
        if kind in candidates:
            _, node = candidates[kind]
            return node, kind, parent, level, None

    dcc = _smallest_radius_dcc(graph, colors, token, max_radius, level, burnt)
    if dcc is not None:
        entry, block = dcc
        return entry, "dcc", parent, level, block

    if "duplicate" in candidates:
        _, node = candidates["duplicate"]
        return node, "duplicate", parent, level, None
    return None, None, parent, level, None


def _smallest_radius_dcc(
    graph: Graph,
    colors: list[int],
    token: int,
    max_radius: int,
    level: dict[int, int],
    burnt: set[int],
) -> tuple[int, list[int]] | None:
    """Find a DCC block inside the smallest possible ball around the token.

    Growing the ball one hop at a time keeps the returned block local: a
    block found at radius ρ lies inside the radius-ρ ball, whereas a
    block of the full max-radius ball would typically be the graph's
    giant 2-core.  Returns ``(entry_node, block_nodes)`` where entry is
    the block node closest to the token, or None.
    """
    def allowed(u: str) -> bool:
        return u == token or colors[u] != UNCOLORED

    for radius in range(2, max_radius + 1):
        ball = bfs_ball(graph, token, radius, allowed=allowed)
        if len(ball) < 4:
            continue
        sub, originals = graph.subgraph(ball)
        if sub.num_edges < sub.n:
            continue  # still a tree: no 2-connected subgraph yet
        decomposition = biconnected_components(sub)
        best: tuple[int, int, list[int]] | None = None
        for block in decomposition.blocks:
            if len(block) < 4:
                continue
            if is_clique_nodes(sub, block) or is_odd_cycle_nodes(sub, block):
                continue
            block_original = [originals[i] for i in block]
            entries = [
                (level[u], u)
                for u in block_original
                if u != token and u in level and u not in burnt
            ]
            if not entries:
                continue
            entry_level, entry = min(entries)
            if best is None or entry_level < best[0]:
                best = (entry_level, entry, block_original)
        if best is not None:
            return best[1], best[2]
    return None


def _recolor_dcc(
    graph: Graph,
    colors: list[int],
    block: set[int],
    max_colors: int,
    touched: set[int],
) -> None:
    """Uncolor the whole DCC and recolor it by degree-choosability."""
    for u in block:
        colors[u] = UNCOLORED
    sub, originals = graph.subgraph(sorted(block))
    lists: list[set[int]] = []
    for i, u in enumerate(originals):
        taken = {colors[w] for w in graph.adj[u] if colors[w] != UNCOLORED and w not in block}
        lists.append({c for c in range(1, max_colors + 1) if c not in taken})
    assignment = degree_list_color(sub, lists)
    for i, u in enumerate(originals):
        colors[u] = assignment[i]
        touched.add(u)


def _regional_repair(
    graph: Graph,
    colors: list[int],
    token: int,
    original: int,
    max_colors: int,
    max_radius: int,
    ledger: RoundLedger,
    result: BrooksFixResult,
    touched: set[int],
) -> BrooksFixResult:
    """Uncolor a growing region around the token and solve it as a
    degree-list instance; guaranteed to terminate on nice components."""
    radius = max(2, max_radius)
    last_region_size = -1
    while True:
        region = set(bfs_ball(graph, token, radius))
        saved = {u: colors[u] for u in region}
        for u in region:
            colors[u] = UNCOLORED
        sub, originals = graph.subgraph(sorted(region))
        lists = []
        for u in originals:
            taken = {
                colors[w]
                for w in graph.adj[u]
                if colors[w] != UNCOLORED and w not in region
            }
            lists.append({c for c in range(1, max_colors + 1) if c not in taken})
        try:
            assignment = degree_list_color(sub, lists)
        except InfeasibleListColoringError as exc:
            for u, c in saved.items():
                colors[u] = c
            # The second condition catches disconnected graphs: once the
            # ball saturates the token's component, growing the radius
            # cannot change the instance, so retrying would loop forever.
            if len(region) >= graph.n or len(region) == last_region_size:
                raise AlgorithmContractError(
                    "regional repair failed on the whole component: input is "
                    "not Δ-colorable (clique or odd cycle?)"
                ) from exc
            last_region_size = len(region)
            radius *= 2
            continue
        for i, u in enumerate(originals):
            if assignment[i] != saved[u]:
                touched.add(u)
            colors[u] = assignment[i]
        ledger.charge(2 * radius + 1)
        result.rounds += 2 * radius + 1
        result.mode = "regional"
        result.recolored = sorted(touched - {original})
        _update_radius(graph, result, original, touched | region)
        return result


def _update_radius(
    graph: Graph, result: BrooksFixResult, original: int, nodes: set[int]
) -> None:
    """Record the farthest changed node from the original repair site."""
    if not nodes:
        result.radius = 0
        return
    from repro.graphs.bfs import bfs_distances

    dist = bfs_distances(graph, [original])
    result.radius = max((dist[u] for u in nodes if dist[u] != -1), default=0)
