"""Array-backed color store with journaled transactions.

The incremental engine used to shuttle colorings around as Python lists:
``list(self._colors)`` at the top of every op, ``list(colors)`` again to
diff against, and a full ``zip(before, after)`` scan to discover what
changed — three O(n) passes per update even when the repair touched four
nodes.  :class:`ColorStore` replaces all of that:

* colors live in one ``numpy`` int32 array (pure-Python ``array('i')``
  fallback, pinned behaviourally identical by ``tests/test_colorstore.py``);
* :meth:`begin` opens a transaction: writes journal the **first** old
  value per node into a dict, so :meth:`rollback` is O(touched) and
  :meth:`commit` returns exactly the nodes whose final value differs
  from their pre-transaction value — no full-array diff;
* :meth:`view` is a copy-on-read, read-only view for validators and
  fingerprinting (zero copies on the numpy path);
* item access returns plain Python ints, so stored colorings round-trip
  through JSON and ``tuple(...)`` equality exactly as before.

Repair routines (:func:`repro.core.brooks.fix_uncolored_node`, the
greedy rung) mutate colorings only through ``colors[v]`` reads/writes,
so a store instance drops in wherever a list was passed.
"""

from __future__ import annotations

from array import array
from collections.abc import Iterable, Iterator

try:  # numpy fast path, pure-Python fallback pinned equivalent
    import numpy as _np
except Exception:  # pragma: no cover - numpy-free environments
    _np = None

__all__ = ["ColorStore"]


class ColorStore:
    """A flat color array with an optional first-write-wins journal.

    Parameters
    ----------
    colors:
        Initial coloring (any iterable of ints).
    backend:
        ``"auto"`` (numpy when available), ``"numpy"``, or ``"python"``.
    """

    __slots__ = ("_buf", "_np", "_journal")

    def __init__(self, colors: Iterable[int], *, backend: str = "auto"):
        if backend not in ("auto", "numpy", "python"):
            raise ValueError(f"unknown ColorStore backend: {backend!r}")
        use_np = _np is not None and backend in ("auto", "numpy")
        if backend == "numpy" and _np is None:
            raise RuntimeError("numpy backend requested but numpy is unavailable")
        if use_np:
            self._buf = _np.asarray(list(colors), dtype=_np.int32)
            self._np = True
        else:
            self._buf = array("i", colors)
            self._np = False
        self._journal: dict[int, int] | None = None

    # -- sequence protocol (what repair routines use) ----------------------

    def __len__(self) -> int:
        return len(self._buf)

    def __getitem__(self, v: int) -> int:
        return int(self._buf[v])

    def __setitem__(self, v: int, color: int) -> None:
        journal = self._journal
        if journal is not None and v not in journal:
            journal[v] = int(self._buf[v])
        self._buf[v] = color

    def __iter__(self) -> Iterator[int]:
        if self._np:
            return iter(self._buf.tolist())
        return iter(self._buf)

    # -- transactions ------------------------------------------------------

    @property
    def in_transaction(self) -> bool:
        return self._journal is not None

    def begin(self) -> None:
        """Open a transaction; nested transactions are a bug."""
        if self._journal is not None:
            raise RuntimeError("ColorStore transaction already open")
        self._journal = {}

    def rollback(self) -> None:
        """Restore every journaled write and close the transaction."""
        journal = self._journal
        if journal is None:
            raise RuntimeError("no open ColorStore transaction")
        buf = self._buf
        for v, old in journal.items():
            buf[v] = old
        self._journal = None

    def commit(self) -> list[int]:
        """Close the transaction; the sorted nodes whose value actually
        changed (writes that restored the original value don't count)."""
        journal = self._journal
        if journal is None:
            raise RuntimeError("no open ColorStore transaction")
        buf = self._buf
        changed = sorted(v for v, old in journal.items() if int(buf[v]) != old)
        self._journal = None
        return changed

    # -- bulk access -------------------------------------------------------

    def view(self):
        """A read-only, zero-copy (numpy) or copying (fallback) view.

        Supports ``len``, indexing, and iteration — what the region
        validator and fingerprinting need.  Never write through it.
        """
        if self._np:
            out = self._buf.view()
            out.flags.writeable = False
            return out
        return tuple(self._buf)

    def to_list(self) -> list[int]:
        """A plain-list copy (O(n)); for API boundaries only."""
        if self._np:
            return self._buf.tolist()
        return list(self._buf)

    def replace(self, colors: Iterable[int]) -> None:
        """Swap in a whole new coloring (full re-solve path); any open
        transaction is discarded — the caller owns the diff."""
        if self._np:
            self._buf = _np.asarray(list(colors), dtype=_np.int32)
        else:
            self._buf = array("i", colors)
        self._journal = None

    def diff_count(self, other: Iterable[int]) -> int:
        """How many positions differ from ``other`` (vectorized on numpy)."""
        if self._np:
            arr = _np.asarray(
                other if isinstance(other, _np.ndarray) else list(other),
                dtype=_np.int32,
            )
            return int(_np.count_nonzero(self._buf != arr))
        buf = self._buf
        return sum(1 for v, c in enumerate(other) if buf[v] != c)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        backend = "numpy" if self._np else "python"
        return f"ColorStore(n={len(self._buf)}, backend={backend})"
