"""Degree-choosable component detection and the virtual graph G_DCC.

Phase (1) of the randomized algorithms: every node contained in a
degree-choosable subgraph of radius <= r selects one such subgraph; the
selected subgraphs form the virtual graph G_DCC (two subgraphs adjacent if
they share a vertex or are joined by a G-edge), on which phase (2)
computes a (2, β) ruling set whose components become the base layer B0.

**Detection** (DESIGN.md §4.6): node v collects its radius-r ball (r LOCAL
rounds), takes the block decomposition of the induced subgraph, and selects
the first block containing v that is neither a clique nor an odd cycle.
Such a block is 2-connected, hence a DCC (Definition 9), and lives inside
the ball so its radius around v is <= 2r.  Conversely any DCC of radius
<= r/2 around v lies inside the ball and forces the block containing it to
be a DCC, so detection at radius r is complete for DCCs of radius <= r/2.
A ball that induces a tree (the overwhelmingly common case in the
locally-tree-like workloads) is skipped without a block decomposition; the
tree test counts in-ball edges through a reusable byte mask over the CSR
adjacency, so no induced subgraph is materialised unless the ball actually
contains a cycle.  This per-node loop is the single hottest path of the
randomized pipeline — see the "Performance notes" section of ROADMAP.md.

**Virtual MIS** — the ruling set of G_DCC is computed by Luby/Ghaffari
rounds *simulated through member nodes*: each live DCC draws a priority,
every member node learns the max priority of the DCCs it belongs to, one
G-round spreads these to neighbours, and each DCC aggregates over its
members — exactly adjacency "share a vertex or a G-edge".  One virtual
round costs O(r) real rounds, as the paper states.
"""

from __future__ import annotations

import random
from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.graphs.blocks import blocks_through
from repro.graphs.graph import Graph
from repro.graphs.properties import is_clique_nodes, is_odd_cycle_nodes
from repro.local.rounds import RoundLedger

__all__ = ["DCCDetection", "DCCScratch", "detect_dccs", "virtual_graph_ruling_set"]


@dataclass
class DCCDetection:
    """Output of phase (1).

    ``dccs`` lists the distinct selected DCCs (each a sorted node tuple);
    ``selected_by[v]`` is the index (into ``dccs``) of the DCC node v
    selected, or -1; ``nodes_in_dccs`` is the union of all selected DCCs.
    ``rounds`` is the LOCAL cost charged (ball collection).
    """

    dccs: list[tuple[int, ...]] = field(default_factory=list)
    selected_by: list[int] = field(default_factory=list)
    nodes_in_dccs: set[int] = field(default_factory=set)
    rounds: int = 0


# The pure-Python fallback here is not a renamed twin of this kernel but
# the original lazy per-ball counting pass inside detect_dccs (structurally
# different: per-candidate BFS + peel instead of blockwise sparse
# products); the two paths are pinned equivalent by the fixed-seed golden
# tests and the detect_dccs property tests.
# reprolint: disable=RPL007 -- fallback is the lazy path in detect_dccs
def _vectorized_ball_blocks(graph: Graph, radius: int):
    """Blockwise vectorized ball structure for DCC detection (or ``None``).

    Yields ``(np, candidates, balls)`` tuples where ``candidates`` is an
    int array of node ids and row ``i`` of the CSR matrix ``balls``
    holds the radius-``r`` ball members of ``candidates[i]`` with their
    in-ball degrees as data — the 2-core peeling input:

    * ball rows come from ``((A+I)^r A) ∘ (A+I)^r`` (every ball member
      has an in-ball neighbour, so the product pattern *is* the ball);
    * rows that are too small (< 4 nodes) or induce a tree
      (``Σ deg < 2·|ball|``) are dropped — the cheap-reject conditions.

    The consumer (:func:`detect_dccs`) peels candidate rows in batches
    via :func:`_batched_peel`, in *waves* interleaved with selection, so
    the adoption short-circuit ("a node inside an already-selected block
    never detects") keeps pruning work exactly as it does on the lazy
    pure-Python path.  Returns ``None`` when scipy is unavailable or the
    graph is tiny (the caller then falls back to the per-ball counting
    pass).
    """
    if graph.n < 256 or graph.num_edges == 0:
        return None
    try:
        import numpy as np
        from scipy import sparse
    except Exception:  # pragma: no cover - scipy-free environments
        return None
    offsets, indices = graph.csr()
    n = graph.n
    indptr = np.frombuffer(offsets, dtype=np.int32)
    idx = np.frombuffer(indices, dtype=np.int32)
    adjacency = sparse.csr_matrix(
        (np.ones(len(idx), dtype=np.int32), idx, indptr), shape=(n, n)
    )
    # Block the rows so the intermediates stay bounded (~Δ^{r+1} nonzeros
    # per row) even on million-edge inputs.
    delta = max(1, graph.max_degree())
    per_row = min(n, delta ** (radius + 1) + 1)
    step = max(1024, min(n, 4_000_000 // per_row))
    identity = sparse.identity(n, dtype=np.int32, format="csr")

    def blocks():
        for start in range(0, n, step):
            rows = slice(start, min(n, start + step))
            reach = adjacency[rows] + identity[rows]
            reach.data[:] = 1
            for _ in range(radius - 1):
                reach = reach @ adjacency + reach
                reach.data[:] = 1
            # No sort_indices anywhere: member order is irrelevant (the
            # peel is order-free and blocks_through sorts its own roots).
            # In-ball degrees via the SDDMM gather (pattern = reach:
            # every ball member has its BFS parent in the ball), instead
            # of materialising the radius-(r+1) reach that
            # ``(reach @ A) ∘ reach`` would build just to mask it away.
            counts = _entry_in_set_counts(np, reach, indptr, idx)
            in_ball = sparse.csr_matrix(
                (counts, reach.indices, reach.indptr), shape=reach.shape
            )
            bounds = reach.indptr
            cumulative = np.concatenate(([0], np.cumsum(counts, dtype=np.int64)))
            twice_edges = cumulative[bounds[1:]] - cumulative[bounds[:-1]]
            ball_sizes = np.diff(bounds)
            keep = (ball_sizes >= 4) & (twice_edges >= 2 * ball_sizes)
            candidates = np.flatnonzero(keep) + start
            if not len(candidates):
                continue
            yield (np, candidates, in_ball[keep])

    return blocks()


class DCCScratch:
    """Reusable O(n) scratch for :func:`detect_dccs` sweeps.

    One allocation of the byte mask, the Hopcroft–Tarjan disc/low arrays
    and the active-membership mask serves *every* ``detect_dccs`` call on
    graphs of the same node count — the per-layer/per-component call
    sites (``repro.core.small_components``) used to pay a fresh
    ``O(n)`` allocation per invocation just to look at a 10-node
    component.  All arrays are returned to their zeroed state after each
    call, so sharing is safe.
    """

    __slots__ = ("n", "mask", "scratch", "active_mask")

    def __init__(self, n: int):
        self.n = n
        self.mask = bytearray(n)
        self.scratch = ([0] * n, [0] * n)
        self.active_mask = bytearray(n)


def _detect_in_waves(state: "_DetectState", np, candidates, balls) -> None:
    """Peel-and-select one yielded block in geometrically growing waves.

    A wave batch-peels the next chunk of *still-unselected* candidates
    (:func:`_batched_peel`), then runs selection on the surviving cores
    in ascending node order.  Selection adoption marks whole blocks as
    selected, so later waves skip their members before paying any peel
    work — the exact pruning the sequential path gets for free, while
    each wave stays a batched array operation.  Output is identical to
    peel-then-select per node: selection still runs in ascending
    candidate order and re-checks ``selected_by`` first.
    """
    graph = state.graph
    offsets, indices = graph.csr()
    indptr = np.frombuffer(offsets, dtype=np.int32)
    idx = np.frombuffer(indices, dtype=np.int32)
    selected_by = state.selected_by
    cand_list = candidates.tolist()
    total = len(cand_list)
    position = 0
    wave = 256
    while position < total:
        batch: list[int] = []
        while position < total and len(batch) < wave:
            if selected_by[cand_list[position]] == -1:
                batch.append(position)
            position += 1
        if not batch:
            continue
        wave *= 2
        core = _batched_peel(
            np, balls[np.asarray(batch, dtype=np.int64)], indptr, idx
        )
        core_sizes = np.diff(core.indptr)
        centers = candidates[batch]
        # A candidate survives only if its own node is in its core
        # (checked patternwise, no per-row search) and >= 4 remain.
        row_of = np.repeat(np.arange(len(batch), dtype=np.int64), core_sizes)
        center_alive = np.zeros(len(batch), dtype=bool)
        center_alive[row_of[core.indices == centers[row_of]]] = True
        alive = center_alive & (core_sizes >= 4)
        if not alive.any():
            continue
        c_ptr = core.indptr.tolist()
        c_idx = core.indices.tolist()
        for i in np.flatnonzero(alive).tolist():
            v = cand_list[batch[i]]
            if selected_by[v] != -1:
                continue
            _select_blocks(
                state, v, c_idx[c_ptr[i] : c_ptr[i + 1]], mask_set=False
            )


def _batched_peel(np, core, indptr, idx):
    """2-core peel of every row of ``core`` at once.

    ``core`` is a CSR matrix whose row ``i`` holds the ball members of
    candidate ``i`` with their in-ball degrees as data.  Each round drops
    every degree-<= 1 entry, then recounts surviving degrees with an
    SDDMM-style gather: expand each surviving member's G-neighbour row
    (``indptr``/``idx`` are G's CSR buffers) and test membership against
    a dense per-row-chunk bitmap.  Unlike a sparse ``membership @ A``
    product this never materialises the radius-(r+1) reach of the
    survivors — the work per round is O(Σ deg over surviving entries),
    which is what keeps large detection radii from regressing.  The
    fixpoint is the unique 2-core of each ball, identical to the
    sequential per-ball peel.
    """
    while True:
        weak = core.data < 2
        if not weak.any():
            return core
        core.data[weak] = 0
        core.eliminate_zeros()
        if core.nnz == 0:
            return core
        core.data[:] = _entry_in_set_counts(np, core, indptr, idx)


def _entry_in_set_counts(np, matrix, indptr, idx):
    """Per-entry count of G-neighbours inside the entry's own row.

    For every nonzero ``(i, w)`` of the CSR ``matrix``, counts
    ``|N_G(w) ∩ row_i|`` (``indptr``/``idx`` are G's CSR buffers) — the
    SDDMM-style kernel behind both the in-ball degree computation and
    every peel round.  Work is O(Σ deg over entries): each entry's
    neighbour row is gathered and tested against a dense per-row-chunk
    membership bitmap; nothing outside the existing pattern is ever
    materialised.
    """
    k, n = matrix.shape
    counts = np.empty(matrix.nnz, dtype=np.int32)
    row_lens = np.diff(matrix.indptr)
    chunk = max(1, 16_000_000 // max(1, n))  # dense bitmap budget ~16MB
    dense = np.zeros(min(chunk, k) * n, dtype=bool)  # flat-indexed bitmap
    for row0 in range(0, k, chunk):
        row1 = min(k, row0 + chunk)
        lo, hi = int(matrix.indptr[row0]), int(matrix.indptr[row1])
        if lo == hi:
            continue
        rows = np.repeat(
            np.arange(row1 - row0, dtype=np.int32), row_lens[row0:row1]
        )
        cols = matrix.indices[lo:hi]
        cells = rows * np.int32(n) + cols  # chunk*n stays under 2^31
        dense[cells] = True
        starts = indptr[cols]
        deg = indptr[cols + 1] - starts
        total = int(deg.sum(dtype=np.int64))
        # int32 positions are the fast path; a chunk whose summed degrees
        # exceed int32 (possible at huge Δ: entries/chunk × Δ) must widen
        # or the cumsum/arange below would wrap and gather garbage.
        postype = np.int32 if total < 2**31 - 1 else np.int64
        bounds = np.empty(len(deg) + 1, dtype=postype)
        bounds[0] = 0
        np.cumsum(deg, dtype=postype, out=bounds[1:])
        # One fused repeat carries both per-entry offsets: the shift from
        # expansion position to G's idx buffer, and the entry's dense-row
        # base for the membership gather.
        per_entry = np.repeat(
            np.stack(
                (starts - bounds[:-1], (rows * np.int32(n)).astype(postype))
            ),
            deg,
            axis=1,
        )
        expansion = np.arange(total, dtype=postype)
        alive = dense[per_entry[1] + idx[expansion + per_entry[0]]]
        cumulative = np.empty(total + 1, dtype=postype)
        cumulative[0] = 0
        np.cumsum(alive, dtype=postype, out=cumulative[1:])
        counts[lo:hi] = cumulative[bounds[1:]] - cumulative[bounds[:-1]]
        dense[cells] = False
    return counts


def detect_dccs(
    graph: Graph,
    radius: int,
    active: set[int] | None = None,
    ledger: RoundLedger | None = None,
    scratch: DCCScratch | None = None,
) -> DCCDetection:
    """Phase (1): per-node DCC selection at detection radius ``radius``.

    Every active node whose radius-``radius`` ball (within the active set)
    contains a non-clique / non-odd-cycle block through it selects that
    block.  Selections are deduplicated: nodes choosing the same block
    share one virtual node, mirroring the paper's "subgraphs sharing a
    vertex are adjacent" semantics with fewer virtual nodes.

    ``scratch`` may carry a :class:`DCCScratch` of matching ``n`` reused
    across calls (the layered/per-component pipelines call this once per
    small component; without sharing, every call pays O(n) allocations).
    """
    ledger = ledger if ledger is not None else RoundLedger()
    ledger.charge(radius)
    detection = DCCDetection(selected_by=[-1] * graph.n, rounds=radius)
    state = _DetectState(graph, detection, scratch)
    if active is None:
        vectorized = _vectorized_ball_blocks(graph, radius)
        if vectorized is not None:
            for np, candidates, balls in vectorized:
                _detect_in_waves(state, np, candidates, balls)
            return detection
        nodes: Iterable[int] = range(graph.n)
        allowed = None
    else:
        nodes = sorted(set(active))
        allowed = state.active_mask
        for v in nodes:
            allowed[v] = 1
    # Pure-Python fallback: per-node ball collection and counting, with a
    # specialised frontier expansion over the reusable byte masks (no
    # dict/deque/predicate call), visiting nodes in bfs_ball level order.
    adj = graph.adj
    selected_by = state.selected_by
    mask = state.mask
    for v in nodes:
        if selected_by[v] != -1:
            continue
        mask[v] = 1
        ball = [v]
        frontier = [v]
        if allowed is None:
            for _ in range(radius):
                nxt = []
                for u in frontier:
                    for w in adj[u]:
                        if not mask[w]:
                            mask[w] = 1
                            nxt.append(w)
                ball.extend(nxt)
                frontier = nxt
        else:
            for _ in range(radius):
                nxt = []
                for u in frontier:
                    for w in adj[u]:
                        if allowed[w] and not mask[w]:
                            mask[w] = 1
                            nxt.append(w)
                ball.extend(nxt)
                frontier = nxt
        if len(ball) < 4:
            for u in ball:
                mask[u] = 0
            continue
        # Acyclicity test on the ball: count in-ball edge endpoints (and
        # record per-node in-ball degrees for the 2-core peel); a tree has
        # < len(ball) edges and cannot host a 2-connected subgraph.
        twice_edges = 0
        degs = []
        for u in ball:
            d = 0
            for w in adj[u]:
                if mask[w]:
                    d += 1
            degs.append(d)
            twice_edges += d
        for u in ball:
            mask[u] = 0
        if twice_edges < 2 * len(ball):
            continue  # the ball is a tree: no 2-connected subgraph
        _select_from_core(state, v, ball, degs)
    if allowed is not None:
        for v in nodes:
            allowed[v] = 0
    return detection


class _DetectState:
    """Per-sweep state (dedup, adoption) over a reusable :class:`DCCScratch`."""

    __slots__ = (
        "graph", "detection", "selected_by", "mask", "scratch",
        "active_mask", "index_of", "core_blocks",
    )

    def __init__(
        self, graph: Graph, detection: DCCDetection, shared: DCCScratch | None
    ):
        if shared is None:
            shared = DCCScratch(graph.n)
        elif shared.n != graph.n:
            raise ValueError(
                f"DCCScratch is sized for n={shared.n}, graph has n={graph.n}"
            )
        self.graph = graph
        self.detection = detection
        self.selected_by = detection.selected_by
        self.mask = shared.mask
        self.scratch = shared.scratch
        self.active_mask = shared.active_mask
        self.index_of: dict[tuple[int, ...], int] = {}
        # Block decompositions per distinct (canonicalised) core: on
        # locally-tree-like graphs the nodes of one cycle cluster all
        # peel to the *same* core, so the Hopcroft–Tarjan walk and the
        # clique/odd-cycle verdicts run once per core, not once per node.
        self.core_blocks: dict[tuple[int, ...], list] = {}


def _select_from_core(
    state: _DetectState, v: int, members: list[int], degrees: list[int]
) -> None:
    """Peel ``members`` (with in-ball ``degrees``) to the 2-core and let
    ``v`` select its first qualifying block there.

    Every 2-connected block lives inside the 2-core of the ball, so peeling
    degree-<=1 nodes first shrinks the Hopcroft–Tarjan walk from the whole
    ball (~Δ^{r+1} nodes) to the usually-tiny cycle-carrying core; ``v``
    being peeled proves no block contains it.  The set of qualifying blocks
    is exactly the full-ball set, and this sequential peel computes the
    same (unique) 2-core as the batched sparse peel of
    :func:`_vectorized_ball_blocks` (both feed :func:`_select_blocks`);
    when a node lies in *several* qualifying blocks, the discovery order —
    hence which valid DCC it selects — can differ from the pre-peel
    implementation, whose DFS also walked the peeled pendant trees.  Any
    qualifying block is a correct selection per the paper's phase (1).
    """
    adj = state.graph.adj
    mask = state.mask
    deg = state.scratch[0]  # shares the blocks_through disc scratch (zeroed)
    stack = []
    for pos, u in enumerate(members):
        mask[u] = 1
        d = degrees[pos]
        deg[u] = d
        if d <= 1:
            stack.append(u)
    alive = len(members)
    while stack:
        u = stack.pop()
        if not mask[u]:
            continue
        mask[u] = 0
        alive -= 1
        for w in adj[u]:
            if mask[w]:
                dw = deg[w] - 1
                deg[w] = dw
                if dw == 1:
                    stack.append(w)
    if alive < 4 or not mask[v]:
        for u in members:
            mask[u] = 0
            deg[u] = 0
        return
    core = [u for u in members if mask[u]]
    for u in members:
        deg[u] = 0
    _select_blocks(state, v, core, mask_set=True)


def _select_blocks(
    state: _DetectState, v: int, core: list[int], mask_set: bool
) -> None:
    """Let ``v`` select its first qualifying block inside ``core``.

    The full block decomposition of the core (plus each block's
    clique/odd-cycle verdict) is memoised per distinct core under its
    sorted node tuple — ``blocks_through(v)`` equals the full list
    filtered to blocks containing ``v``, in the same discovery order, so
    every node of a shared core selects identically to a private walk.
    ``mask_set`` says whether ``state.mask`` already has the core bits
    set (the sequential peel leaves it that way); the mask is always
    clear on return.
    """
    graph = state.graph
    mask = state.mask
    key = tuple(sorted(core))
    cached = state.core_blocks.get(key)
    if cached is None:
        if not mask_set:
            for u in core:
                mask[u] = 1
        # All blocks of the core, in original labels; membership edges of
        # a node-induced subgraph coincide with G's edges, so the clique /
        # odd-cycle classification uses G's cached adjacency sets.
        cached = []
        for block in blocks_through(
            graph, None, core, mask=mask, scratch=state.scratch
        ):
            qualifies = (
                len(block) >= 4
                and not is_clique_nodes(graph, block)
                and not is_odd_cycle_nodes(graph, block)
            )
            cached.append((qualifies, set(block), tuple(block)))
        state.core_blocks[key] = cached
        for u in core:
            mask[u] = 0
    elif mask_set:
        for u in core:
            mask[u] = 0
    chosen: tuple[int, ...] | None = None
    for qualifies, block_set, block in cached:
        if qualifies and v in block_set:
            chosen = block
            break
    if chosen is None:
        return
    detection = state.detection
    dcc_id = state.index_of.get(chosen)
    if dcc_id is None:
        dcc_id = len(detection.dccs)
        detection.dccs.append(chosen)
        state.index_of[chosen] = dcc_id
    # Every member of the block that has not selected yet adopts it; this
    # matches "each node selects one such subgraph" while keeping the
    # virtual graph small.
    selected_by = state.selected_by
    for u in chosen:
        if selected_by[u] == -1:
            selected_by[u] = dcc_id
        detection.nodes_in_dccs.add(u)


def virtual_graph_ruling_set(
    graph: Graph,
    dccs: list[tuple[int, ...]],
    rounds_per_virtual: int,
    ledger: RoundLedger | None = None,
    rng: random.Random | None = None,
    method: str = "luby",
    max_iterations: int | None = None,
) -> tuple[list[int], int]:
    """Phase (2): independent set of G_DCC covering all DCCs (a (2, β)
    ruling set run to maximality, so β is the virtual diameter bound 1).

    Virtual Luby/Ghaffari: per iteration every live DCC draws a priority;
    a DCC joins if its priority beats every DCC it conflicts with
    (sharing a node or joined by a G-edge); joiners knock out their
    conflicting DCCs.  Each iteration is charged ``2 * rounds_per_virtual``
    real rounds (priority aggregation over the DCC's diameter + one
    G-round + the symmetric removal flood).

    Returns ``(chosen_dcc_indices, iterations)``.
    """
    ledger = ledger if ledger is not None else RoundLedger()
    rng = rng if rng is not None else random.Random(0)
    num = len(dccs)
    if num == 0:
        return [], 0
    # owners_of[v]: DCC indices containing v (almost always 0 or 1 entries;
    # the flat list avoids dict probes in the edge scan below).
    owners_of: list[list[int] | None] = [None] * graph.n
    for idx, dcc in enumerate(dccs):
        for v in dcc:
            cell = owners_of[v]
            if cell is None:
                owners_of[v] = [idx]
            else:
                cell.append(idx)
    # Conflict adjacency between DCC indices (share node or G-edge).
    conflicts: list[set[int]] = [set() for _ in range(num)]
    adj = graph.adj
    for v, owners in enumerate(owners_of):
        if owners is None:
            continue
        for i, a in enumerate(owners):
            for b in owners[i + 1:]:
                conflicts[a].add(b)
                conflicts[b].add(a)
        for u in adj[v]:
            if u < v:
                continue  # each edge contributes once; conflicts are symmetric
            others = owners_of[u]
            if others is None:
                continue
            for b in others:
                for a in owners:
                    if a != b:
                        conflicts[a].add(b)
                        conflicts[b].add(a)

    live = set(range(num))
    chosen: list[int] = []
    iterations = 0
    desire = {i: 0.5 for i in live} if method == "ghaffari" else None
    while live and (max_iterations is None or iterations < max_iterations):
        iterations += 1
        ledger.charge(2 * rounds_per_virtual)
        if desire is None:
            contenders = live
        else:
            contenders = {i for i in live if rng.random() < desire[i]}
            for i in live:
                load = sum(desire[j] for j in conflicts[i] if j in live)
                desire[i] = desire[i] / 2 if load >= 2.0 else min(2 * desire[i], 0.5)
        priority = {i: (rng.random(), i) for i in contenders}
        joiners = [
            i
            for i in contenders
            if all(
                priority[i] > priority[j]
                for j in conflicts[i]
                if j in contenders
            )
        ]
        removed = set(joiners)
        for i in joiners:
            chosen.append(i)
            removed |= conflicts[i] & live
        live -= removed
    if live:
        # Deterministic finisher for iteration-capped runs: admit the
        # remaining non-conflicting stragglers greedily by index (each is
        # dominated by a chosen DCC otherwise).
        chosen_set = set(chosen)
        for i in sorted(live):
            if not (conflicts[i] & chosen_set):
                chosen.append(i)
                chosen_set.add(i)
        ledger.charge(rounds_per_virtual)
    return sorted(chosen), iterations
