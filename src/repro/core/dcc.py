"""Degree-choosable component detection and the virtual graph G_DCC.

Phase (1) of the randomized algorithms: every node contained in a
degree-choosable subgraph of radius <= r selects one such subgraph; the
selected subgraphs form the virtual graph G_DCC (two subgraphs adjacent if
they share a vertex or are joined by a G-edge), on which phase (2)
computes a (2, β) ruling set whose components become the base layer B0.

**Detection** (DESIGN.md §4.6): node v collects its radius-r ball (r LOCAL
rounds), takes the block decomposition of the induced subgraph, and selects
the first block containing v that is neither a clique nor an odd cycle.
Such a block is 2-connected, hence a DCC (Definition 9), and lives inside
the ball so its radius around v is <= 2r.  Conversely any DCC of radius
<= r/2 around v lies inside the ball and forces the block containing it to
be a DCC, so detection at radius r is complete for DCCs of radius <= r/2.
A ball that induces a tree (the overwhelmingly common case in the
locally-tree-like workloads) is skipped without a block decomposition; the
tree test counts in-ball edges through a reusable byte mask over the CSR
adjacency, so no induced subgraph is materialised unless the ball actually
contains a cycle.  This per-node loop is the single hottest path of the
randomized pipeline — see the "Performance notes" section of ROADMAP.md.

**Virtual MIS** — the ruling set of G_DCC is computed by Luby/Ghaffari
rounds *simulated through member nodes*: each live DCC draws a priority,
every member node learns the max priority of the DCCs it belongs to, one
G-round spreads these to neighbours, and each DCC aggregates over its
members — exactly adjacency "share a vertex or a G-edge".  One virtual
round costs O(r) real rounds, as the paper states.
"""

from __future__ import annotations

import random
from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.graphs.bfs import bfs_ball
from repro.graphs.blocks import blocks_through
from repro.graphs.graph import Graph
from repro.graphs.properties import is_clique_nodes, is_odd_cycle_nodes
from repro.local.rounds import RoundLedger

__all__ = ["DCCDetection", "detect_dccs", "virtual_graph_ruling_set"]


@dataclass
class DCCDetection:
    """Output of phase (1).

    ``dccs`` lists the distinct selected DCCs (each a sorted node tuple);
    ``selected_by[v]`` is the index (into ``dccs``) of the DCC node v
    selected, or -1; ``nodes_in_dccs`` is the union of all selected DCCs.
    ``rounds`` is the LOCAL cost charged (ball collection).
    """

    dccs: list[tuple[int, ...]] = field(default_factory=list)
    selected_by: list[int] = field(default_factory=list)
    nodes_in_dccs: set[int] = field(default_factory=set)
    rounds: int = 0


def _vectorized_ball_blocks(graph: Graph, radius: int):
    """Blockwise vectorized ball structure for DCC detection (or ``None``).

    Yields ``(start, deg_indptr, deg_indices, deg_data, skip)`` tuples
    covering node ranges ``[start, start+len(skip))``:

    * ``deg_indices[deg_indptr[i]:deg_indptr[i+1]]`` — the radius-``r``
      ball members of node ``start+i`` (rows of ``((A+I)^r A) ∘ (A+I)^r``;
      every ball member has an in-ball neighbour, so the product pattern
      *is* the ball), with ``deg_data`` holding each member's degree
      inside the ball — the 2-core peeling input;
    * ``skip[i]`` — True iff the ball is too small (< 4 nodes) or induces a
      tree (``Σ deg < 2·|ball|``), the cheap-reject conditions.

    Everything is sparse-matrix arithmetic in C — the Python detection loop
    only reads rows for the non-skipped minority.  Returns ``None`` when
    scipy is unavailable or the graph is tiny (the caller then falls back
    to the per-ball counting pass).
    """
    if graph.n < 256 or graph.num_edges == 0:
        return None
    try:
        import numpy as np
        from scipy import sparse
    except Exception:  # pragma: no cover - scipy-free environments
        return None
    offsets, indices = graph.csr()
    n = graph.n
    indptr = np.frombuffer(offsets, dtype=np.int32)
    idx = np.frombuffer(indices, dtype=np.int32)
    adjacency = sparse.csr_matrix(
        (np.ones(len(idx), dtype=np.int32), idx, indptr), shape=(n, n)
    )
    # Block the rows so the intermediates stay bounded (~Δ^{r+1} nonzeros
    # per row) even on million-edge inputs.
    delta = max(1, graph.max_degree())
    per_row = min(n, delta ** (radius + 1) + 1)
    step = max(1024, min(n, 4_000_000 // per_row))
    identity = sparse.identity(n, dtype=np.int32, format="csr")

    def blocks():
        for start in range(0, n, step):
            rows = slice(start, min(n, start + step))
            reach = adjacency[rows] + identity[rows]
            reach.data[:] = 1
            for _ in range(radius - 1):
                reach = reach @ adjacency + reach
                reach.data[:] = 1
            # No sort_indices anywhere: member order is irrelevant (the
            # peel is order-free and blocks_through sorts its own roots).
            in_ball = (reach @ adjacency).multiply(reach).tocsr()
            twice_edges = np.asarray(in_ball.sum(axis=1)).ravel()
            ball_sizes = np.diff(reach.indptr)
            skip = (ball_sizes < 4) | (twice_edges < 2 * ball_sizes)
            yield (start, in_ball.indptr, in_ball.indices, in_ball.data, skip)

    return blocks()


def detect_dccs(
    graph: Graph,
    radius: int,
    active: set[int] | None = None,
    ledger: RoundLedger | None = None,
) -> DCCDetection:
    """Phase (1): per-node DCC selection at detection radius ``radius``.

    Every active node whose radius-``radius`` ball (within the active set)
    contains a non-clique / non-odd-cycle block through it selects that
    block.  Selections are deduplicated: nodes choosing the same block
    share one virtual node, mirroring the paper's "subgraphs sharing a
    vertex are adjacent" semantics with fewer virtual nodes.
    """
    ledger = ledger if ledger is not None else RoundLedger()
    ledger.charge(radius)
    detection = DCCDetection(selected_by=[-1] * graph.n, rounds=radius)
    state = _DetectState(graph, detection)
    if active is None:
        vectorized = _vectorized_ball_blocks(graph, radius)
        if vectorized is not None:
            selected_by = state.selected_by
            for start, d_ptr, d_idx, d_data, skip in vectorized:
                d_ptr = d_ptr.tolist()
                d_idx = d_idx.tolist()
                d_data = d_data.tolist()
                for i, skipped in enumerate(skip.tolist()):
                    v = start + i
                    if skipped or selected_by[v] != -1:
                        continue
                    lo, hi = d_ptr[i], d_ptr[i + 1]
                    _select_from_core(state, v, d_idx[lo:hi], d_data[lo:hi])
            return detection
        nodes: Iterable[int] = range(graph.n)
        allowed = None
    else:
        nodes = sorted(set(active))
        allowed = set(active)
    # Pure-Python fallback: per-node ball collection and counting.
    adj = graph.adj
    selected_by = state.selected_by
    for v in nodes:
        if selected_by[v] != -1:
            continue
        if allowed is None:
            # Specialised ball collection: frontier expansion with the
            # reusable byte mask (no dict/deque), visiting nodes in the
            # same level order as bfs_ball.
            mask = state.mask
            mask[v] = 1
            ball = [v]
            frontier = [v]
            for _ in range(radius):
                nxt = []
                for u in frontier:
                    for w in adj[u]:
                        if not mask[w]:
                            mask[w] = 1
                            nxt.append(w)
                ball.extend(nxt)
                frontier = nxt
        else:
            ball = bfs_ball(graph, v, radius, allowed=allowed)
            mask = state.mask
            for u in ball:
                mask[u] = 1
        if len(ball) < 4:
            for u in ball:
                mask[u] = 0
            continue
        # Acyclicity test on the ball: count in-ball edge endpoints (and
        # record per-node in-ball degrees for the 2-core peel); a tree has
        # < len(ball) edges and cannot host a 2-connected subgraph.
        twice_edges = 0
        degs = []
        for u in ball:
            d = 0
            for w in adj[u]:
                if mask[w]:
                    d += 1
            degs.append(d)
            twice_edges += d
        for u in ball:
            mask[u] = 0
        if twice_edges < 2 * len(ball):
            continue  # the ball is a tree: no 2-connected subgraph
        _select_from_core(state, v, ball, degs)
    return detection


class _DetectState:
    """Shared scratch of one detection sweep (masks, dedup, adoption)."""

    __slots__ = ("graph", "detection", "selected_by", "mask", "scratch", "index_of")

    def __init__(self, graph: Graph, detection: DCCDetection):
        self.graph = graph
        self.detection = detection
        self.selected_by = detection.selected_by
        self.mask = bytearray(graph.n)
        self.scratch = ([0] * graph.n, [0] * graph.n)
        self.index_of: dict[tuple[int, ...], int] = {}


def _select_from_core(
    state: _DetectState, v: int, members: list[int], degrees: list[int]
) -> None:
    """Peel ``members`` (with in-ball ``degrees``) to the 2-core and let
    ``v`` select its first qualifying block there.

    Every 2-connected block lives inside the 2-core of the ball, so peeling
    degree-<=1 nodes first shrinks the Hopcroft–Tarjan walk from the whole
    ball (~Δ^{r+1} nodes) to the usually-tiny cycle-carrying core; ``v``
    being peeled proves no block contains it.  The set of qualifying blocks
    is exactly the full-ball set, and the vectorized and pure-Python paths
    agree (both feed this function); when a node lies in *several*
    qualifying blocks, the discovery order — hence which valid DCC it
    selects — can differ from the pre-peel implementation, whose DFS also
    walked the peeled pendant trees.  Any qualifying block is a correct
    selection per the paper's phase (1).
    """
    graph = state.graph
    adj = graph.adj
    mask = state.mask
    deg = state.scratch[0]  # shares the blocks_through disc scratch (zeroed)
    stack = []
    for pos, u in enumerate(members):
        mask[u] = 1
        d = degrees[pos]
        deg[u] = d
        if d <= 1:
            stack.append(u)
    alive = len(members)
    while stack:
        u = stack.pop()
        if not mask[u]:
            continue
        mask[u] = 0
        alive -= 1
        for w in adj[u]:
            if mask[w]:
                dw = deg[w] - 1
                deg[w] = dw
                if dw == 1:
                    stack.append(w)
    if alive < 4 or not mask[v]:
        for u in members:
            mask[u] = 0
            deg[u] = 0
        return
    core = [u for u in members if mask[u]]
    for u in members:
        deg[u] = 0
    chosen: tuple[int, ...] | None = None
    # Blocks through v inside the core, in original labels; membership
    # edges of a node-induced subgraph coincide with G's edges, so the
    # clique / odd-cycle classification uses G's cached adjacency sets.
    for block in blocks_through(graph, v, core, mask=mask, scratch=state.scratch):
        if len(block) < 4:
            continue
        if is_clique_nodes(graph, block) or is_odd_cycle_nodes(graph, block):
            continue
        chosen = tuple(block)
        break
    for u in core:
        mask[u] = 0
    if chosen is None:
        return
    detection = state.detection
    dcc_id = state.index_of.get(chosen)
    if dcc_id is None:
        dcc_id = len(detection.dccs)
        detection.dccs.append(chosen)
        state.index_of[chosen] = dcc_id
    # Every member of the block that has not selected yet adopts it; this
    # matches "each node selects one such subgraph" while keeping the
    # virtual graph small.
    selected_by = state.selected_by
    for u in chosen:
        if selected_by[u] == -1:
            selected_by[u] = dcc_id
        detection.nodes_in_dccs.add(u)


def virtual_graph_ruling_set(
    graph: Graph,
    dccs: list[tuple[int, ...]],
    rounds_per_virtual: int,
    ledger: RoundLedger | None = None,
    rng: random.Random | None = None,
    method: str = "luby",
    max_iterations: int | None = None,
) -> tuple[list[int], int]:
    """Phase (2): independent set of G_DCC covering all DCCs (a (2, β)
    ruling set run to maximality, so β is the virtual diameter bound 1).

    Virtual Luby/Ghaffari: per iteration every live DCC draws a priority;
    a DCC joins if its priority beats every DCC it conflicts with
    (sharing a node or joined by a G-edge); joiners knock out their
    conflicting DCCs.  Each iteration is charged ``2 * rounds_per_virtual``
    real rounds (priority aggregation over the DCC's diameter + one
    G-round + the symmetric removal flood).

    Returns ``(chosen_dcc_indices, iterations)``.
    """
    ledger = ledger if ledger is not None else RoundLedger()
    rng = rng if rng is not None else random.Random(0)
    num = len(dccs)
    if num == 0:
        return [], 0
    # owners_of[v]: DCC indices containing v (almost always 0 or 1 entries;
    # the flat list avoids dict probes in the edge scan below).
    owners_of: list[list[int] | None] = [None] * graph.n
    for idx, dcc in enumerate(dccs):
        for v in dcc:
            cell = owners_of[v]
            if cell is None:
                owners_of[v] = [idx]
            else:
                cell.append(idx)
    # Conflict adjacency between DCC indices (share node or G-edge).
    conflicts: list[set[int]] = [set() for _ in range(num)]
    adj = graph.adj
    for v, owners in enumerate(owners_of):
        if owners is None:
            continue
        for i, a in enumerate(owners):
            for b in owners[i + 1:]:
                conflicts[a].add(b)
                conflicts[b].add(a)
        for u in adj[v]:
            if u < v:
                continue  # each edge contributes once; conflicts are symmetric
            others = owners_of[u]
            if others is None:
                continue
            for b in others:
                for a in owners:
                    if a != b:
                        conflicts[a].add(b)
                        conflicts[b].add(a)

    live = set(range(num))
    chosen: list[int] = []
    iterations = 0
    desire = {i: 0.5 for i in live} if method == "ghaffari" else None
    while live and (max_iterations is None or iterations < max_iterations):
        iterations += 1
        ledger.charge(2 * rounds_per_virtual)
        if desire is None:
            contenders = live
        else:
            contenders = {i for i in live if rng.random() < desire[i]}
            for i in live:
                load = sum(desire[j] for j in conflicts[i] if j in live)
                desire[i] = desire[i] / 2 if load >= 2.0 else min(2 * desire[i], 0.5)
        priority = {i: (rng.random(), i) for i in contenders}
        joiners = [
            i
            for i in contenders
            if all(
                priority[i] > priority[j]
                for j in conflicts[i]
                if j in contenders
            )
        ]
        removed = set(joiners)
        for i in joiners:
            chosen.append(i)
            removed |= conflicts[i] & live
        live -= removed
    if live:
        # Deterministic finisher for iteration-capped runs: admit the
        # remaining non-conflicting stragglers greedily by index (each is
        # dominated by a chosen DCC otherwise).
        chosen_set = set(chosen)
        for i in sorted(live):
            if not (conflicts[i] & chosen_set):
                chosen.append(i)
                chosen_set.add(i)
        ledger.charge(rounds_per_virtual)
    return sorted(chosen), iterations
