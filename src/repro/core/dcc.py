"""Degree-choosable component detection and the virtual graph G_DCC.

Phase (1) of the randomized algorithms: every node contained in a
degree-choosable subgraph of radius <= r selects one such subgraph; the
selected subgraphs form the virtual graph G_DCC (two subgraphs adjacent if
they share a vertex or are joined by a G-edge), on which phase (2)
computes a (2, β) ruling set whose components become the base layer B0.

**Detection** (DESIGN.md §4.6): node v collects its radius-r ball (r LOCAL
rounds), takes the block decomposition of the induced subgraph, and selects
the first block containing v that is neither a clique nor an odd cycle.
Such a block is 2-connected, hence a DCC (Definition 9), and lives inside
the ball so its radius around v is <= 2r.  Conversely any DCC of radius
<= r/2 around v lies inside the ball and forces the block containing it to
be a DCC, so detection at radius r is complete for DCCs of radius <= r/2.
A ball that induces a tree (the overwhelmingly common case in the
locally-tree-like workloads) is skipped without a block decomposition.

**Virtual MIS** — the ruling set of G_DCC is computed by Luby/Ghaffari
rounds *simulated through member nodes*: each live DCC draws a priority,
every member node learns the max priority of the DCCs it belongs to, one
G-round spreads these to neighbours, and each DCC aggregates over its
members — exactly adjacency "share a vertex or a G-edge".  One virtual
round costs O(r) real rounds, as the paper states.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.graphs.bfs import bfs_ball
from repro.graphs.blocks import biconnected_components
from repro.graphs.graph import Graph
from repro.graphs.properties import is_clique_nodes, is_odd_cycle_nodes
from repro.local.rounds import RoundLedger

__all__ = ["DCCDetection", "detect_dccs", "virtual_graph_ruling_set"]


@dataclass
class DCCDetection:
    """Output of phase (1).

    ``dccs`` lists the distinct selected DCCs (each a sorted node tuple);
    ``selected_by[v]`` is the index (into ``dccs``) of the DCC node v
    selected, or -1; ``nodes_in_dccs`` is the union of all selected DCCs.
    ``rounds`` is the LOCAL cost charged (ball collection).
    """

    dccs: list[tuple[int, ...]] = field(default_factory=list)
    selected_by: list[int] = field(default_factory=list)
    nodes_in_dccs: set[int] = field(default_factory=set)
    rounds: int = 0


def detect_dccs(
    graph: Graph,
    radius: int,
    active: set[int] | None = None,
    ledger: RoundLedger | None = None,
) -> DCCDetection:
    """Phase (1): per-node DCC selection at detection radius ``radius``.

    Every active node whose radius-``radius`` ball (within the active set)
    contains a non-clique / non-odd-cycle block through it selects that
    block.  Selections are deduplicated: nodes choosing the same block
    share one virtual node, mirroring the paper's "subgraphs sharing a
    vertex are adjacent" semantics with fewer virtual nodes.
    """
    ledger = ledger if ledger is not None else RoundLedger()
    active_set = set(range(graph.n)) if active is None else set(active)
    ledger.charge(radius)
    detection = DCCDetection(selected_by=[-1] * graph.n, rounds=radius)
    index_of: dict[tuple[int, ...], int] = {}
    for v in sorted(active_set):
        if detection.selected_by[v] != -1:
            continue
        ball = bfs_ball(graph, v, radius, allowed=active_set)
        if len(ball) < 4:
            continue
        sub, originals = graph.subgraph(ball)
        if sub.num_edges < sub.n:
            continue  # the ball is a tree: no 2-connected subgraph at all
        decomposition = biconnected_components(sub)
        local_index = originals.index(v) if v in originals else -1
        chosen: tuple[int, ...] | None = None
        for block_id in decomposition.blocks_of_node[local_index]:
            block = decomposition.blocks[block_id]
            if len(block) < 4:
                continue
            if is_clique_nodes(sub, block) or is_odd_cycle_nodes(sub, block):
                continue
            chosen = tuple(sorted(originals[i] for i in block))
            break
        if chosen is None:
            continue
        dcc_id = index_of.get(chosen)
        if dcc_id is None:
            dcc_id = len(detection.dccs)
            detection.dccs.append(chosen)
            index_of[chosen] = dcc_id
        # Every member of the block that has not selected yet adopts it;
        # this matches "each node selects one such subgraph" while keeping
        # the virtual graph small.
        for u in chosen:
            if detection.selected_by[u] == -1:
                detection.selected_by[u] = dcc_id
            detection.nodes_in_dccs.add(u)
    return detection


def virtual_graph_ruling_set(
    graph: Graph,
    dccs: list[tuple[int, ...]],
    rounds_per_virtual: int,
    ledger: RoundLedger | None = None,
    rng: random.Random | None = None,
    method: str = "luby",
    max_iterations: int | None = None,
) -> tuple[list[int], int]:
    """Phase (2): independent set of G_DCC covering all DCCs (a (2, β)
    ruling set run to maximality, so β is the virtual diameter bound 1).

    Virtual Luby/Ghaffari: per iteration every live DCC draws a priority;
    a DCC joins if its priority beats every DCC it conflicts with
    (sharing a node or joined by a G-edge); joiners knock out their
    conflicting DCCs.  Each iteration is charged ``2 * rounds_per_virtual``
    real rounds (priority aggregation over the DCC's diameter + one
    G-round + the symmetric removal flood).

    Returns ``(chosen_dcc_indices, iterations)``.
    """
    ledger = ledger if ledger is not None else RoundLedger()
    rng = rng if rng is not None else random.Random(0)
    num = len(dccs)
    if num == 0:
        return [], 0
    membership: dict[int, list[int]] = {}
    for idx, dcc in enumerate(dccs):
        for v in dcc:
            membership.setdefault(v, []).append(idx)
    # Conflict adjacency between DCC indices (share node or G-edge).
    conflicts: list[set[int]] = [set() for _ in range(num)]
    for v, owners in membership.items():
        for i, a in enumerate(owners):
            for b in owners[i + 1:]:
                conflicts[a].add(b)
                conflicts[b].add(a)
    adj = graph.adj
    for v, owners in membership.items():
        for u in adj[v]:
            for b in membership.get(u, ()):
                for a in owners:
                    if a != b:
                        conflicts[a].add(b)
                        conflicts[b].add(a)

    live = set(range(num))
    chosen: list[int] = []
    iterations = 0
    desire = {i: 0.5 for i in live} if method == "ghaffari" else None
    while live and (max_iterations is None or iterations < max_iterations):
        iterations += 1
        ledger.charge(2 * rounds_per_virtual)
        if desire is None:
            contenders = live
        else:
            contenders = {i for i in live if rng.random() < desire[i]}
            for i in live:
                load = sum(desire[j] for j in conflicts[i] if j in live)
                desire[i] = desire[i] / 2 if load >= 2.0 else min(2 * desire[i], 0.5)
        priority = {i: (rng.random(), i) for i in contenders}
        joiners = [
            i
            for i in contenders
            if all(
                priority[i] > priority[j]
                for j in conflicts[i]
                if j in contenders
            )
        ]
        removed = set(joiners)
        for i in joiners:
            chosen.append(i)
            removed |= conflicts[i] & live
        live -= removed
    if live:
        # Deterministic finisher for iteration-capped runs: admit the
        # remaining non-conflicting stragglers greedily by index (each is
        # dominated by a chosen DCC otherwise).
        chosen_set = set(chosen)
        for i in sorted(live):
            if not (conflicts[i] & chosen_set):
                chosen.append(i)
                chosen_set.add(i)
        ledger.charge(rounds_per_virtual)
    return sorted(chosen), iterations
