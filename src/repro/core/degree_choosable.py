"""Constructive degree-list coloring (Theorem 8, Erdős–Rubin–Taylor).

A *degree-list instance* assigns every node v a list with
|L(v)| >= deg(v).  Theorem 8 says such an instance on a connected graph is
always solvable unless the graph is a Gallai tree and every list is tight;
this module provides the constructive side, which the paper leans on in
three places:

* phase (9): Δ-coloring the selected degree-choosable components of the
  base layer B0 ("brute forcing each component" — we do it in polynomial
  time instead);
* phase (5) of Section 4.3: coloring the DCCs in layer D_0 of the small
  components;
* the distributed Brooks' theorem (Theorem 5): after the token walk
  reaches a DCC, the DCC is uncolored and recolored compatibly.

The algorithm (classic, following [ERT79] / Lovász's Brooks proof):

1. **Surplus** — if some v has |L(v)| > deg(v), color greedily in order of
   decreasing BFS distance from v (every other node still has its BFS
   parent uncolored when processed, v's surplus absorbs the final step).
2. **Block reduction** — with all lists tight, find a block B* that is a
   DCC (exists unless the graph is a Gallai tree); color everything
   outside B* farthest-first toward B*, then recurse on B* (whose lists
   stay degree-feasible).
3. **2-connected, tight lists**:
   a. unequal lists on an edge (u, w): color w with some c ∈ L(w)∖L(u),
      then farthest-first toward u; u ends with a spare color.
   b. equal lists everywhere ⇒ k-regular with k=|L|.  k=2 is a cycle
      (even: alternate; odd: infeasible).  For k >= 3 find the Brooks
      gadget: v with two non-adjacent neighbours a, b such that
      G−{a, b} is connected; color a, b identically and run
      farthest-first toward v — v sees at most deg−1 distinct colors.
4. A bounded backtracking search backs up the rare inputs outside the
   callers' guarantees (tiny Gallai-tree instances that happen to be
   feasible for their particular lists).

Raises :class:`InfeasibleListColoringError` when no coloring exists.
"""

from __future__ import annotations

from collections import deque

from repro.errors import InfeasibleListColoringError
from repro.graphs.blocks import biconnected_components
from repro.graphs.graph import Graph
from repro.graphs.properties import is_clique_nodes, is_odd_cycle_nodes

__all__ = ["degree_list_color", "backtracking_list_color"]


def degree_list_color(graph: Graph, lists: list[set[int]]) -> list[int]:
    """Solve a degree-list instance on a connected graph.

    Parameters
    ----------
    graph:
        Connected graph (nodes ``0..n-1``; callers relabel components).
    lists:
        ``lists[v]`` is the set of allowed colors; must satisfy
        ``len(lists[v]) >= graph.degree(v)``.

    Returns the color assignment (``result[v] ∈ lists[v]``) or raises
    :class:`InfeasibleListColoringError`.
    """
    n = graph.n
    if n == 0:
        return []
    for v in range(n):
        if len(lists[v]) < graph.degree(v):
            raise InfeasibleListColoringError(
                f"node {v}: {len(lists[v])} colors < degree {graph.degree(v)}"
            )
    colors = [0] * n
    _solve(graph, [set(lst) for lst in lists], colors, list(range(n)))
    _verify(graph, lists, colors)
    return colors


def _verify(graph: Graph, lists: list[set[int]], colors: list[int]) -> None:
    for v in range(graph.n):
        if colors[v] not in lists[v]:
            raise AssertionError(f"internal: node {v} colored outside its list")
    for u, v in graph.edges():
        if colors[u] == colors[v]:
            raise AssertionError(f"internal: edge ({u},{v}) monochromatic")


def _solve(graph: Graph, lists: list[set[int]], colors: list[int], nodes: list[int]) -> None:
    """Color ``nodes`` (a connected, currently uncolored node set), writing
    into ``colors``.

    All case analysis happens on *effective* lists — the caller-supplied
    list minus the colors of already-colored neighbours (block reduction
    and the Brooks walk both create such neighbours).  The degree-list
    precondition guarantees ``|eff(v)| >= degree_in(v)`` for every v in the
    set.  Recursion happens only through block reduction (depth = block
    tree depth).
    """
    node_set = set(nodes)
    degree_in = {v: sum(1 for u in graph.adj[v] if u in node_set) for v in nodes}
    eff = {v: _available(graph, lists, colors, v) for v in nodes}
    for v in nodes:
        if len(eff[v]) < degree_in[v]:
            raise InfeasibleListColoringError(
                f"node {v}: effective list {len(eff[v])} < inside-degree {degree_in[v]}"
            )

    # Case 0: singletons.
    if len(nodes) == 1:
        v = nodes[0]
        if not eff[v]:
            raise InfeasibleListColoringError(f"node {v} has an empty list")
        colors[v] = min(eff[v])
        return

    # Case 1: surplus node.
    for v in nodes:
        if len(eff[v]) > degree_in[v]:
            _greedy_toward(graph, lists, colors, node_set, root=v)
            return

    # All lists tight within the set.  Find a DCC block.
    sub, originals = graph.subgraph(nodes)
    decomposition = biconnected_components(sub)
    dcc_block: list[int] | None = None
    for block in decomposition.blocks:
        if not (
            is_clique_nodes(sub, block) or is_odd_cycle_nodes(sub, block)
        ):
            dcc_block = [originals[i] for i in block]
            break

    if dcc_block is None:
        # Gallai tree with tight lists: usually infeasible, but specific
        # list assignments can still work — bounded backtracking decides.
        result = backtracking_list_color(graph, lists, colors, nodes)
        if result is None:
            raise InfeasibleListColoringError(
                "Gallai tree with tight lists admits no coloring"
            )
        return

    if len(dcc_block) < len(nodes):
        # Case 2: block reduction — peel everything outside B* toward it.
        _greedy_toward_set(graph, lists, colors, node_set, target=set(dcc_block))
        _solve(graph, lists, colors, sorted(dcc_block))
        return

    # Case 3: 2-connected with tight lists.
    _solve_two_connected(graph, lists, colors, nodes, eff)


def _available(graph: Graph, lists: list[set[int]], colors: list[int], v: int) -> set[int]:
    """v's list minus the colors of its already-colored neighbours."""
    taken = {colors[u] for u in graph.adj[v] if colors[u] != 0}
    return lists[v] - taken


def _greedy_toward(
    graph: Graph,
    lists: list[set[int]],
    colors: list[int],
    node_set: set[int],
    root: int,
) -> None:
    """Greedy farthest-first toward ``root`` (surplus case 1)."""
    order = _bfs_order(graph, node_set, {root})
    for v in reversed(order):
        options = _available(graph, lists, colors, v)
        if not options:
            raise InfeasibleListColoringError(f"greedy ran out of colors at node {v}")
        colors[v] = min(options)


def _greedy_toward_set(
    graph: Graph,
    lists: list[set[int]],
    colors: list[int],
    node_set: set[int],
    target: set[int],
) -> None:
    """Color ``node_set - target`` farthest-first toward ``target``."""
    order = _bfs_order(graph, node_set, target)
    for v in reversed(order):
        if v in target:
            continue
        options = _available(graph, lists, colors, v)
        if not options:
            raise InfeasibleListColoringError(f"greedy ran out of colors at node {v}")
        colors[v] = min(options)


def _bfs_order(graph: Graph, node_set: set[int], sources: set[int]) -> list[int]:
    """Nodes of ``node_set`` in BFS order from ``sources`` (closest first).

    Reversing it yields the farthest-first greedy order in which every
    non-source node still has an uncolored neighbour strictly closer to
    the sources when its turn comes.
    """
    order = []
    seen = set()
    queue: deque[int] = deque()
    for s in sorted(sources):
        if s in node_set:
            seen.add(s)
            queue.append(s)
            order.append(s)
    while queue:
        u = queue.popleft()
        for w in graph.adj[u]:
            if w in node_set and w not in seen:
                seen.add(w)
                queue.append(w)
                order.append(w)
    if len(order) != len(node_set):
        raise AssertionError("node set was not connected to the sources")
    return order


def _solve_two_connected(
    graph: Graph,
    lists: list[set[int]],
    colors: list[int],
    nodes: list[int],
    eff: dict[int, set[int]],
) -> None:
    node_set = set(nodes)
    adj_sets = graph.adjacency_sets()

    # Case 3a: an edge with unequal effective lists.
    for u in nodes:
        for w in adj_sets[u]:
            if w in node_set and eff[w] - eff[u]:
                c = min(eff[w] - eff[u])
                colors[w] = c
                _greedy_toward(graph, lists, colors, node_set - {w}, root=u)
                return

    # Effective lists are all equal; the instance is k-regular inside the
    # set with k = |eff|.
    k = len(eff[nodes[0]])
    if k == 2:
        _color_even_cycle(graph, colors, nodes, sorted(eff[nodes[0]]))
        return

    # Clique on k+1 nodes with k colors is infeasible.
    if is_clique_nodes(graph, nodes):
        raise InfeasibleListColoringError("tight clique instance is infeasible")

    gadget = _find_brooks_gadget(graph, node_set, adj_sets)
    if gadget is None:
        # Should be impossible for 2-connected non-clique non-odd-cycle
        # graphs; keep a backtracking escape hatch for safety.
        result = backtracking_list_color(graph, lists, colors, nodes)
        if result is None:
            raise InfeasibleListColoringError("no Brooks gadget and no coloring")
        return
    v, a, b = gadget
    common = eff[a] & eff[b]
    c = min(common)  # effective lists are equal, so any color is common
    colors[a] = c
    colors[b] = c
    _greedy_toward(graph, lists, colors, node_set - {a, b}, root=v)


def _color_even_cycle(
    graph: Graph, colors: list[int], nodes: list[int], palette: list[int]
) -> None:
    """Tight equal 2-lists on a 2-regular connected set: an even cycle
    alternates the two colors; an odd cycle is infeasible."""
    if len(nodes) % 2 == 1:
        raise InfeasibleListColoringError("odd cycle with tight equal 2-lists")
    start = nodes[0]
    node_set = set(nodes)
    previous, current = None, start
    index = 0
    while True:
        colors[current] = palette[index % 2]
        nxt = next(
            (
                u
                for u in graph.adj[current]
                if u in node_set and u != previous and colors[u] == 0
            ),
            None,
        ) if index < len(nodes) - 1 else None
        if nxt is None:
            break
        previous, current = current, nxt
        index += 1


def _find_brooks_gadget(
    graph: Graph, node_set: set[int], adj_sets: list[set[int]]
) -> tuple[int, int, int] | None:
    """Find (v, a, b): a, b non-adjacent neighbours of v with the induced
    graph minus {a, b} still connected.

    Classic existence: every 2-connected non-complete graph with min
    degree >= 3 contains such a triple.  The search tries candidate
    centers in id order; the connectivity check is O(m) and the first few
    candidates almost always succeed, so the typical cost is linear.
    """
    nodes_sorted = sorted(node_set)
    for v in nodes_sorted:
        neighbors = [u for u in adj_sets[v] if u in node_set]
        for i, a in enumerate(neighbors):
            for b in neighbors[i + 1:]:
                if b in adj_sets[a]:
                    continue
                if _connected_without(graph, node_set, {a, b}):
                    return (v, a, b)
    return None


def _connected_without(graph: Graph, node_set: set[int], removed: set[int]) -> bool:
    remaining = node_set - removed
    if len(remaining) <= 1:
        return True
    start = next(iter(remaining))
    seen = {start}
    stack = [start]
    while stack:
        u = stack.pop()
        for w in graph.adj[u]:
            if w in remaining and w not in seen:
                seen.add(w)
                stack.append(w)
    return len(seen) == len(remaining)


def backtracking_list_color(
    graph: Graph,
    lists: list[set[int]],
    colors: list[int],
    nodes: list[int],
    step_budget: int = 500_000,
) -> list[int] | None:
    """Exhaustive search with forward checking (MRV order), bounded by
    ``step_budget`` expansions.

    Used (a) as the decision procedure for tight Gallai-tree instances
    that may or may not be feasible, and (b) as a safety net behind the
    constructive cases.  Returns the completed ``colors`` or None.
    """
    domains = {v: sorted(_available(graph, lists, colors, v)) for v in nodes if colors[v] == 0}
    assignment: dict[int, int] = {}
    steps = 0

    def choose() -> int | None:
        best, best_size = None, None
        for v, dom in domains.items():
            if v in assignment:
                continue
            live = [c for c in dom if _ok(v, c)]
            if best_size is None or len(live) < best_size:
                best, best_size = v, len(live)
        return best

    def _ok(v: int, c: int) -> bool:
        return all(assignment.get(u) != c for u in graph.adj[v])

    def search() -> bool:
        nonlocal steps
        steps += 1
        if steps > step_budget:
            raise InfeasibleListColoringError(
                "backtracking budget exceeded (instance too large for the fallback)"
            )
        v = choose()
        if v is None:
            return True
        for c in domains[v]:
            if _ok(v, c):
                assignment[v] = c
                if search():
                    return True
                del assignment[v]
        return False

    if not search():
        return None
    for v, c in assignment.items():
        colors[v] = c
    return colors
