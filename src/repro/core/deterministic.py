"""Deterministic Δ-coloring (Section 3; Theorems 4 and 21).

The algorithm is the layering technique in its purest form:

1. Linial's O(Δ²) coloring (symmetry breaking for the list engines).
2. Base layer B0 = an (R, z) ruling forest with R = 4·log_{Δ-1} n + 1
   (substituted: the AGLP bit-recursion ruling set, DESIGN.md §4.2, giving
   z = (R-1)·⌈log₂ n⌉).
3. Layers B_1..B_z by distance to B0; removed, then re-colored in reverse
   as (deg+1)-list instances with the deterministic engine (Theorem 18
   substitute: O(Δ²) rounds per layer, n-independent).
4. B0 nodes are colored last via the distributed Brooks' theorem
   (Theorem 5): each performs a token walk within radius < R/2; the
   ruling distance R keeps the recoloring regions disjoint, so they run
   concurrently.  Parallelism is accounted by packing fixes whose touched
   regions are disjoint into shared round slots (the rare overlapping
   repair is charged sequentially — honest accounting for the cases where
   a regional fallback outgrew its budget).

Theorem 21 (the 2^O(√log n) re-proof of [PS95]) prescribes the same
pipeline with a network-decomposition-based ruling set; our AGLP + color
class engine already runs in O(Δ²·log² n) ⊆ 2^{O(√log n)} rounds for
Δ = 2^{o(√log n)}, so :func:`delta_coloring_deterministic` subsumes it
(recorded as a substitution in EXPERIMENTS.md E3).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import AlgorithmContractError
from repro.core.brooks import fix_uncolored_node
from repro.core.layering import color_layers_in_reverse
from repro.graphs.bfs import distance_layers
from repro.graphs.graph import Graph
from repro.graphs.properties import assert_nice
from repro.graphs.validation import UNCOLORED, validate_coloring
from repro.local.rounds import RoundLedger
from repro.primitives.linial import linial_coloring
from repro.primitives.ruling_sets import ruling_forest_aglp

__all__ = ["DeterministicResult", "delta_coloring_deterministic", "ruling_distance"]


@dataclass
class DeterministicResult:
    """Output of the deterministic pipeline (mirrors DeltaColoringResult)."""

    colors: list[int]
    delta: int
    rounds: int
    phase_rounds: dict[str, int] = field(default_factory=dict)
    stats: dict[str, object] = field(default_factory=dict)
    phase_wall: dict[str, float] = field(default_factory=dict)


def ruling_distance(n: int, delta: int) -> int:
    """The paper's R = 4·log_{Δ-1} n + 1 (>= 5, integer-rounded)."""
    base = max(2, delta - 1)
    return max(5, 4 * math.ceil(math.log(max(2, n)) / math.log(base)) + 1)


def delta_coloring_deterministic(
    graph: Graph, strict: bool = False, ruling_k: int | None = None
) -> DeterministicResult:
    """Theorem 4: deterministic Δ-coloring of a nice graph with Δ >= 3.

    ``ruling_k`` overrides the ruling distance R (exposed for the A3-style
    ablations); the default is the paper's 4·log_{Δ-1} n + 1.
    """
    assert_nice(graph)
    delta = graph.max_degree()
    if delta < 3:
        raise AlgorithmContractError(f"deterministic algorithm needs Δ >= 3, got {delta}")
    n = graph.n
    ledger = RoundLedger()
    colors = [UNCOLORED] * n
    stats: dict[str, object] = {}

    with ledger.phase("0:linial"):
        linial = linial_coloring(graph, ledger)
    stats["linial_palette"] = linial.palette

    big_r = ruling_k if ruling_k is not None else ruling_distance(n, delta)
    stats["ruling_distance"] = big_r
    with ledger.phase("1:ruling-forest"):
        ruling = ruling_forest_aglp(graph, big_r, ledger)
    base_layer = ruling.nodes
    stats["b0_size"] = len(base_layer)

    with ledger.phase("2:layers"):
        layers = distance_layers(graph, base_layer)
        ledger.charge(len(layers))
    stats["num_layers"] = len(layers) - 1
    if strict:
        covered = {v for layer in layers for v in layer}
        if len(covered) != n:
            raise AlgorithmContractError("ruling forest layers do not cover the graph")

    with ledger.phase("3:color-layers"):
        report = color_layers_in_reverse(
            graph, colors, layers, delta, "deterministic", ledger,
            base_colors=linial.colors, palette=linial.palette, strict=strict,
        )
    stats["layer_iterations"] = report.total_iterations

    with ledger.phase("4:color-b0-brooks"):
        fix_stats = _fix_base_layer(graph, colors, base_layer, delta, big_r, ledger, strict)
    stats.update(fix_stats)

    validate_coloring(graph, colors, max_colors=delta)
    return DeterministicResult(
        colors=colors,
        delta=delta,
        rounds=ledger.total_rounds,
        phase_rounds=ledger.snapshot(),
        stats=stats,
        phase_wall=ledger.wall_snapshot(),
    )


def _fix_base_layer(
    graph: Graph,
    colors: list[int],
    base_layer: set[int],
    delta: int,
    big_r: int,
    ledger: RoundLedger,
    strict: bool,
) -> dict[str, object]:
    """Phase 4: repair every B0 node via Theorem 5, packing disjoint
    repairs into shared round slots.

    Each fix is executed sequentially on the shared color array (always
    correct); round accounting groups fixes whose touched regions (plus a
    one-hop halo) are disjoint — those run concurrently in LOCAL.
    """
    budget_radius = max(2, (big_r - 1) // 2)
    slots: list[tuple[set[int], int]] = []
    modes: dict[str, int] = {}
    max_fix_radius = 0
    for v in sorted(base_layer):
        if colors[v] != UNCOLORED:
            continue
        local = RoundLedger()
        result = fix_uncolored_node(
            graph, colors, v, delta, max_radius=budget_radius, ledger=local
        )
        modes[result.mode] = modes.get(result.mode, 0) + 1
        max_fix_radius = max(max_fix_radius, result.radius)
        region = set(result.recolored) | {v}
        halo = set(region)
        for u in region:
            halo.update(graph.adj[u])
        placed = False
        for index, (blocked, cost) in enumerate(slots):
            if not (halo & blocked):
                blocked |= halo
                slots[index] = (blocked, max(cost, local.total_rounds))
                placed = True
                break
        if not placed:
            slots.append((halo, local.total_rounds))
    for _blocked, cost in slots:
        ledger.charge(cost)
    if strict and len(slots) > 1:
        # Overlapping repairs should not occur when R > 2·budget radius.
        pass  # accounted sequentially above; the stats expose it
    return {
        "fix_modes": modes,
        "fix_slots": len(slots),
        "max_fix_radius": max_fix_radius,
    }
