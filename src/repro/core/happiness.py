"""Happiness layers (phase (5) of the randomized algorithms).

After the marking process, a node of H is *happy* if it can reach slack —
a T-node or the boundary of H — through uncolored nodes within distance
2r.  Happy nodes are arranged into layers C_0, .., C_{2r} by distance to
their slack and removed; they are colored in reverse layer order in phase
(7), where the slack guarantees the final step:

* a T-node sees two neighbours of the same color (color one), so at most
  deg−1 distinct colors;
* a boundary node (degree < Δ in H) either has degree < Δ in G, or has a
  neighbour in the removed B-layers, which is colored *after* phase (7).

The subtle part, straight from the paper: marked nodes (colored 1) within
distance r of the boundary are *uncolored* first.  Otherwise a marked node
could sit on every path between an inner node and the boundary, breaking
the "uncolored neighbour in the previous layer" contract of the reverse
coloring.  Uncoloring a mark may demote its selector from T-node status;
the demoted selector simply becomes an ordinary node that reaches the
boundary through the now-uncolored mark (the paper's reassignment cascade
— a single depth-2r BFS from the post-uncoloring seed set implements it).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.graphs.bfs import bfs_distances, distance_layers
from repro.graphs.graph import Graph
from repro.graphs.validation import UNCOLORED
from repro.local.rounds import RoundLedger
from repro.core.marking import MARK_COLOR, MarkingOutcome

__all__ = ["HappinessLayers", "build_happiness_layers"]


@dataclass
class HappinessLayers:
    """Output of phase (5).

    ``layers[i]`` is C_i (``layers[0]`` = T-nodes ∪ boundary); ``leftover``
    is the unhappy remainder L (to be handled by phase (6)); ``marked``
    is the set of still-colored marked nodes (removed from H alongside the
    layers); ``uncolored_marks`` counts marks wiped by the boundary rule.
    """

    layers: list[list[int]] = field(default_factory=list)
    leftover: set[int] = field(default_factory=set)
    marked: set[int] = field(default_factory=set)
    t_nodes: set[int] = field(default_factory=set)
    boundary: set[int] = field(default_factory=set)
    uncolored_marks: int = 0
    rounds: int = 0


def build_happiness_layers(
    graph: Graph,
    colors: list[int],
    h_nodes: set[int],
    marking: MarkingOutcome,
    delta: int,
    r: int,
    ledger: RoundLedger | None = None,
) -> HappinessLayers:
    """Phase (5): boundary uncoloring, seed computation, C-layer BFS.

    Mutates ``colors`` (marks near the boundary are uncolored).  Charges
    ``r`` rounds for the boundary flood and ``2r`` for the layer BFS.
    """
    ledger = ledger if ledger is not None else RoundLedger()
    result = HappinessLayers()
    ledger.charge(r + 2 * r)
    result.rounds = 3 * r

    degree_in_h = {
        v: sum(1 for u in graph.adj[v] if u in h_nodes) for v in h_nodes
    }
    boundary = {v for v in h_nodes if degree_in_h[v] < delta}
    result.boundary = boundary

    # Uncolor marks within distance r of the boundary (distance inside H).
    marked = set(marking.marked)
    if boundary:
        dist_to_boundary = bfs_distances(graph, boundary, max_depth=r, allowed=h_nodes)
        for m in list(marked):
            if dist_to_boundary[m] != -1:
                colors[m] = UNCOLORED
                marked.discard(m)
                result.uncolored_marks += 1

    # Recompute T-node status: both marks must still carry color one.
    t_alive = {
        t
        for t, (u1, u2) in marking.t_nodes.items()
        if colors[u1] == MARK_COLOR and colors[u2] == MARK_COLOR
    }
    result.t_nodes = t_alive
    result.marked = marked

    seeds = t_alive | boundary
    uncolored_h = {v for v in h_nodes if colors[v] == UNCOLORED}
    # Demoted T-nodes and uncolored marks are plain uncolored nodes now and
    # participate in the BFS as relay/layer nodes.
    layers = distance_layers(graph, seeds & uncolored_h, max_depth=2 * r, allowed=uncolored_h)
    result.layers = layers
    layered = {v for layer in layers for v in layer}
    result.leftover = uncolored_h - layered
    return result
