"""Incremental Δ-coloring under edge updates (graph streams).

The paper's Theorem 5 machinery (:func:`repro.core.brooks.
fix_uncolored_node`) completes a coloring with one uncolored node by
recoloring only an O(log n) neighbourhood — exactly the primitive needed
to keep a coloring valid under edge insertions and deletions instead of
re-solving from scratch.  :class:`IncrementalColoring` packages it as a
stateful engine:

* it holds the current graph plus a valid coloring (typically seeded
  from a :class:`repro.api.ColoringResult`), the coloring in a
  journaling :class:`repro.core.colorstore.ColorStore` (numpy-backed,
  O(touched) diffing — no per-op O(n) list copies);
* ``insert_edge`` / ``delete_edge`` / ``batch_update`` apply a delta,
  detect the conflicts the delta created, uncolor a *minimal* hitting
  set of conflict endpoints, and repair each through the ladder

      1. **greedy** — take a free color at the uncolored node (O(Δ));
      2. **brooks** — the Theorem 5 token walk
         (:func:`fix_uncolored_node`), O(log n) locality;
      3. **resolve** — a full :func:`repro.api.solve` of the new graph,
         reached only when Δ changed (the Δ-coloring contract itself
         moved) or the local repair stalled (e.g. the update carved out
         a clique component, which no Δ-palette repair can fix).

Deletions never create conflicts (removing constraints preserves
properness), so they are O(delta-application) unless they lower Δ —
a *smaller* palette contract — which forces a resolve.

**Graph backends.**  Delta application has two modes, selected by the
``backend`` parameter:

* ``"immutable"`` — every op builds a fresh :class:`repro.graphs.Graph`
  via :meth:`Graph.apply_updates` (touched-rows CSR rewrite, O(n + m)
  buffer copies).  The engine never mutates a caller's graph, and
  ``engine.graph`` keeps its identity semantics — a rejected op leaves
  the *same object* in place.
* ``"dynamic"`` — the engine owns a
  :class:`repro.graphs.dynamic.DynamicGraph` (slack-padded updatable
  CSR) and applies deltas **in place**, O(Δ) per touched row.  This is
  the streaming mode: ~μs delta application independent of n.
* ``"auto"`` (default) — start immutable, convert to an owned dynamic
  copy once the stream proves itself (two accepted ops).  One-shot
  facade calls (:func:`repro.api.solve_incremental`) stay on the
  immutable path and hand out ordinary graphs; sustained streams pay
  one O(n + m) conversion and then update in place.

In dynamic mode the engine still never mutates caller state: the
conversion copies, and ``engine.graph`` returns an immutable
:meth:`~repro.graphs.dynamic.DynamicGraph.snapshot` (cached until the
next mutation — cheap at stream end, O(n + m) if read every op; use
``colors_view()`` / ``last_dirty_region`` for per-op monitoring).
Rejected and failed ops roll back both structures exactly: the graph
via the delta undo log, the colors via the store journal.

Every op returns an :class:`UpdateOutcome` with repair-locality stats
(`recolored_count`, `max_repair_radius`, charged LOCAL `rounds`, the
per-mode counts), and the engine accumulates lifetime totals in
:attr:`IncrementalColoring.totals` — the numbers
``benchmarks/bench_s2_incremental.py`` reports against fresh-solve
latency.

Rejected operations (typed, state unchanged):

* inserting an edge that is already present — or twice in one batch —
  :class:`repro.errors.EdgeAlreadyPresentError`;
* deleting an edge that is not present — or twice in one batch —
  :class:`repro.errors.EdgeNotPresentError`;
* one edge appearing in both ``added`` and ``removed`` of a batch —
  :class:`repro.errors.ConflictingUpdateError`;
* any update that would change Δ when the engine was built with
  ``allow_resolve=False`` — :class:`repro.errors.DeltaChangeError`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.errors import (
    ConflictingUpdateError,
    DeltaChangeError,
    EdgeAlreadyPresentError,
    EdgeNotPresentError,
    GraphError,
    ReproError,
)
from repro.core.brooks import fix_uncolored_node
from repro.core.colorstore import ColorStore
from repro.graphs.dynamic import DynamicGraph
from repro.graphs.graph import Graph
from repro.graphs.validation import (
    UNCOLORED,
    validate_coloring,
    validate_coloring_region,
)

__all__ = ["IncrementalColoring", "UpdateOutcome"]

#: Accepted ops after which ``backend="auto"`` converts to dynamic.
AUTO_CONVERT_AFTER = 2

#: Batch size above which membership probes switch from per-edge row
#: scans to touched-row sets built once.
MEMBERSHIP_SET_THRESHOLD = 3


@dataclass
class UpdateOutcome:
    """What one ``insert_edge`` / ``delete_edge`` / ``batch_update`` did.

    ``repair_modes`` counts repaired nodes per ladder rung (``greedy``,
    plus the :class:`repro.core.brooks.BrooksFixResult` modes for token
    walks); ``max_repair_radius`` is the farthest distance from a repair
    site at which a color changed — the locality Theorem 5 bounds by
    2·log_{Δ-1} n; ``rounds`` is the charged LOCAL cost of the repairs.
    ``full_resolve`` marks the ladder's last rung: the whole coloring was
    recomputed and per-node repair stats do not apply.
    """

    op: str
    edges_added: int = 0
    edges_removed: int = 0
    conflicts: int = 0
    recolored_count: int = 0
    repair_modes: dict[str, int] = field(default_factory=dict)
    max_repair_radius: int = 0
    rounds: int = 0
    full_resolve: bool = False
    resolve_reason: str | None = None
    delta: int = 0
    palette: int = 0
    wall_time_s: float = 0.0
    rung_wall_s: dict[str, float] = field(default_factory=dict)

    def charge_rung_wall(self, rung: str, seconds: float) -> None:
        """Accumulate wall-clock seconds against a ladder rung
        (``greedy`` / ``token-walk`` / ``resolve``)."""
        self.rung_wall_s[rung] = self.rung_wall_s.get(rung, 0.0) + seconds

    def as_dict(self) -> dict[str, Any]:
        return {
            "op": self.op,
            "edges_added": self.edges_added,
            "edges_removed": self.edges_removed,
            "conflicts": self.conflicts,
            "recolored_count": self.recolored_count,
            "repair_modes": dict(self.repair_modes),
            "max_repair_radius": self.max_repair_radius,
            "rounds": self.rounds,
            "full_resolve": self.full_resolve,
            "resolve_reason": self.resolve_reason,
            "delta": self.delta,
            "palette": self.palette,
            "wall_time_s": round(self.wall_time_s, 6),
            "rung_wall_s": {
                rung: round(seconds, 6)
                for rung, seconds in self.rung_wall_s.items()
            },
        }


class IncrementalColoring:
    """A valid coloring maintained under a stream of edge updates.

    Parameters
    ----------
    graph:
        The current instance (never mutated; updates either swap in new
        graphs or mutate an engine-owned dynamic copy).
    colors:
        A valid coloring of ``graph`` with colors in ``1..palette``
        (validated at construction unless ``validate_seed=False``).
    palette:
        The palette bound the engine maintains (Δ for the paper's
        algorithms).
    algorithm:
        The registry name that produced the seed coloring; consulted for
        the ``supports_incremental`` capability flag — algorithms without
        it (per-component χ palettes) skip the repair ladder and resolve
        on every conflicting update.
    config:
        The :class:`repro.api.SolverConfig` used for full re-solves
        (default: ``algorithm="auto"`` with ``seed``).
    backend:
        Delta-application mode: ``"auto"`` (immutable until the stream
        proves itself, then dynamic), ``"dynamic"`` (convert at
        construction), ``"immutable"`` (never convert).
    allow_resolve:
        When False, updates that would need a full re-solve (Δ changes)
        raise :class:`repro.errors.DeltaChangeError` instead, leaving the
        engine unchanged.
    validate:
        Re-validate the coloring after every applied update.  Repaired
        updates check only the **dirty region** — the recolored nodes
        plus the endpoints of inserted edges — via
        :func:`repro.graphs.validation.validate_coloring_region`
        (O(vol(region)); sound because the pre-update coloring was valid
        and nothing outside the region changed); full re-solves still
        pay the full O(n + m) :func:`validate_coloring` pass.
    """

    def __init__(
        self,
        graph: Graph,
        colors: Iterable[int],
        palette: int | None = None,
        *,
        algorithm: str = "auto",
        config: "Any | None" = None,
        seed: int = 0,
        backend: str = "auto",
        allow_resolve: bool = True,
        validate: bool = False,
        validate_seed: bool = True,
    ):
        if backend not in ("auto", "dynamic", "immutable"):
            raise ValueError(f"unknown IncrementalColoring backend: {backend!r}")
        self._graph = graph
        self._colors = ColorStore(colors)
        self._delta = graph.max_degree()
        self.palette = palette if palette is not None else self._delta
        self.algorithm = algorithm
        self.seed = seed
        # The seed recorded on results *derived from* this engine's state
        # (may legitimately be None when the seeding result's was); the
        # engine's own ``seed`` stays an int for the re-solve config.
        self.result_seed: int | None = seed
        self.backend = backend
        self.allow_resolve = allow_resolve
        self.validate = validate
        self._config = config
        self._last_dirty: list[int] | None = []
        self._is_dynamic = isinstance(graph, DynamicGraph)
        self._supports_inc: tuple[str, bool] | None = None
        if backend == "dynamic" and not self._is_dynamic:
            self._graph = DynamicGraph.from_graph(graph)
            self._is_dynamic = True
        if validate_seed:
            validate_coloring(graph, self._colors, max_colors=self.palette or None)
        self.totals: dict[str, Any] = {
            "ops": 0,
            "edges_added": 0,
            "edges_removed": 0,
            "conflicts": 0,
            "recolored": 0,
            "full_resolves": 0,
            "repair_modes": {},
            "max_repair_radius": 0,
            "rounds": 0,
        }

    @classmethod
    def from_result(
        cls, graph: Graph, result: "Any", **kwargs: Any
    ) -> "IncrementalColoring":
        """Seed the engine from a :class:`repro.api.ColoringResult` of
        ``graph`` (the solve is trusted: no seed re-validation)."""
        kwargs.setdefault("validate_seed", False)
        kwargs.setdefault("seed", result.seed if result.seed is not None else 0)
        kwargs.setdefault("algorithm", result.algorithm)
        engine = cls(graph, result.colors, result.palette, **kwargs)
        engine.result_seed = result.seed
        return engine

    # -- views -------------------------------------------------------------

    @property
    def graph(self) -> Graph:
        """The current graph.  On the immutable path this is the exact
        object last committed (identity-stable across rejected ops); on
        the dynamic path, an immutable snapshot of the owned dynamic
        graph, cached until the next mutation."""
        if self._is_dynamic:
            return self._graph.snapshot()
        return self._graph

    @property
    def colors(self) -> list[int]:
        """The current coloring (a plain-list copy; the engine owns its
        state).  Prefer :meth:`colors_view` on hot paths."""
        return self._colors.to_list()

    def colors_view(self):
        """A read-only, copy-free view of the current coloring (numpy
        array or tuple; see :meth:`repro.core.colorstore.ColorStore.view`)."""
        return self._colors.view()

    @property
    def delta(self) -> int:
        return self._delta

    @property
    def n(self) -> int:
        """Node count of the current graph, without snapshotting it
        (``engine.graph`` on the dynamic path is an O(n + m) copy; the
        service's admission control only needs the size)."""
        return self._graph.n

    @property
    def num_edges(self) -> int:
        """Edge count of the current graph, snapshot-free (see :attr:`n`)."""
        return self._graph.num_edges

    def set_resolve_config(self, config: "Any | None") -> None:
        """Replace the :class:`repro.api.SolverConfig` used by the full
        re-solve rung.  Long-lived engines (the service's chain heads)
        serve many requests, each carrying its own config; the engine is
        keyed by a digest that covers the config, so updating it here
        keeps rung 3 consistent with what the caller asked for."""
        self._config = config

    @property
    def last_dirty_region(self) -> list[int] | None:
        """Nodes the last applied op may have affected (recolored nodes
        plus inserted-edge endpoints), or ``None`` after a full re-solve
        (every node is then suspect and only a full validation applies).
        """
        dirty = self._last_dirty
        return list(dirty) if dirty is not None else None

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        mode = "dynamic" if self._is_dynamic else "immutable"
        return (
            f"IncrementalColoring(n={self._graph.n}, m={self._graph.num_edges}, "
            f"Δ={self._delta}, palette={self.palette}, ops={self.totals['ops']}, "
            f"backend={mode})"
        )

    # -- operations --------------------------------------------------------

    def insert_edge(self, u: int, v: int) -> UpdateOutcome:
        """Insert ``{u, v}``, repairing any conflict it creates."""
        return self._apply("insert", [(u, v)], [])

    def delete_edge(self, u: int, v: int) -> UpdateOutcome:
        """Delete ``{u, v}`` (never creates conflicts; may lower Δ)."""
        return self._apply("delete", [], [(u, v)])

    def batch_update(
        self,
        added: Iterable[tuple[int, int]] = (),
        removed: Iterable[tuple[int, int]] = (),
    ) -> UpdateOutcome:
        """Apply a whole delta atomically: one graph transition, all
        conflicts detected against it, one repair pass."""
        return self._apply("batch", list(added), list(removed))

    # -- internals ---------------------------------------------------------

    def _apply(
        self,
        op: str,
        added: list[tuple[int, int]],
        removed: list[tuple[int, int]],
    ) -> UpdateOutcome:
        started = time.perf_counter()
        if (
            self.backend == "auto"
            and not self._is_dynamic
            and self.totals["ops"] >= AUTO_CONVERT_AFTER
        ):
            # The stream proved itself: own a dynamic copy from here on.
            self._graph = DynamicGraph.from_graph(self._graph)
            self._is_dynamic = True
        self._validate_delta(added, removed)
        outcome = UpdateOutcome(
            op=op, edges_added=len(added), edges_removed=len(removed)
        )
        if self._is_dynamic:
            dirty = self._apply_dynamic(added, removed, outcome)
        else:
            dirty = self._apply_immutable(added, removed, outcome)
        self._last_dirty = sorted(dirty) if dirty is not None else None
        outcome.delta = self._delta
        outcome.palette = self.palette
        if self.validate:
            if dirty is None:
                validate_coloring(
                    self._graph, self._colors, max_colors=self.palette or None
                )
            else:
                validate_coloring_region(
                    self._graph, self._colors, dirty,
                    max_colors=self.palette or None,
                )
        outcome.wall_time_s = time.perf_counter() - started
        self._accumulate(outcome)
        return outcome

    def _apply_immutable(
        self,
        added: list[tuple[int, int]],
        removed: list[tuple[int, int]],
        outcome: UpdateOutcome,
    ) -> set[int] | None:
        """Delta via :meth:`Graph.apply_updates`: a fresh graph object,
        committed only on success — rejections leave the old identity."""
        graph = self._graph
        new_graph = graph.apply_updates(added, removed)
        new_delta = new_graph.max_degree()
        store = self._colors
        dirty: set[int] | None = {v for edge in added for v in edge}
        if self._delta_moved(new_delta):
            self._resolve(new_graph, outcome, reason=f"delta {self._delta}->{new_delta}")
            return None
        conflicts = [
            (u, v)
            for u, v in added
            if store[u] == store[v] and store[u] != UNCOLORED
        ]
        outcome.conflicts = len(conflicts)
        if conflicts and not self._spec_supports_incremental():
            self._resolve(new_graph, outcome, reason="algorithm-unsupported")
            return None
        if conflicts:
            uncolor = self._minimal_uncolor_set(conflicts, new_graph)
            store.begin()
            try:
                self._repair(new_graph, store, uncolor, outcome)
            except ReproError:
                # Repair stalled (e.g. the delta carved out a clique
                # component): last rung of the ladder.
                store.rollback()
                self._resolve(new_graph, outcome, reason="repair-stalled")
                return None
            changed = store.commit()
            outcome.recolored_count = len(changed)
            dirty.update(changed)
        self._graph = new_graph
        self._delta = new_delta
        return dirty

    def _apply_dynamic(
        self,
        added: list[tuple[int, int]],
        removed: list[tuple[int, int]],
        outcome: UpdateOutcome,
    ) -> set[int] | None:
        """Delta in place on the owned :class:`DynamicGraph`: O(Δ) per
        touched row.  Failures after mutation undo the delta and roll
        back the color journal, so rejections stay exact."""
        dyn: DynamicGraph = self._graph
        store = self._colors
        new_delta = dyn.delta_after(added, removed)
        resolve_reason: str | None = None
        if self._delta_moved(new_delta):
            # Policed before mutation: an allow_resolve=False engine must
            # reject with its state untouched, no undo required.
            if not self.allow_resolve:
                raise DeltaChangeError(
                    f"update needs a full re-solve (delta "
                    f"{self._delta}->{new_delta}) but the engine was built "
                    "with allow_resolve=False"
                )
            resolve_reason = f"delta {self._delta}->{new_delta}"
            conflicts: list[tuple[int, int]] = []
        else:
            conflicts = [
                (u, v)
                for u, v in added
                if store[u] == store[v] and store[u] != UNCOLORED
            ]
            outcome.conflicts = len(conflicts)
            if conflicts and not self._spec_supports_incremental():
                resolve_reason = "algorithm-unsupported"
        undo = dyn.apply_delta(added, removed, record_undo=True, _validated=True)
        try:
            if resolve_reason is not None:
                self._resolve(dyn, outcome, reason=resolve_reason)
                return None
            dirty: set[int] | None = {v for edge in added for v in edge}
            if conflicts:
                uncolor = self._minimal_uncolor_set(conflicts, dyn)
                store.begin()
                try:
                    self._repair(dyn, store, uncolor, outcome)
                except ReproError:
                    store.rollback()
                    # Repair stalled: last rung of the ladder (raises
                    # DeltaChangeError under allow_resolve=False, which
                    # the outer handler turns into an exact rollback).
                    self._resolve(dyn, outcome, reason="repair-stalled")
                    return None
                changed = store.commit()
                outcome.recolored_count = len(changed)
                dirty.update(changed)
            self._delta = new_delta
            return dirty
        except ReproError:
            # Typed rejection after mutation: restore both structures.
            if store.in_transaction:
                store.rollback()
            dyn.undo_delta(undo)
            raise

    def _delta_moved(self, new_delta: int) -> bool:
        """Did the delta move the Δ-coloring contract itself?  A rise
        leaves the old colors proper but under-uses the new palette's
        guarantees, a fall makes the old palette illegal; and any palette
        below the new Δ voids the repair ladder's guarantees outright.
        Only a fresh solve restores the contract."""
        return (
            new_delta != self._delta and self.palette == self._delta
        ) or new_delta > self.palette

    def _validate_delta(
        self, added: list[tuple[int, int]], removed: list[tuple[int, int]]
    ) -> None:
        """The typed rejection contract, checked **before any mutation**.

        Presence and batch-consistency violations get typed errors
        (:class:`EdgeNotPresentError`, :class:`EdgeAlreadyPresentError`,
        :class:`ConflictingUpdateError`); range errors and self-loops
        keep their :class:`repro.errors.GraphError` identity from the
        graph layer.  For batches past a few edges, membership probes
        run against touched-row sets built once instead of re-scanning
        a neighbour row per edge.
        """
        graph = self._graph
        n = graph.n
        if len(added) + len(removed) > MEMBERSHIP_SET_THRESHOLD:
            rows: dict[int, set[int]] = {}
            for u, v in added:
                if 0 <= u < n and u not in rows:
                    rows[u] = set(graph.neighbors_csr(u))
            for u, v in removed:
                if 0 <= u < n and u not in rows:
                    rows[u] = set(graph.neighbors_csr(u))

            def present(u: int, v: int) -> bool:
                return v in rows[u]
        else:

            def present(u: int, v: int) -> bool:
                return v in graph.neighbors_csr(u)

        # Batch self-consistency first: a batch that names the same key
        # twice is contradictory no matter what the graph holds, so the
        # consistency error must win over any presence error.
        removed_keys: set[tuple[int, int]] = set()
        for u, v in removed:
            key = (u, v) if u < v else (v, u)
            if key in removed_keys:
                raise EdgeNotPresentError(
                    f"cannot delete edge ({u}, {v}): already deleted in this batch"
                )
            removed_keys.add(key)
        added_keys: set[tuple[int, int]] = set()
        for u, v in added:
            key = (u, v) if u < v else (v, u)
            if key in removed_keys:
                raise ConflictingUpdateError(
                    f"edge ({u}, {v}) appears in both added and removed"
                )
            if key in added_keys:
                raise EdgeAlreadyPresentError(
                    f"cannot insert edge ({u}, {v}): already present"
                )
            added_keys.add(key)
        # Then presence against the live graph.
        for u, v in removed:
            if not (0 <= u < n and 0 <= v < n) or not present(u, v):
                raise EdgeNotPresentError(
                    f"cannot delete edge ({u}, {v}): not present"
                )
        for u, v in added:
            if 0 <= u < n and 0 <= v < n and u != v and present(u, v):
                raise EdgeAlreadyPresentError(
                    f"cannot insert edge ({u}, {v}): already present"
                )
        # Range errors and self-loops keep their GraphError identity from
        # the graph layer; on the immutable path Graph.apply_updates
        # re-checks them anyway, on the dynamic path this pass is what
        # lets apply_delta skip its own validation (_validated=True).
        if self._is_dynamic:
            for u, v in added:
                if not (0 <= u < n and 0 <= v < n):
                    raise GraphError(f"edge ({u}, {v}) out of range for n={n}")
                if u == v:
                    raise GraphError(f"self-loop at node {u} is not allowed")

    def _spec_supports_incremental(self) -> bool:
        cached = self._supports_inc
        if cached is not None and cached[0] == self.algorithm:
            return cached[1]
        from repro.api.registry import get_algorithm

        try:
            flag = get_algorithm(self.algorithm).supports_incremental
        except ReproError:
            # Unknown (e.g. third-party unregistered) seed algorithm:
            # assume repairable — the resolve rung still backstops it.
            flag = True
        self._supports_inc = (self.algorithm, flag)
        return flag

    def _minimal_uncolor_set(
        self,
        conflicts: list[tuple[int, int]],
        graph: Graph,
    ) -> list[int]:
        """A small vertex set hitting every conflict edge.

        Greedy max-multiplicity vertex cover over the conflict edges: for
        single-edge updates this is one endpoint (preferring one with
        degree < palette, where a free color is guaranteed); for batches
        a shared endpoint of k conflicts is uncolored once instead of k
        times.
        """
        remaining = list(conflicts)
        uncolor: list[int] = []
        while remaining:
            multiplicity: dict[int, int] = {}
            for u, v in remaining:
                multiplicity[u] = multiplicity.get(u, 0) + 1
                multiplicity[v] = multiplicity.get(v, 0) + 1
            best = max(
                multiplicity,
                key=lambda x: (
                    multiplicity[x],
                    graph.degree(x) < self.palette,  # free color guaranteed
                    -x,
                ),
            )
            uncolor.append(best)
            remaining = [e for e in remaining if best not in e]
        return uncolor

    def _repair(
        self,
        graph: Graph,
        colors: "ColorStore",
        uncolor: list[int],
        outcome: UpdateOutcome,
    ) -> None:
        """Rungs 1–2 of the ladder for every uncolored node (mutates
        ``colors`` through item assignment only, so list-likes and
        :class:`ColorStore` both work; raises on stall, caller falls to
        rung 3).  Neighbour rows are read straight off the CSR buffers —
        touching ``graph.adj`` here would lazily materialise all O(n + m)
        adjacency lists on every fresh post-update graph."""
        for v in uncolor:
            colors[v] = UNCOLORED
        palette = self.palette
        for v in uncolor:
            rung_started = time.perf_counter()
            used = set()
            for w in graph.neighbors_csr(v):
                c = colors[w]
                if c != UNCOLORED:
                    used.add(c)
            free = next(
                (c for c in range(1, palette + 1) if c not in used), None
            )
            if free is not None:
                colors[v] = free
                outcome.repair_modes["greedy"] = (
                    outcome.repair_modes.get("greedy", 0) + 1
                )
                outcome.rounds += 1
                outcome.charge_rung_wall(
                    "greedy", time.perf_counter() - rung_started
                )
                continue
            fix = fix_uncolored_node(graph, colors, v, max_colors=palette)
            outcome.repair_modes[fix.mode] = (
                outcome.repair_modes.get(fix.mode, 0) + 1
            )
            outcome.max_repair_radius = max(outcome.max_repair_radius, fix.radius)
            outcome.rounds += fix.rounds
            outcome.charge_rung_wall(
                "token-walk", time.perf_counter() - rung_started
            )

    def _resolve(
        self, graph: Graph, outcome: UpdateOutcome, reason: str
    ) -> None:
        """Rung 3: full re-solve of the new graph through the facade.

        ``graph`` is either the fresh immutable graph (committed here) or
        the engine's own already-mutated :class:`DynamicGraph` (solved
        via its snapshot).  The color store must hold the *pre-op*
        coloring (callers roll back partial repairs first) so the
        recolored count is a true pre/post diff.
        """
        if not self.allow_resolve:
            raise DeltaChangeError(
                f"update needs a full re-solve ({reason}) but the engine "
                "was built with allow_resolve=False"
            )
        from repro.api import SolverConfig, solve

        config = self._config
        if config is None:
            config = SolverConfig(algorithm="auto", seed=self.seed)
        solvable = graph.snapshot() if isinstance(graph, DynamicGraph) else graph
        rung_started = time.perf_counter()
        result = solve(solvable, config)
        outcome.charge_rung_wall("resolve", time.perf_counter() - rung_started)
        outcome.full_resolve = True
        outcome.resolve_reason = reason
        outcome.rounds += result.rounds
        store = self._colors
        outcome.recolored_count = store.diff_count(result.colors)
        self.algorithm = result.algorithm
        self.palette = result.palette
        store.replace(result.colors)
        self._graph = graph
        self._delta = graph.max_degree()

    def _accumulate(self, outcome: UpdateOutcome) -> None:
        totals = self.totals
        totals["ops"] += 1
        totals["edges_added"] += outcome.edges_added
        totals["edges_removed"] += outcome.edges_removed
        totals["conflicts"] += outcome.conflicts
        totals["recolored"] += outcome.recolored_count
        totals["full_resolves"] += outcome.full_resolve
        totals["rounds"] += outcome.rounds
        totals["max_repair_radius"] = max(
            totals["max_repair_radius"], outcome.max_repair_radius
        )
        for mode, count in outcome.repair_modes.items():
            totals["repair_modes"][mode] = (
                totals["repair_modes"].get(mode, 0) + count
            )
