"""Incremental Δ-coloring under edge updates (graph streams).

The paper's Theorem 5 machinery (:func:`repro.core.brooks.
fix_uncolored_node`) completes a coloring with one uncolored node by
recoloring only an O(log n) neighbourhood — exactly the primitive needed
to keep a coloring valid under edge insertions and deletions instead of
re-solving from scratch.  :class:`IncrementalColoring` packages it as a
stateful engine:

* it holds the current :class:`repro.graphs.Graph` plus a valid coloring
  (typically seeded from a :class:`repro.api.ColoringResult`);
* ``insert_edge`` / ``delete_edge`` / ``batch_update`` apply a delta via
  :meth:`repro.graphs.Graph.apply_updates` (touched-rows-only CSR
  rewrite, no full revalidation), detect the conflicts the delta
  created, uncolor a *minimal* hitting set of conflict endpoints, and
  repair each through the ladder

      1. **greedy** — take a free color at the uncolored node (O(Δ));
      2. **brooks** — the Theorem 5 token walk
         (:func:`fix_uncolored_node`), O(log n) locality;
      3. **resolve** — a full :func:`repro.api.solve` of the new graph,
         reached only when Δ changed (the Δ-coloring contract itself
         moved) or the local repair stalled (e.g. the update carved out
         a clique component, which no Δ-palette repair can fix).

Deletions never create conflicts (removing constraints preserves
properness), so they are O(delta-application) unless they lower Δ —
a *smaller* palette contract — which forces a resolve.

Every op returns an :class:`UpdateOutcome` with repair-locality stats
(`recolored_count`, `max_repair_radius`, charged LOCAL `rounds`, the
per-mode counts), and the engine accumulates lifetime totals in
:attr:`IncrementalColoring.totals` — the numbers
``benchmarks/bench_s2_incremental.py`` reports against fresh-solve
latency.

Rejected operations (typed, state unchanged):

* inserting an edge that is already present —
  :class:`repro.errors.EdgeAlreadyPresentError`;
* deleting an edge that is not present —
  :class:`repro.errors.EdgeNotPresentError`;
* any update that would change Δ when the engine was built with
  ``allow_resolve=False`` — :class:`repro.errors.DeltaChangeError`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.errors import (
    DeltaChangeError,
    EdgeAlreadyPresentError,
    EdgeNotPresentError,
    ReproError,
)
from repro.core.brooks import fix_uncolored_node
from repro.graphs.graph import Graph
from repro.graphs.validation import (
    UNCOLORED,
    validate_coloring,
    validate_coloring_region,
)

__all__ = ["IncrementalColoring", "UpdateOutcome"]


@dataclass
class UpdateOutcome:
    """What one ``insert_edge`` / ``delete_edge`` / ``batch_update`` did.

    ``repair_modes`` counts repaired nodes per ladder rung (``greedy``,
    plus the :class:`repro.core.brooks.BrooksFixResult` modes for token
    walks); ``max_repair_radius`` is the farthest distance from a repair
    site at which a color changed — the locality Theorem 5 bounds by
    2·log_{Δ-1} n; ``rounds`` is the charged LOCAL cost of the repairs.
    ``full_resolve`` marks the ladder's last rung: the whole coloring was
    recomputed and per-node repair stats do not apply.
    """

    op: str
    edges_added: int = 0
    edges_removed: int = 0
    conflicts: int = 0
    recolored_count: int = 0
    repair_modes: dict[str, int] = field(default_factory=dict)
    max_repair_radius: int = 0
    rounds: int = 0
    full_resolve: bool = False
    resolve_reason: str | None = None
    delta: int = 0
    palette: int = 0
    wall_time_s: float = 0.0

    def as_dict(self) -> dict[str, Any]:
        return {
            "op": self.op,
            "edges_added": self.edges_added,
            "edges_removed": self.edges_removed,
            "conflicts": self.conflicts,
            "recolored_count": self.recolored_count,
            "repair_modes": dict(self.repair_modes),
            "max_repair_radius": self.max_repair_radius,
            "rounds": self.rounds,
            "full_resolve": self.full_resolve,
            "resolve_reason": self.resolve_reason,
            "delta": self.delta,
            "palette": self.palette,
            "wall_time_s": round(self.wall_time_s, 6),
        }


class IncrementalColoring:
    """A valid coloring maintained under a stream of edge updates.

    Parameters
    ----------
    graph:
        The current instance (never mutated; updates swap in new graphs).
    colors:
        A valid coloring of ``graph`` with colors in ``1..palette``
        (validated at construction unless ``validate_seed=False``).
    palette:
        The palette bound the engine maintains (Δ for the paper's
        algorithms).
    algorithm:
        The registry name that produced the seed coloring; consulted for
        the ``supports_incremental`` capability flag — algorithms without
        it (per-component χ palettes) skip the repair ladder and resolve
        on every conflicting update.
    config:
        The :class:`repro.api.SolverConfig` used for full re-solves
        (default: ``algorithm="auto"`` with ``seed``).
    allow_resolve:
        When False, updates that would need a full re-solve (Δ changes)
        raise :class:`repro.errors.DeltaChangeError` instead, leaving the
        engine unchanged.
    validate:
        Re-validate the coloring after every applied update.  Repaired
        updates check only the **dirty region** — the recolored nodes
        plus the endpoints of inserted edges — via
        :func:`repro.graphs.validation.validate_coloring_region`
        (O(vol(region)); sound because the pre-update coloring was valid
        and nothing outside the region changed); full re-solves still
        pay the full O(n + m) :func:`validate_coloring` pass.
    """

    def __init__(
        self,
        graph: Graph,
        colors: Iterable[int],
        palette: int | None = None,
        *,
        algorithm: str = "auto",
        config: "Any | None" = None,
        seed: int = 0,
        allow_resolve: bool = True,
        validate: bool = False,
        validate_seed: bool = True,
    ):
        self._graph = graph
        self._colors = list(colors)
        self._delta = graph.max_degree()
        self.palette = palette if palette is not None else self._delta
        self.algorithm = algorithm
        self.seed = seed
        self.allow_resolve = allow_resolve
        self.validate = validate
        self._config = config
        self._last_dirty: list[int] | None = []
        if validate_seed:
            validate_coloring(graph, self._colors, max_colors=self.palette or None)
        self.totals: dict[str, Any] = {
            "ops": 0,
            "edges_added": 0,
            "edges_removed": 0,
            "conflicts": 0,
            "recolored": 0,
            "full_resolves": 0,
            "repair_modes": {},
            "max_repair_radius": 0,
            "rounds": 0,
        }

    @classmethod
    def from_result(
        cls, graph: Graph, result: "Any", **kwargs: Any
    ) -> "IncrementalColoring":
        """Seed the engine from a :class:`repro.api.ColoringResult` of
        ``graph`` (the solve is trusted: no seed re-validation)."""
        kwargs.setdefault("validate_seed", False)
        kwargs.setdefault("seed", result.seed if result.seed is not None else 0)
        kwargs.setdefault("algorithm", result.algorithm)
        return cls(graph, result.colors, result.palette, **kwargs)

    # -- views -------------------------------------------------------------

    @property
    def graph(self) -> Graph:
        return self._graph

    @property
    def colors(self) -> list[int]:
        """The current coloring (a copy; the engine owns its state)."""
        return list(self._colors)

    @property
    def delta(self) -> int:
        return self._delta

    @property
    def last_dirty_region(self) -> list[int] | None:
        """Nodes the last applied op may have affected (recolored nodes
        plus inserted-edge endpoints), or ``None`` after a full re-solve
        (every node is then suspect and only a full validation applies).
        """
        dirty = self._last_dirty
        return list(dirty) if dirty is not None else None

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"IncrementalColoring(n={self._graph.n}, m={self._graph.num_edges}, "
            f"Δ={self._delta}, palette={self.palette}, ops={self.totals['ops']})"
        )

    # -- operations --------------------------------------------------------

    def insert_edge(self, u: int, v: int) -> UpdateOutcome:
        """Insert ``{u, v}``, repairing any conflict it creates."""
        return self._apply("insert", [(u, v)], [])

    def delete_edge(self, u: int, v: int) -> UpdateOutcome:
        """Delete ``{u, v}`` (never creates conflicts; may lower Δ)."""
        return self._apply("delete", [], [(u, v)])

    def batch_update(
        self,
        added: Iterable[tuple[int, int]] = (),
        removed: Iterable[tuple[int, int]] = (),
    ) -> UpdateOutcome:
        """Apply a whole delta atomically: one new graph, all conflicts
        detected against it, one repair pass."""
        return self._apply("batch", list(added), list(removed))

    # -- internals ---------------------------------------------------------

    def _apply(
        self,
        op: str,
        added: list[tuple[int, int]],
        removed: list[tuple[int, int]],
    ) -> UpdateOutcome:
        started = time.perf_counter()
        new_graph = self._updated_graph(added, removed)
        outcome = UpdateOutcome(
            op=op, edges_added=len(added), edges_removed=len(removed)
        )
        new_delta = new_graph.max_degree()
        colors = list(self._colors)
        # Dirty region of this op: inserted-edge endpoints plus whatever
        # the repair recolors; None marks "everything" (full re-solve).
        dirty: set[int] | None = {v for edge in added for v in edge}
        if (
            new_delta != self._delta and self.palette == self._delta
        ) or new_delta > self.palette:
            # The Δ-coloring contract moved (palette must track Δ): a rise
            # leaves the old colors proper but under-uses the new palette's
            # guarantees, a fall makes the old palette illegal; and any
            # palette below the new Δ voids the repair ladder's guarantees
            # outright.  Only a fresh solve restores the contract.
            self._resolve(new_graph, outcome, reason=f"delta {self._delta}->{new_delta}")
            dirty = None
        else:
            conflicts = [
                (u, v)
                for u, v in added
                if colors[u] == colors[v] and colors[u] != UNCOLORED
            ]
            outcome.conflicts = len(conflicts)
            if conflicts and not self._spec_supports_incremental():
                self._resolve(new_graph, outcome, reason="algorithm-unsupported")
                dirty = None
            elif conflicts:
                uncolor = self._minimal_uncolor_set(conflicts, new_graph, colors)
                before = list(colors)
                try:
                    self._repair(new_graph, colors, uncolor, outcome)
                except ReproError:
                    # Repair stalled (e.g. the delta carved out a clique
                    # component): last rung of the ladder.
                    self._resolve(new_graph, outcome, reason="repair-stalled")
                    dirty = None
                else:
                    changed = [
                        v for v, (a, b) in enumerate(zip(before, colors)) if a != b
                    ]
                    outcome.recolored_count = len(changed)
                    dirty.update(changed)
                    self._commit(new_graph, colors, new_delta)
            else:
                self._commit(new_graph, colors, new_delta)
        self._last_dirty = sorted(dirty) if dirty is not None else None
        outcome.delta = self._delta
        outcome.palette = self.palette
        if self.validate:
            if dirty is None:
                validate_coloring(
                    self._graph, self._colors, max_colors=self.palette or None
                )
            else:
                validate_coloring_region(
                    self._graph, self._colors, dirty,
                    max_colors=self.palette or None,
                )
        outcome.wall_time_s = time.perf_counter() - started
        self._accumulate(outcome)
        return outcome

    def _updated_graph(
        self, added: list[tuple[int, int]], removed: list[tuple[int, int]]
    ) -> Graph:
        """Delta application with the typed rejection contract."""
        offsets, indices = self._graph.csr()
        n = self._graph.n
        for u, v in removed:
            if not (0 <= u < n and 0 <= v < n) or (
                v not in indices[offsets[u] : offsets[u + 1]]
            ):
                raise EdgeNotPresentError(
                    f"cannot delete edge ({u}, {v}): not present"
                )
        seen_batch: set[tuple[int, int]] = set()
        for u, v in added:
            key = (u, v) if u < v else (v, u)
            if (
                0 <= u < n
                and 0 <= v < n
                and (v in indices[offsets[u] : offsets[u + 1]] or key in seen_batch)
            ):
                raise EdgeAlreadyPresentError(
                    f"cannot insert edge ({u}, {v}): already present"
                )
            seen_batch.add(key)
        # Range errors and self-loops keep their GraphError identity from
        # the graph layer; presence/absence got the typed treatment above.
        return self._graph.apply_updates(added, removed)

    def _spec_supports_incremental(self) -> bool:
        from repro.api.registry import get_algorithm

        try:
            return get_algorithm(self.algorithm).supports_incremental
        except ReproError:
            # Unknown (e.g. third-party unregistered) seed algorithm:
            # assume repairable — the resolve rung still backstops it.
            return True

    def _minimal_uncolor_set(
        self,
        conflicts: list[tuple[int, int]],
        graph: Graph,
        colors: list[int],
    ) -> list[int]:
        """A small vertex set hitting every conflict edge.

        Greedy max-multiplicity vertex cover over the conflict edges: for
        single-edge updates this is one endpoint (preferring one with
        degree < palette, where a free color is guaranteed); for batches
        a shared endpoint of k conflicts is uncolored once instead of k
        times.
        """
        remaining = list(conflicts)
        uncolor: list[int] = []
        while remaining:
            multiplicity: dict[int, int] = {}
            for u, v in remaining:
                multiplicity[u] = multiplicity.get(u, 0) + 1
                multiplicity[v] = multiplicity.get(v, 0) + 1
            best = max(
                multiplicity,
                key=lambda x: (
                    multiplicity[x],
                    graph.degree(x) < self.palette,  # free color guaranteed
                    -x,
                ),
            )
            uncolor.append(best)
            remaining = [e for e in remaining if best not in e]
        return uncolor

    def _repair(
        self,
        graph: Graph,
        colors: list[int],
        uncolor: list[int],
        outcome: UpdateOutcome,
    ) -> None:
        """Rungs 1–2 of the ladder for every uncolored node (mutates
        ``colors``; raises on stall, caller falls to rung 3)."""
        for v in uncolor:
            colors[v] = UNCOLORED
        adj = graph.adj
        for v in uncolor:
            used = {colors[w] for w in adj[v] if colors[w] != UNCOLORED}
            free = next(
                (c for c in range(1, self.palette + 1) if c not in used), None
            )
            if free is not None:
                colors[v] = free
                outcome.repair_modes["greedy"] = (
                    outcome.repair_modes.get("greedy", 0) + 1
                )
                outcome.rounds += 1
                continue
            fix = fix_uncolored_node(graph, colors, v, max_colors=self.palette)
            outcome.repair_modes[fix.mode] = (
                outcome.repair_modes.get(fix.mode, 0) + 1
            )
            outcome.max_repair_radius = max(outcome.max_repair_radius, fix.radius)
            outcome.rounds += fix.rounds

    def _resolve(
        self, graph: Graph, outcome: UpdateOutcome, reason: str
    ) -> None:
        """Rung 3: full re-solve of the new graph through the facade."""
        if not self.allow_resolve:
            raise DeltaChangeError(
                f"update needs a full re-solve ({reason}) but the engine "
                "was built with allow_resolve=False"
            )
        from repro.api import SolverConfig, solve

        config = self._config
        if config is None:
            config = SolverConfig(algorithm="auto", seed=self.seed)
        before = self._colors
        result = solve(graph, config)
        outcome.full_resolve = True
        outcome.resolve_reason = reason
        outcome.rounds += result.rounds
        outcome.recolored_count = sum(
            1 for a, b in zip(before, result.colors) if a != b
        )
        self.algorithm = result.algorithm
        self.palette = result.palette
        self._commit(graph, list(result.colors), graph.max_degree())

    def _commit(self, graph: Graph, colors: list[int], delta: int) -> None:
        self._graph = graph
        self._colors = colors
        self._delta = delta

    def _accumulate(self, outcome: UpdateOutcome) -> None:
        totals = self.totals
        totals["ops"] += 1
        totals["edges_added"] += outcome.edges_added
        totals["edges_removed"] += outcome.edges_removed
        totals["conflicts"] += outcome.conflicts
        totals["recolored"] += outcome.recolored_count
        totals["full_resolves"] += outcome.full_resolve
        totals["rounds"] += outcome.rounds
        totals["max_repair_radius"] = max(
            totals["max_repair_radius"], outcome.max_repair_radius
        )
        for mode, count in outcome.repair_modes.items():
            totals["repair_modes"][mode] = (
                totals["repair_modes"].get(mode, 0) + count
            )
