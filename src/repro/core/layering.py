"""The layering technique (Section 1.3 / Section 3).

Pick a base layer B_0; define B_i = nodes at distance exactly i from B_0;
remove all layers; later, add them back in reverse order, where coloring
layer B_i (i >= 1) is a (deg+1)-list coloring instance on G[B_i] because
every node of B_i keeps an uncolored neighbour in B_{i-1} until B_{i-1}'s
turn.  B_0 itself is colored last by a technique that depends on how it
was chosen (degree-choosability for the randomized algorithms' DCC base
layer, Theorem 5 token walks for the deterministic algorithm's ruling
forest).

This module provides the two generic halves — building layers and
reverse-coloring them with a pluggable (deg+1)-list engine; the base-layer
coloring lives with each algorithm.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Literal

from repro.errors import AlgorithmContractError
from repro.graphs.bfs import distance_layers
from repro.graphs.graph import Graph
from repro.graphs.validation import UNCOLORED
from repro.local.rounds import RoundLedger
from repro.primitives.list_coloring import (
    list_coloring_deterministic,
    list_coloring_hybrid,
    list_coloring_random,
)

__all__ = ["ListEngine", "LayerColoringReport", "build_layers", "color_layers_in_reverse"]

ListEngine = Literal["random", "hybrid", "deterministic"]


@dataclass
class LayerColoringReport:
    """Statistics of one reverse-layer-coloring pass."""

    layers_colored: int = 0
    total_iterations: int = 0
    max_iterations_per_layer: int = 0
    gather_rounds: int = 0


def build_layers(
    graph: Graph,
    base: set[int],
    max_depth: int | None = None,
    allowed: set[int] | None = None,
) -> list[list[int]]:
    """Layers ``[B_0, B_1, ..]`` by exact distance from ``base``.

    Thin wrapper over :func:`repro.graphs.bfs.distance_layers`, kept for
    vocabulary symmetry with the paper.
    """
    return distance_layers(graph, base, max_depth=max_depth, allowed=allowed)


def color_layers_in_reverse(
    graph: Graph,
    colors: list[int],
    layers: list[list[int]],
    max_colors: int,
    engine: ListEngine,
    ledger: RoundLedger,
    rng: random.Random | None = None,
    base_colors: list[int] | None = None,
    palette: int | None = None,
    include_layer_zero: bool = False,
    strict: bool = False,
) -> LayerColoringReport:
    """Color ``layers[s], .., layers[1]`` (optionally also ``layers[0]``)
    in reverse order with the chosen (deg+1)-list engine.

    ``include_layer_zero`` is used by phase (7), where C_0's slack
    guarantees (T-nodes / boundary) make C_0 itself a valid deg+1
    instance; the B/D layerings instead color their layer 0 by
    degree-choosability and pass False.

    In strict mode, verifies the structural contract before each layer:
    every node of layer i has a neighbour in layer i-1 (its uncolored
    lower neighbour at coloring time).
    """
    rng = rng if rng is not None else random.Random(0)
    if engine == "deterministic" and (base_colors is None or palette is None):
        raise AlgorithmContractError("deterministic engine needs base_colors + palette")
    report = LayerColoringReport()
    last = 0 if include_layer_zero else 1
    for index in range(len(layers) - 1, last - 1, -1):
        layer = layers[index]
        if not layer:
            continue
        if strict and index >= 1:
            previous = set(layers[index - 1])
            for v in layer:
                if not any(u in previous for u in graph.adj[v]):
                    raise AlgorithmContractError(
                        f"layer {index} node {v} has no neighbour in layer {index - 1}"
                    )
            for v in layer:
                if colors[v] != UNCOLORED:
                    raise AlgorithmContractError(
                        f"layer {index} node {v} is already colored"
                    )
        targets = set(layer)
        if engine == "random":
            stats = list_coloring_random(
                graph, colors, targets, max_colors, ledger, rng, strict=strict
            )
        elif engine == "hybrid":
            stats = list_coloring_hybrid(
                graph, colors, targets, max_colors, ledger, rng, strict=strict
            )
        else:
            stats = list_coloring_deterministic(
                graph, colors, targets, max_colors, base_colors, palette, ledger,
                strict=strict,
            )
        report.layers_colored += 1
        report.total_iterations += stats.iterations
        report.max_iterations_per_layer = max(
            report.max_iterations_per_layer, stats.iterations
        )
        report.gather_rounds += stats.gather_rounds
    return report
