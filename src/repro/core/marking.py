"""The marking process (Section 2.2; phase (4) of the randomized algorithm).

Each node of the remainder graph H selects itself independently with
probability p.  A selected node that sees another selected node within the
*backoff distance* b unselects itself; every surviving selected node picks
two random non-adjacent H-neighbours and colors them with color one — the
survivor becomes a **T-node** (a node with two equally-colored neighbours,
which is guaranteed a free color whenever it is colored last among its
neighbours), the two neighbours are **marked**.

The paper's parameters (b = 6 for Δ >= 4, b = 12 for Δ = 3; p = Δ^{-b})
make the w.h.p. statements of Lemmas 23/31 true asymptotically but select
essentially zero nodes at any feasible n; :func:`default_selection_probability`
provides the practical preset (documented in DESIGN.md §4.5): p ≈ 1.3 /
E[|B_b(v)|], which maximises the survivor density of the backoff process.

Backoff >= 5 is enforced: it guarantees marked nodes of distinct survivors
are never adjacent (survivors are > b apart, marks hang one hop off their
survivor), which both keeps the color-1 partial coloring proper and rules
out the pathological leftover components discussed in
``repro.core.small_components``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import AlgorithmContractError
from repro.graphs.graph import Graph
from repro.graphs.validation import UNCOLORED
from repro.local.rounds import RoundLedger

__all__ = ["MarkingOutcome", "marking_process", "default_selection_probability"]

MARK_COLOR = 1


@dataclass
class MarkingOutcome:
    """Result of the marking process.

    ``t_nodes`` maps each surviving selected node to its two marked
    neighbours; ``marked`` is the set of marked nodes (colored 1);
    ``initially_selected`` / ``backed_off`` are counters for experiment E7.
    """

    t_nodes: dict[int, tuple[int, int]] = field(default_factory=dict)
    marked: set[int] = field(default_factory=set)
    initially_selected: int = 0
    backed_off: int = 0
    no_pair_available: int = 0
    rounds: int = 0


def default_selection_probability(delta: int, backoff: int) -> float:
    """Practical selection probability ≈ 1.3 / E[ball size at the backoff
    radius] — the maximiser of p·(1-p)^{|B_b|} for the survival process."""
    ball = 1 + delta * sum((max(1, delta - 1)) ** i for i in range(backoff))
    return min(0.25, 1.3 / ball)


def marking_process(
    graph: Graph,
    h_nodes: set[int],
    colors: list[int],
    p: float,
    backoff: int,
    rng: random.Random | None = None,
    ledger: RoundLedger | None = None,
) -> MarkingOutcome:
    """Run the marking process on the remainder graph H (phase (4)).

    Precondition: every node of ``h_nodes`` is uncolored.  Mutates
    ``colors`` (marked nodes receive color 1).  Charges ``backoff + 2``
    rounds: the backoff conflict flood plus the pick/mark exchange.
    """
    rng = rng if rng is not None else random.Random(0)
    ledger = ledger if ledger is not None else RoundLedger()
    if backoff < 5:
        raise AlgorithmContractError(
            f"backoff must be >= 5 to keep marks of distinct T-nodes "
            f"non-adjacent (got {backoff})"
        )
    for v in h_nodes:
        if colors[v] != UNCOLORED:
            raise AlgorithmContractError(f"marking precondition: node {v} is colored")
    outcome = MarkingOutcome()
    ledger.charge(backoff + 2)
    outcome.rounds = backoff + 2

    h_mask = bytearray(graph.n)
    for v in h_nodes:
        h_mask[v] = 1
    selected = {v for v in h_nodes if rng.random() < p}
    outcome.initially_selected = len(selected)
    survivors = _without_close_pairs(graph, selected, backoff, h_mask)
    outcome.backed_off = len(selected) - len(survivors)

    adj = graph.adj
    adj_sets = graph.adjacency_sets()
    for v in sorted(survivors):
        neighbors = [u for u in adj[v] if h_mask[u]]
        pair = _random_non_adjacent_pair(neighbors, adj_sets, rng)
        if pair is None:
            outcome.no_pair_available += 1
            continue
        u1, u2 = pair
        colors[u1] = MARK_COLOR
        colors[u2] = MARK_COLOR
        outcome.t_nodes[v] = (u1, u2)
        outcome.marked.add(u1)
        outcome.marked.add(u2)
    return outcome


def _without_close_pairs(
    graph: Graph, selected: set[int], backoff: int, allowed: bytearray
) -> set[int]:
    """Selected nodes with no other selected node within ``backoff`` hops
    (distance measured inside H): the mutual-unselection rule.

    Implemented as ``backoff`` rounds of best-two-labels propagation: every
    node tracks the two closest selected nodes with *distinct* identities;
    a selected node survives iff its second-closest selected node (the
    closest one is itself, at distance 0) is farther than ``backoff``.
    ``allowed`` is a byte mask of the remainder graph H (mask probes are
    the inner-loop operation of the flood).
    """
    if not selected:
        return set()
    adj = graph.adj
    # labels[v] = up to two (dist, source) pairs with distinct sources.
    labels: dict[int, list[tuple[int, int]]] = {v: [(0, v)] for v in selected}
    for _ in range(backoff):
        updates: dict[int, list[tuple[int, int]]] = {}
        for v, pairs in labels.items():
            for u in adj[v]:
                if not allowed[u]:
                    continue
                incoming = [(d + 1, s) for d, s in pairs]
                if incoming:
                    updates.setdefault(u, []).extend(incoming)
        for u, incoming in updates.items():
            merged = labels.get(u, []) + incoming
            best: dict[int, int] = {}
            for d, s in merged:
                if s not in best or d < best[s]:
                    best[s] = d
            top_two = sorted(((d, s) for s, d in best.items()))[:2]
            labels[u] = top_two
    survivors = set()
    for v in selected:
        others = [d for d, s in labels.get(v, []) if s != v]
        if not others or min(others) > backoff:
            survivors.add(v)
    return survivors


def _random_non_adjacent_pair(
    neighbors: list[int], adj_sets: list[set[int]], rng: random.Random
) -> tuple[int, int] | None:
    """A uniformly random non-adjacent pair among ``neighbors`` (or None if
    the neighbourhood is a clique — then the node cannot become a T-node,
    cf. Lemma 13: clique neighbourhoods occur exactly where the graph is
    locally DCC-free)."""
    pairs = [
        (a, b)
        for i, a in enumerate(neighbors)
        for b in neighbors[i + 1:]
        if b not in adj_sets[a]
    ]
    if not pairs:
        return None
    return pairs[rng.randrange(len(pairs))]
