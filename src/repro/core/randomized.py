"""The randomized Δ-coloring algorithms (Section 4; Theorems 1 and 3).

Both variants follow the paper's nine phases:

I   Removing degree-choosable components with small radius
    (1) per-node DCC selection at radius r_dcc;
    (2) ruling set of the virtual graph G_DCC → base layer B0;
    (3) B-layers by distance to B0; remove B0..Bs.
II  Shattering of the remaining graph H
    (4) the marking process (selection probability p, backoff b) creates
        T-nodes;
    (5) happiness layers C_0..C_{2r} (boundary handling included);
    (6) small leftover components are colored (skipped when L = ∅, which
        is the designed-for case of the small-Δ variant, Lemma 31).
III Color happy nodes (7): C-layers in reverse (including C_0 — its
    T-node/boundary slack makes it a deg+1 instance too).
IV  Color DCC layers (8): B-layers in reverse; (9) B0's components by
    degree-choosability (they are pairwise non-adjacent by the ruling
    property).

Variant differences (paper: r = O(1) for Δ >= 4 vs r = Θ(log log n) for
Δ = O(1); engines of Theorems 18/19) are captured by
:class:`RandomizedParams` presets; DESIGN.md §4.5 explains why the
selection probability and radii use practical presets instead of the
asymptotic constants, and how the counted-and-reported fallbacks keep the
pipeline correct on every seed.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from repro.errors import AlgorithmContractError
from repro.core.dcc import detect_dccs, virtual_graph_ruling_set
from repro.core.degree_choosable import degree_list_color
from repro.core.happiness import build_happiness_layers
from repro.core.layering import color_layers_in_reverse
from repro.core.marking import default_selection_probability, marking_process
from repro.core.small_components import SmallComponentsReport, color_small_components
from repro.graphs.bfs import distance_layers
from repro.graphs.graph import Graph
from repro.graphs.properties import assert_nice
from repro.graphs.validation import UNCOLORED, validate_coloring
from repro.local.rounds import RoundLedger
from repro.primitives.linial import linial_coloring

__all__ = [
    "RandomizedParams",
    "DeltaColoringResult",
    "delta_coloring_randomized",
    "delta_coloring_small_delta",
    "delta_coloring_large_delta",
]


@dataclass
class RandomizedParams:
    """Tunable knobs of the randomized pipeline.

    ``dcc_radius`` — phase (1) detection radius r; the paper uses O(1) for
    Δ >= 4 and Θ(log log n) for small Δ.
    ``backoff`` — marking backoff b (>= 5 enforced; paper: 6 or 12).
    ``selection_p`` — phase (4) selection probability (None = practical
    preset ≈ 1.3/E|B_b|; the paper's Δ^{-b} is reported alongside in
    EXPERIMENTS.md).
    ``happiness_radius`` — the r of phase (5); None = auto-tuned so that
    the expected number of T-nodes within distance r is ≈ ``coverage_goal``.
    ``engine`` — per-layer list-coloring engine ("hybrid" matches Theorem
    19's shape; "deterministic" matches Theorem 18's).
    """

    dcc_radius: int = 2
    backoff: int = 6
    selection_p: float | None = None
    happiness_radius: int | None = None
    coverage_goal: float = 6.0
    engine: str = "hybrid"
    seed: int = 0
    strict: bool = False

    @staticmethod
    def small_delta(n: int, delta: int, seed: int = 0, strict: bool = False) -> "RandomizedParams":
        """Theorem 1 preset: detection radius grows with log log n,
        deterministic (n-independent) per-layer engine."""
        loglog = max(1.0, math.log2(max(2.0, math.log2(max(4, n)))))
        return RandomizedParams(
            dcc_radius=max(2, min(5, round(loglog / 2) + 1)),
            backoff=6,
            engine="deterministic",
            seed=seed,
            strict=strict,
        )

    @staticmethod
    def large_delta(n: int, delta: int, seed: int = 0, strict: bool = False) -> "RandomizedParams":
        """Theorem 3 preset: constant detection radius, hybrid
        (O(log Δ)-shaped) per-layer engine."""
        return RandomizedParams(
            dcc_radius=2,
            backoff=6 if delta >= 4 else 6,
            engine="hybrid",
            seed=seed,
            strict=strict,
        )


@dataclass
class DeltaColoringResult:
    """Output of an end-to-end Δ-coloring run.

    ``rounds`` is the LOCAL total; ``phase_rounds`` the paper's cost
    decomposition; ``stats`` carries the structural quantities the
    benchmarks tabulate (DCC counts, T-node counts, leftover component
    sizes, fallbacks).
    """

    colors: list[int]
    delta: int
    rounds: int
    phase_rounds: dict[str, int] = field(default_factory=dict)
    stats: dict[str, object] = field(default_factory=dict)
    phase_wall: dict[str, float] = field(default_factory=dict)


def delta_coloring_small_delta(
    graph: Graph, seed: int = 0, strict: bool = False,
    params: RandomizedParams | None = None,
) -> DeltaColoringResult:
    """Theorem 1 / Corollary 2: randomized Δ-coloring tuned for Δ = O(1).

    Requires a nice graph with Δ >= 3.
    """
    delta = graph.max_degree()
    if delta < 3:
        raise AlgorithmContractError(f"small-Δ algorithm needs Δ >= 3, got {delta}")
    if params is None:
        params = RandomizedParams.small_delta(graph.n, delta, seed=seed, strict=strict)
    return delta_coloring_randomized(graph, params)


def delta_coloring_large_delta(
    graph: Graph, seed: int = 0, strict: bool = False,
    params: RandomizedParams | None = None,
) -> DeltaColoringResult:
    """Theorem 3: randomized Δ-coloring for Δ >= 4.

    Requires a nice graph with Δ >= 4.
    """
    delta = graph.max_degree()
    if delta < 4:
        raise AlgorithmContractError(f"large-Δ algorithm needs Δ >= 4, got {delta}")
    if params is None:
        params = RandomizedParams.large_delta(graph.n, delta, seed=seed, strict=strict)
    return delta_coloring_randomized(graph, params)


def delta_coloring_randomized(
    graph: Graph, params: RandomizedParams
) -> DeltaColoringResult:
    """The nine-phase randomized Δ-coloring pipeline (see module docstring).

    Validates the final coloring unconditionally; in ``params.strict`` mode
    additionally checks every per-phase contract.
    """
    assert_nice(graph)
    delta = graph.max_degree()
    n = graph.n
    rng = random.Random(params.seed)
    ledger = RoundLedger()
    colors = [UNCOLORED] * n
    stats: dict[str, object] = {}

    # Phase 0: Linial base coloring for symmetry breaking.
    with ledger.phase("0:linial"):
        linial = linial_coloring(graph, ledger)
    base_colors, palette = linial.colors, linial.palette
    stats["linial_palette"] = palette
    stats["linial_iterations"] = linial.iterations

    # Phases (1)+(2): DCC detection and base layer B0.
    r_dcc = params.dcc_radius
    with ledger.phase("1:dcc-detect"):
        detection = detect_dccs(graph, r_dcc, ledger=ledger)
    stats["num_dccs"] = len(detection.dccs)
    stats["nodes_in_dccs"] = len(detection.nodes_in_dccs)
    with ledger.phase("2:dcc-ruling-set"):
        chosen, vr_iterations = virtual_graph_ruling_set(
            graph, detection.dccs, rounds_per_virtual=max(1, 2 * r_dcc + 1),
            ledger=ledger, rng=rng,
        )
    base_layer = {v for idx in chosen for v in detection.dccs[idx]}
    stats["b0_components"] = len(chosen)
    stats["b0_size"] = len(base_layer)
    stats["virtual_ruling_iterations"] = vr_iterations

    # Phase (3): B-layers.  Depth covers every DCC-selecting node: a
    # non-chosen DCC conflicts with a chosen one, so its nodes lie within
    # (diameter + 1 + diameter) <= 4·r_dcc + 1 of B0.
    s_depth = 4 * r_dcc + 2
    with ledger.phase("3:b-layers"):
        ledger.charge(s_depth)
        b_layers = (
            distance_layers(graph, base_layer, max_depth=s_depth) if base_layer else []
        )
    layered_b = {v for layer in b_layers for v in layer}
    if params.strict and not detection.nodes_in_dccs <= layered_b | (set() if base_layer else detection.nodes_in_dccs):
        raise AlgorithmContractError("phase 3 failed to cover all DCC nodes")
    if params.strict and base_layer:
        uncovered = detection.nodes_in_dccs - layered_b
        if uncovered:
            raise AlgorithmContractError(
                f"phase 3 left {len(uncovered)} DCC nodes outside the B-layers"
            )
    h_nodes = {v for v in range(n) if v not in layered_b}
    stats["h_size"] = len(h_nodes)

    # Phase (4): marking.
    p = params.selection_p
    if p is None:
        p = default_selection_probability(delta, params.backoff)
    with ledger.phase("4:marking"):
        marking = marking_process(
            graph, h_nodes, colors, p, params.backoff, rng, ledger
        )
    stats["selection_p"] = p
    stats["t_nodes"] = len(marking.t_nodes)
    stats["marked"] = len(marking.marked)
    stats["initially_selected"] = marking.initially_selected
    stats["backed_off"] = marking.backed_off

    # Phase (5): happiness layers.
    r_happy = params.happiness_radius
    if r_happy is None:
        r_happy = _auto_happiness_radius(graph, delta, p, params.backoff, params.coverage_goal)
    with ledger.phase("5:happiness-layers"):
        happiness = build_happiness_layers(
            graph, colors, h_nodes, marking, delta, r_happy, ledger
        )
    stats["happiness_radius"] = r_happy
    stats["c_layers"] = len(happiness.layers)
    stats["leftover_nodes"] = len(happiness.leftover)
    stats["uncolored_marks"] = happiness.uncolored_marks

    # Phase (6): small components.
    with ledger.phase("6:small-components"):
        if happiness.leftover:
            small_report = color_small_components(
                graph, colors, happiness.leftover, delta,
                dcc_radius=max(2, r_dcc), ledger=ledger, rng=rng,
                engine=params.engine, base_colors=base_colors, palette=palette,
                strict=params.strict,
            )
        else:
            small_report = SmallComponentsReport()
    stats["leftover_components"] = len(small_report.component_sizes)
    stats["leftover_max_component"] = max(small_report.component_sizes, default=0)
    stats["fallbacks"] = small_report.fallbacks

    # Phase (7): C-layers in reverse, including C_0.
    with ledger.phase("7:c-layers"):
        color_layers_in_reverse(
            graph, colors, happiness.layers, delta, params.engine, ledger, rng,
            base_colors=base_colors, palette=palette,
            include_layer_zero=True, strict=params.strict,
        )

    # Phase (8): B-layers in reverse.
    with ledger.phase("8:b-layers"):
        color_layers_in_reverse(
            graph, colors, b_layers, delta, params.engine, ledger, rng,
            base_colors=base_colors, palette=palette,
            include_layer_zero=False, strict=params.strict,
        )

    # Phase (9): B0 components by degree-choosability.
    with ledger.phase("9:b0"):
        costs = []
        for idx in chosen:
            block = set(detection.dccs[idx])
            _color_base_component(graph, colors, block, delta)
            costs.append(2 * r_dcc + 1)
        ledger.charge_max(costs)

    validate_coloring(graph, colors, max_colors=delta)
    return DeltaColoringResult(
        colors=colors,
        delta=delta,
        rounds=ledger.total_rounds,
        phase_rounds=ledger.snapshot(),
        stats=stats,
        phase_wall=ledger.wall_snapshot(),
    )


def _auto_happiness_radius(
    graph: Graph, delta: int, p: float, backoff: int, coverage_goal: float
) -> int:
    """Radius r such that a radius-r ball is expected to contain about
    ``coverage_goal`` surviving T-nodes.

    Survival probability of a selected node ≈ (1-p)^{|B_b|}; ball sizes
    use the (Δ-1)-ary growth estimate of Lemmas 12/14.  Clamped to
    [4, 24]; the 2r BFS depth of phase (5) is the dominant cost this knob
    controls, and experiment E1's measured growth in n comes from it.
    """
    growth = max(2, delta - 1)
    ball_b = 1 + delta * sum(growth ** i for i in range(backoff))
    survive = (1 - p) ** ball_b
    density = max(p * survive * 0.5, 1e-12)
    need = coverage_goal / density
    r = 1
    ball = 1.0
    frontier = float(delta)
    while ball < need and r < 24:
        ball += frontier
        frontier *= growth
        r += 1
    return max(4, r)


def _color_base_component(
    graph: Graph, colors: list[int], block: set[int], max_colors: int
) -> None:
    """Phase (9): color one base-layer DCC by degree-choosability."""
    sub, originals = graph.subgraph(sorted(block))
    adj = graph.adj
    lists = []
    for u in originals:
        taken = {
            colors[w]
            for w in adj[u]
            if colors[w] != UNCOLORED and w not in block
        }
        lists.append({c for c in range(1, max_colors + 1) if c not in taken})
    assignment = degree_list_color(sub, lists)
    for i, u in enumerate(originals):
        colors[u] = assignment[i]
