"""SLOCAL Δ-coloring (Remark 17): Theorem 5 as a sequential-local algorithm.

Process the nodes in an arbitrary (even adversarial) order.  Each node,
when processed:

1. takes a free color if one exists among its already-colored neighbours
   (locality 1);
2. otherwise runs the Theorem 5 token walk — moving the "uncolored token"
   toward a deficient node, an uncolored region, or a degree-choosable
   component, recoloring only inside the walk's ball.

Lemma 16 bounds every walk by 2·log_{Δ-1} n, so the whole execution is an
SLOCAL(O(log_Δ n)) algorithm — the paper's Remark 17.  The returned
:class:`repro.local.slocal.SLocalRun` certifies the locality actually
used, which the tests compare against the bound.
"""

from __future__ import annotations

from repro.core.brooks import default_fix_radius, fix_uncolored_node
from repro.graphs.graph import Graph
from repro.graphs.properties import assert_nice
from repro.graphs.validation import UNCOLORED, validate_coloring
from repro.local.rounds import RoundLedger
from repro.local.slocal import SLocalRun, SLocalSimulator

__all__ = ["slocal_delta_coloring"]


def slocal_delta_coloring(
    graph: Graph, order: list[int] | None = None
) -> tuple[list[int], SLocalRun]:
    """Δ-color a nice graph in the SLOCAL model (Remark 17).

    ``order`` is the adversarial processing order (default: by id).
    Returns ``(colors, run)`` where ``run`` certifies the per-node
    locality; the maximum is O(log_Δ n) by Lemma 16.
    """
    assert_nice(graph)
    delta = graph.max_degree()
    sequence = order if order is not None else list(range(graph.n))
    colors = [UNCOLORED] * graph.n
    bound = default_fix_radius(graph.n, delta)

    def step(v: int, g: Graph, outputs: list[int]) -> tuple[set[int], int]:
        if outputs[v] != UNCOLORED:
            return set(), 0
        before = list(outputs)
        result = fix_uncolored_node(
            g, outputs, v, delta, max_radius=bound, ledger=RoundLedger()
        )
        written = {u for u in range(g.n) if outputs[u] != before[u]}
        written.add(v)
        # The walk reads the balls it searched: bounded by the result
        # radius plus one search ring.
        return written, max(1, result.radius + 1)

    simulator = SLocalSimulator(graph)
    run = simulator.run(sequence, step, colors)
    validate_coloring(graph, colors, max_colors=delta)
    return colors, run
