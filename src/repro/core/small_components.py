"""Coloring the small leftover components (Section 4.3, phase (6)).

After the shattering phases (4)-(5), the unhappy remainder L consists of
small connected components w.h.p. (Lemmas 23/24).  Each component C is
colored *before* the C-layers, while its surroundings look like:

* neighbours inside C — uncolored;
* neighbours in the outermost happiness layer C_{2r} — uncolored (colored
  later, in phase (7)): these make a node *free*;
* marked neighbours — colored 1 (fixed).

The paper's per-component algorithm (Section 4.3) is reproduced:

1. free nodes (degree < Δ, or an uncolored neighbour outside C) select
   themselves; nodes in a DCC of radius <= R select one;
2. a ruling set M' of the virtual graph C_DCC (free nodes + DCCs) is
   computed (virtual Luby, as in phase (2));
3. D-layers by distance to M'; layers are colored in reverse as deg+1
   list instances; D_0's DCCs are colored by degree-choosability and its
   free nodes take their guaranteed free color.

Lemmas 26/27 guarantee (under the paper's asymptotic parameters) that D_0
is non-empty and the D-layers exhaust C.  With practical parameters either
can fail on unlucky components; the implementation then falls back to
solving C directly as a degree-list instance (fallbacks are counted and
reported — see DESIGN.md §4.5).  The backoff >= 5 invariant of the marking
process guarantees the fallback instance is feasible: marks of distinct
T-nodes are never adjacent, so a component squeezed between marks always
retains a DCC, a free node, or a degree-deficient node.

Components are node-disjoint and non-adjacent (maximal connected pieces of
L), so they are processed concurrently; the charged LOCAL cost is the max
of the per-component costs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import AlgorithmContractError, InfeasibleListColoringError
from repro.core.dcc import DCCScratch, detect_dccs, virtual_graph_ruling_set
from repro.core.degree_choosable import degree_list_color
from repro.core.layering import color_layers_in_reverse
from repro.graphs.bfs import distance_layers
from repro.graphs.graph import Graph
from repro.graphs.validation import UNCOLORED
from repro.local.rounds import RoundLedger

__all__ = ["SmallComponentsReport", "color_small_components"]


@dataclass
class SmallComponentsReport:
    """Statistics of phase (6) — experiment E7's component table.

    ``component_sizes`` is the size distribution the shattering lemma
    bounds; ``fallbacks`` counts components that needed the direct
    degree-list fallback; ``max_rounds`` is the charged (max) LOCAL cost.
    """

    component_sizes: list[int] = field(default_factory=list)
    free_node_components: int = 0
    dcc_components: int = 0
    fallbacks: int = 0
    max_rounds: int = 0


def color_small_components(
    graph: Graph,
    colors: list[int],
    leftover: set[int],
    delta: int,
    dcc_radius: int,
    ledger: RoundLedger,
    rng: random.Random | None = None,
    engine: str = "hybrid",
    base_colors: list[int] | None = None,
    palette: int | None = None,
    strict: bool = False,
) -> SmallComponentsReport:
    """Phase (6): Δ-color every component of ``leftover`` in place.

    ``engine`` selects the per-layer list-coloring engine ("hybrid",
    "random", or "deterministic" with ``base_colors``/``palette``).
    """
    rng = rng if rng is not None else random.Random(0)
    report = SmallComponentsReport()
    components = _components(graph, leftover)
    costs = []
    # One O(n) detection scratch shared by every per-component
    # detect_dccs call (components are tiny; the allocations were not).
    scratch = DCCScratch(graph.n)
    for component in components:
        report.component_sizes.append(len(component))
        local = RoundLedger()
        _color_component(
            graph, colors, component, delta, dcc_radius, local, rng,
            engine, base_colors, palette, strict, report, scratch,
        )
        costs.append(local.total_rounds)
    ledger.charge_max(costs)
    report.max_rounds = max(costs, default=0)
    return report


def _components(graph: Graph, members: set[int]) -> list[list[int]]:
    seen: set[int] = set()
    out = []
    for start in sorted(members):
        if start in seen:
            continue
        seen.add(start)
        stack = [start]
        component = [start]
        while stack:
            u = stack.pop()
            for w in graph.adj[u]:
                if w in members and w not in seen:
                    seen.add(w)
                    stack.append(w)
                    component.append(w)
        out.append(sorted(component))
    return out


def _color_component(
    graph: Graph,
    colors: list[int],
    component: list[int],
    delta: int,
    dcc_radius: int,
    ledger: RoundLedger,
    rng: random.Random,
    engine: str,
    base_colors: list[int] | None,
    palette: int | None,
    strict: bool,
    report: SmallComponentsReport,
    scratch: DCCScratch | None = None,
) -> None:
    member_set = set(component)

    free_nodes = _free_nodes(graph, colors, member_set, delta)
    if free_nodes:
        report.free_node_components += 1

    detection = detect_dccs(
        graph, dcc_radius, active=member_set, ledger=ledger, scratch=scratch
    )
    if detection.dccs:
        report.dcc_components += 1

    # Virtual graph C_DCC: DCC subgraphs plus free-node singletons.
    systems: list[tuple[int, ...]] = list(detection.dccs)
    systems.extend((v,) for v in sorted(free_nodes))
    if not systems:
        _fallback(graph, colors, component, delta, ledger, report)
        return

    chosen, _iterations = virtual_graph_ruling_set(
        graph, systems, rounds_per_virtual=max(1, 2 * dcc_radius + 1),
        ledger=ledger, rng=rng,
    )
    seeds = {v for idx in chosen for v in systems[idx]}

    layers = distance_layers(graph, seeds, allowed=member_set)
    covered = {v for layer in layers for v in layer}
    if covered != member_set:
        # Lemma 26 failed under practical parameters: direct fallback.
        _fallback(graph, colors, component, delta, ledger, report)
        return

    color_layers_in_reverse(
        graph, colors, layers, delta, engine, ledger, rng,
        base_colors=base_colors, palette=palette, strict=strict,
    )

    # D_0: chosen DCCs by degree-choosability, chosen free nodes greedily.
    costs = []
    for idx in chosen:
        system = systems[idx]
        if len(system) == 1:
            v = system[0]
            if not _take_available(graph, colors, v, delta):
                raise AlgorithmContractError(
                    f"free node {v} had no available color in D_0"
                )
            costs.append(1)
        else:
            _color_dcc(graph, colors, set(system), delta)
            costs.append(2 * dcc_radius + 1)
    ledger.charge_max(costs)

    if strict:
        for v in component:
            if colors[v] == UNCOLORED:
                raise AlgorithmContractError(f"component node {v} left uncolored")


def _free_nodes(
    graph: Graph, colors: list[int], member_set: set[int], delta: int
) -> set[int]:
    """Free nodes of the component: degree < Δ, or an uncolored neighbour
    outside the component (an outer-happiness-layer node, colored later)."""
    free = set()
    for v in member_set:
        if graph.degree(v) < delta:
            free.add(v)
            continue
        for u in graph.adj[v]:
            if u not in member_set and colors[u] == UNCOLORED:
                free.add(v)
                break
    return free


def _take_available(graph: Graph, colors: list[int], v: int, max_colors: int) -> bool:
    used = {colors[u] for u in graph.adj[v] if colors[u] != UNCOLORED}
    for c in range(1, max_colors + 1):
        if c not in used:
            colors[v] = c
            return True
    return False


def _color_dcc(graph: Graph, colors: list[int], block: set[int], max_colors: int) -> None:
    """Color an (uncolored) DCC by degree-choosability against its colored
    surroundings."""
    sub, originals = graph.subgraph(sorted(block))
    lists = []
    for u in originals:
        taken = {
            colors[w]
            for w in graph.adj[u]
            if colors[w] != UNCOLORED and w not in block
        }
        lists.append({c for c in range(1, max_colors + 1) if c not in taken})
    assignment = degree_list_color(sub, lists)
    for i, u in enumerate(originals):
        colors[u] = assignment[i]


def _fallback(
    graph: Graph,
    colors: list[int],
    component: list[int],
    delta: int,
    ledger: RoundLedger,
    report: SmallComponentsReport,
) -> None:
    """Direct resolution: gather the component, solve it as a degree-list
    instance against its colored boundary (marked nodes at color 1)."""
    report.fallbacks += 1
    member_set = set(component)
    sub, originals = graph.subgraph(component)
    lists = []
    for u in originals:
        taken = {
            colors[w]
            for w in graph.adj[u]
            if colors[w] != UNCOLORED and w not in member_set
        }
        lists.append({c for c in range(1, delta + 1) if c not in taken})
    try:
        assignment = degree_list_color(sub, lists)
    except InfeasibleListColoringError as error:
        raise AlgorithmContractError(
            f"leftover component of size {len(component)} is infeasible "
            f"against its marked boundary — the backoff >= 5 invariant "
            f"should make this impossible: {error}"
        ) from error
    for i, u in enumerate(originals):
        colors[u] = assignment[i]
    # Gathering cost: 2 · component radius + 1.
    from repro.graphs.bfs import bfs_distances

    leader = component[0]
    dist = bfs_distances(graph, [leader], allowed=member_set)
    radius = max(dist[v] for v in component)
    ledger.charge(2 * radius + 1)
