"""Coloring the graphs Brooks' theorem excludes, and whole-graph dispatch.

The Δ-coloring algorithms require *nice* graphs: connected and not a
clique, cycle, or path.  A downstream user, however, has arbitrary
graphs — possibly disconnected, possibly containing the excluded
families.  This module completes the library:

* :func:`color_special` — optimally colors the non-nice families:
  paths and even cycles with 2 colors, odd cycles with 3, cliques K_k
  with k (each matching its chromatic number; note χ = Δ+1 for odd
  cycles and cliques — exactly Brooks' exceptions);
* :func:`color_graph` — colors *any* graph, component by component:
  nice components get the paper's Δ-coloring (with the per-component Δ),
  excluded components get their optimal special coloring.  The round
  cost is the max over components (they run concurrently in LOCAL).

The LOCAL cost of the special families is honest: paths and cycles
genuinely need Θ(n) rounds to 2/3-color (this is the paper's remark that
"2-coloring graphs with Δ = 2 may need Ω(n) rounds"); cliques have
diameter 1 and cost O(1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import NotNiceGraphError
from repro.core.randomized import (
    RandomizedParams,
    delta_coloring_randomized,
)
from repro.graphs.graph import Graph
from repro.graphs.properties import (
    is_complete,
    is_cycle_graph,
    is_nice,
    is_path_graph,
)
from repro.graphs.validation import UNCOLORED, validate_coloring

__all__ = ["SpecialColoring", "color_special", "ComponentColoring", "color_graph"]


@dataclass
class SpecialColoring:
    """Result of coloring one of Brooks' excluded families."""

    colors: list[int]
    num_colors: int
    rounds: int
    family: str


def color_special(graph: Graph) -> SpecialColoring:
    """Optimally color a connected clique, cycle, or path.

    Raises :class:`NotNiceGraphError` if the graph is none of these (use
    the Δ-coloring algorithms instead), including the single-node /
    edgeless cases which are handled as trivial paths.
    """
    if graph.n == 0:
        return SpecialColoring(colors=[], num_colors=0, rounds=0, family="empty")
    if is_complete(graph):
        # Clique K_k: k colors; diameter 1, so ids order a 1-round greedy.
        colors = [v + 1 for v in range(graph.n)]
        return SpecialColoring(
            colors=colors, num_colors=graph.n, rounds=1, family="clique"
        )
    if is_path_graph(graph):
        colors = _two_color_from(graph, _path_endpoint(graph))
        return SpecialColoring(
            colors=colors, num_colors=min(2, max(1, graph.n)), rounds=graph.n,
            family="path",
        )
    if is_cycle_graph(graph):
        order = _walk_cycle(graph, 0)
        colors = [UNCOLORED] * graph.n
        for index, v in enumerate(order):
            colors[v] = 1 + index % 2
        if graph.n % 2 == 1:
            # Odd cycle: the walk's last node takes the third color.
            colors[order[-1]] = 3
            family, k = "odd-cycle", 3
        else:
            family, k = "even-cycle", 2
        validate_coloring(graph, colors, max_colors=k)
        return SpecialColoring(colors=colors, num_colors=k, rounds=graph.n, family=family)
    raise NotNiceGraphError(
        "graph is nice — use delta_color / delta_coloring_* instead"
    )


def _path_endpoint(graph: Graph) -> int:
    if graph.n == 1:
        return 0
    return next(v for v in range(graph.n) if graph.degree(v) == 1)


def _walk_cycle(graph: Graph, start: int) -> list[int]:
    """The cycle's nodes in traversal order starting at ``start``."""
    order = [start]
    previous, current = None, start
    while True:
        nxt = next(u for u in graph.adj[current] if u != previous)
        if nxt == start:
            return order
        order.append(nxt)
        previous, current = current, nxt


def _two_color_from(graph: Graph, start: int) -> list[int]:
    """Alternating 2-coloring by BFS parity from ``start`` (Θ(n) rounds in
    LOCAL — the information must traverse the whole path/cycle)."""
    colors = [UNCOLORED] * graph.n
    colors[start] = 1
    frontier = [start]
    while frontier:
        nxt = []
        for u in frontier:
            for w in graph.adj[u]:
                if colors[w] == UNCOLORED:
                    colors[w] = 3 - colors[u]
                    nxt.append(w)
        frontier = nxt
    return colors


@dataclass
class ComponentColoring:
    """Result of :func:`color_graph` on an arbitrary graph.

    ``num_colors`` is the global palette size (components share colors
    1..k); ``component_families`` counts how each component was handled;
    ``rounds`` is the max over components.
    """

    colors: list[int]
    num_colors: int
    rounds: int
    component_families: dict[str, int] = field(default_factory=dict)


def color_graph(graph: Graph, seed: int = 0, strict: bool = False) -> ComponentColoring:
    """Color an arbitrary graph with the fewest colors this library can
    guarantee per component: Δ_component for nice components (the paper's
    algorithms), χ for the excluded families.

    Components are independent in LOCAL, so they are colored concurrently
    and the cost is the slowest component.  This is also the natural
    *failure-handling* entry point: after crashed nodes are removed, the
    survivor graph is recolored per component (see
    ``tests/test_special_cases.py``).
    """
    result = ComponentColoring(colors=[UNCOLORED] * graph.n, num_colors=0, rounds=0)
    for component in graph.connected_components():
        sub, originals = graph.subgraph(component)
        if sub.n == 1:
            assignment, used, rounds, family = [1], 1, 0, "isolated"
        elif is_nice(sub):
            params = RandomizedParams(seed=seed, strict=strict)
            if sub.max_degree() < 3:
                raise AssertionError("nice graphs have Δ >= 3")
            res = delta_coloring_randomized(sub, params)
            assignment = res.colors
            used, rounds, family = sub.max_degree(), res.rounds, "nice"
        else:
            special = color_special(sub)
            assignment = special.colors
            used, rounds, family = special.num_colors, special.rounds, special.family
        for i, v in enumerate(originals):
            result.colors[v] = assignment[i]
        result.num_colors = max(result.num_colors, used)
        result.rounds = max(result.rounds, rounds)
        result.component_families[family] = result.component_families.get(family, 0) + 1
    validate_coloring(graph, result.colors, max_colors=result.num_colors or None)
    return result
