"""Developer tooling for this repository.

Currently: **reprolint**, an AST-based invariant linter enforcing the
contracts generic linters can't know about — seeded-only randomness in
engine code, non-blocking asyncio service tiers, guarded optional numpy
imports, clock-free fingerprints, typed storage/recovery exceptions,
validated wire-dict access, and complete vectorized/pure-Python
fallback pairs.  Run it with ``python -m repro lint``; rules, config,
suppressions and the baseline workflow are documented in
docs/DEVTOOLS.md.

This package must stay importable on the numpy-free CI leg and must not
import the service tier (the linter lints it).
"""

from repro.devtools.baseline import apply_baseline, load_baseline, save_baseline
from repro.devtools.config import LintConfig, load_config
from repro.devtools.framework import REGISTRY, Finding, Rule, all_rules
from repro.devtools.runner import LintReport, lint_file, lint_paths, main

__all__ = [
    "Finding",
    "Rule",
    "REGISTRY",
    "all_rules",
    "LintConfig",
    "load_config",
    "LintReport",
    "lint_file",
    "lint_paths",
    "main",
    "apply_baseline",
    "load_baseline",
    "save_baseline",
]
