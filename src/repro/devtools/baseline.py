"""The reprolint baseline: pre-existing findings that don't block CI.

A baseline entry identifies a finding by *content*, not position:
``(path, code, stripped source line, occurrence index)``.  Line numbers
drift with every unrelated edit; the offending line's own text only
changes when someone touches it — at which point the finding should be
re-justified or fixed, so expiring it from the baseline is the correct
behaviour.  The occurrence index disambiguates identical lines in one
file (the Nth identical violation stays matched to the Nth entry).

The file is deliberately human-reviewable JSON, sorted, one entry per
finding — a diff on it *is* the review of newly-tolerated debt.
Matching is consume-once per run: if a baselined finding disappears,
:func:`apply_baseline` reports it as stale so the file can be trimmed
(``--update-baseline`` rewrites it from scratch).
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass
from pathlib import Path

from repro.devtools.framework import Finding

__all__ = ["BaselineResult", "baseline_key", "load_baseline", "save_baseline", "apply_baseline"]

_VERSION = 1


def baseline_key(finding: Finding, occurrence: int) -> tuple[str, str, str, int]:
    return (finding.path, finding.code, finding.source, occurrence)


def _keys_for(findings: list[Finding]) -> list[tuple[str, str, str, int]]:
    seen: Counter[tuple[str, str, str]] = Counter()
    keys = []
    for finding in findings:
        base = (finding.path, finding.code, finding.source)
        keys.append(baseline_key(finding, seen[base]))
        seen[base] += 1
    return keys


def load_baseline(path: Path) -> set[tuple[str, str, str, int]]:
    """Entries from ``path``; a missing file is an empty baseline."""
    if not path.is_file():
        return set()
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise ValueError(f"unreadable baseline {path}: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("version") != _VERSION:
        raise ValueError(f"{path}: expected a reprolint baseline (version {_VERSION})")
    entries = set()
    for row in payload.get("findings", []):
        entries.add(
            (
                str(row["path"]),
                str(row["code"]),
                str(row["source"]),
                int(row.get("occurrence", 0)),
            )
        )
    return entries


def save_baseline(path: Path, findings: list[Finding]) -> None:
    """Write every current finding as the new tolerated set."""
    rows = [
        {"path": key[0], "code": key[1], "source": key[2], "occurrence": key[3]}
        for key in sorted(_keys_for(findings))
    ]
    payload = {"version": _VERSION, "findings": rows}
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8")


@dataclass
class BaselineResult:
    """Split of a run's findings against the committed baseline."""

    new: list[Finding]
    baselined: list[Finding]
    stale: list[tuple[str, str, str, int]]


def apply_baseline(
    findings: list[Finding], entries: set[tuple[str, str, str, int]]
) -> BaselineResult:
    new: list[Finding] = []
    baselined: list[Finding] = []
    matched: set[tuple[str, str, str, int]] = set()
    for finding, key in zip(findings, _keys_for(findings)):
        if key in entries:
            baselined.append(finding)
            matched.add(key)
        else:
            new.append(finding)
    stale = sorted(entries - matched)
    return BaselineResult(new=new, baselined=baselined, stale=stale)
