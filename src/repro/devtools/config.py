"""``[tool.reprolint]`` configuration, read from pyproject.toml.

Recognised keys (all optional — zero config runs every rule)::

    [tool.reprolint]
    baseline = "reprolint-baseline.json"   # relative to pyproject.toml
    exclude = ["**/_generated/**"]          # glob patterns, relative paths
    disable = ["RPL004"]                    # rule codes skipped entirely

    [tool.reprolint.rules.RPL006]
    dict_names = ["request", "reply"]       # per-rule options (opaque dict)

Config loading uses :mod:`tomllib` (stdlib on 3.11+); a missing file or
missing table yields the defaults, so the linter also works on bare
fixture trees in tests.
"""

from __future__ import annotations

import fnmatch
import tomllib
from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["LintConfig", "load_config", "find_pyproject"]

DEFAULT_BASELINE = "reprolint-baseline.json"


@dataclass
class LintConfig:
    """Resolved reprolint configuration."""

    root: Path
    baseline_path: Path
    exclude: tuple[str, ...] = ()
    disable: tuple[str, ...] = ()
    rule_options: dict[str, dict] = field(default_factory=dict)

    def is_excluded(self, path: Path) -> bool:
        try:
            rel = path.resolve().relative_to(self.root.resolve())
        except ValueError:
            rel = path
        text = rel.as_posix()
        return any(
            fnmatch.fnmatch(text, pattern) or fnmatch.fnmatch(path.name, pattern)
            for pattern in self.exclude
        )


def find_pyproject(start: Path) -> Path | None:
    """Nearest pyproject.toml at or above ``start``."""
    node = start.resolve()
    if node.is_file():
        node = node.parent
    for candidate in [node, *node.parents]:
        pyproject = candidate / "pyproject.toml"
        if pyproject.is_file():
            return pyproject
    return None


def load_config(start: Path, baseline_override: str | None = None) -> LintConfig:
    """Load ``[tool.reprolint]`` for the tree containing ``start``."""
    pyproject = find_pyproject(start)
    if pyproject is None:
        root = start.resolve() if start.is_dir() else start.resolve().parent
        table: dict = {}
    else:
        root = pyproject.parent
        try:
            with pyproject.open("rb") as handle:
                table = tomllib.load(handle).get("tool", {}).get("reprolint", {})
        except (OSError, tomllib.TOMLDecodeError):
            table = {}
    baseline = baseline_override or table.get("baseline", DEFAULT_BASELINE)
    rules_table = table.get("rules", {})
    return LintConfig(
        root=root,
        baseline_path=(root / baseline) if not Path(baseline).is_absolute() else Path(baseline),
        exclude=tuple(table.get("exclude", ())),
        disable=tuple(table.get("disable", ())),
        rule_options={
            str(code): dict(options)
            for code, options in rules_table.items()
            if isinstance(options, dict)
        },
    )
