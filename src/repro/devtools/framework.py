"""The reprolint rule framework: findings, rules, registry, suppressions.

reprolint is this repository's own static-analysis pass.  It exists
because the system's correctness rests on *conventions* generic linters
cannot know about: bit-identical numpy/pure-Python fallback twins,
seeded-only randomness in engine code (the determinism contract behind
``r1:``/``u1:`` content digests), non-blocking asyncio service tiers,
and typed errors at every wire/recovery boundary.  Each rule in
:mod:`repro.devtools.rules` encodes one such contract as an AST check.

This module is the machinery shared by every rule:

* :class:`Finding` — one diagnostic, stable enough to baseline.
* :class:`Rule` — base class; subclasses set ``code``/``name``/
  ``rationale``/``module_prefixes`` and implement :meth:`Rule.check`.
* :func:`register` / :data:`REGISTRY` — the per-code rule registry.
* :class:`FileContext` — parsed AST + source + module name + per-rule
  options, handed to every rule for one file.
* Suppressions — ``# reprolint: disable=RPL001`` on the offending line
  (or the line directly above) silences that code there.  A justifying
  reason after the codes is strongly encouraged and surfaced in
  ``--list-suppressions`` style tooling; see docs/DEVTOOLS.md.

Nothing here imports numpy, the service tier, or anything heavier than
``ast``/``tokenize`` — the linter must run on the numpy-free CI leg.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

__all__ = [
    "Finding",
    "Rule",
    "FileContext",
    "REGISTRY",
    "register",
    "all_rules",
    "module_name_for",
    "parse_suppressions",
    "Suppression",
]


@dataclass(frozen=True)
class Finding:
    """One diagnostic: *where* plus *what contract was broken*.

    ``line``/``col`` are 1-based/0-based as in :mod:`ast`.  ``source``
    is the stripped text of the offending line — it participates in the
    baseline key (see :mod:`repro.devtools.baseline`), so findings
    survive unrelated line-number drift.
    """

    path: str
    line: int
    col: int
    code: str
    message: str
    module: str | None = None
    source: str = ""

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}: {self.code} {self.message}"


@dataclass(frozen=True)
class Suppression:
    """A ``# reprolint: disable=...`` comment and where it applies."""

    line: int
    codes: tuple[str, ...]
    reason: str
    standalone: bool  # a comment-only line suppresses the line below


_SUPPRESS_RE = re.compile(
    r"#\s*reprolint:\s*disable=(?P<codes>[A-Z]{3}\d{3}(?:\s*,\s*[A-Z]{3}\d{3})*)"
    r"(?P<reason>.*)$"
)


def parse_suppressions(source: str) -> list[Suppression]:
    """Extract suppression comments via :mod:`tokenize`.

    Tokenizing (rather than regexing raw lines) means a ``#`` inside a
    string literal can never be misread as a comment.  Unreadable files
    degrade to no suppressions rather than crashing the lint run.
    """
    suppressions: list[Suppression] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, ValueError):
        return suppressions
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        match = _SUPPRESS_RE.search(tok.string)
        if match is None:
            continue
        codes = tuple(
            part.strip() for part in match.group("codes").split(",") if part.strip()
        )
        reason = match.group("reason").strip().lstrip("-—: ").strip()
        standalone = tok.string.strip() == tok.line.strip()
        suppressions.append(
            Suppression(
                line=tok.start[0], codes=codes, reason=reason, standalone=standalone
            )
        )
    return suppressions


def suppressed_lines(suppressions: Iterable[Suppression]) -> dict[int, set[str]]:
    """Map line number -> codes silenced there.

    An inline comment covers its own line; a standalone comment line
    covers the line below it (the conventional spot when the offending
    line is already long).
    """
    covered: dict[int, set[str]] = {}
    for sup in suppressions:
        target = sup.line + 1 if sup.standalone else sup.line
        covered.setdefault(target, set()).update(sup.codes)
        # An inline suppression on a multi-line statement's first line is
        # found at the comment's own line; also honour it there.
        if not sup.standalone:
            covered.setdefault(sup.line, set()).update(sup.codes)
    return covered


def module_name_for(path: Path) -> str | None:
    """Dotted module name for ``path``, or None outside any package root.

    Resolution mirrors the repo layout: everything after a ``src``
    directory component is the package path; failing that, a ``repro``
    component anchors the package directly (this keeps fixture trees in
    tests working without a ``src/`` shim).
    """
    parts = path.parts
    anchor = None
    if "src" in parts:
        anchor = len(parts) - 1 - parts[::-1].index("src") + 1
    elif "repro" in parts:
        anchor = len(parts) - 1 - parts[::-1].index("repro")
    if anchor is None or anchor >= len(parts):
        return None
    dotted = list(parts[anchor:])
    if not dotted:
        return None
    dotted[-1] = dotted[-1].removesuffix(".py")
    if dotted[-1] == "__init__":
        dotted.pop()
    return ".".join(dotted) if dotted else None


@dataclass
class FileContext:
    """Everything a rule needs to check one file."""

    path: Path
    display_path: str
    source: str
    tree: ast.Module
    module: str | None
    options: dict[str, dict] = field(default_factory=dict)
    _lines: list[str] | None = None

    @property
    def lines(self) -> list[str]:
        if self._lines is None:
            self._lines = self.source.splitlines()
        return self._lines

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def rule_options(self, code: str) -> dict:
        return self.options.get(code, {})


class Rule:
    """Base class for reprolint rules.

    Subclasses define:

    * ``code`` — stable ``RPLxxx`` identifier (baseline + suppression key)
    * ``name`` — short kebab-case label for human output
    * ``rationale`` — one sentence: which repo contract this enforces
    * ``module_prefixes`` — dotted-module prefixes the rule applies to;
      empty tuple = every linted file (used by path-scoped rules).
    * :meth:`check` — yield :class:`Finding` for ``ctx``.
    """

    code: str = "RPL000"
    name: str = "unnamed"
    rationale: str = ""
    module_prefixes: tuple[str, ...] = ()

    def applies_to(self, ctx: FileContext) -> bool:
        if not self.module_prefixes:
            return True
        if ctx.module is None:
            return False
        return any(
            ctx.module == prefix or ctx.module.startswith(prefix + ".")
            for prefix in self.module_prefixes
        )

    def check(self, ctx: FileContext) -> Iterator[Finding]:  # pragma: no cover
        raise NotImplementedError

    def finding(
        self, ctx: FileContext, node: ast.AST, message: str
    ) -> Finding:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            path=ctx.display_path,
            line=line,
            col=col,
            code=self.code,
            message=message,
            module=ctx.module,
            source=ctx.line_text(line),
        )


REGISTRY: dict[str, type[Rule]] = {}


def register(rule_cls: type[Rule]) -> type[Rule]:
    """Class decorator adding ``rule_cls`` to the registry by code."""
    if rule_cls.code in REGISTRY and REGISTRY[rule_cls.code] is not rule_cls:
        raise ValueError(f"duplicate reprolint rule code {rule_cls.code}")
    REGISTRY[rule_cls.code] = rule_cls
    return rule_cls


def all_rules(
    enabled: Iterable[str] | None = None, disabled: Iterable[str] = ()
) -> list[Rule]:
    """Instantiate the registry, honouring enable/disable config."""
    disabled_set = set(disabled)
    codes = sorted(REGISTRY) if enabled is None else [c for c in enabled if c in REGISTRY]
    return [REGISTRY[code]() for code in codes if code not in disabled_set]


class ImportTracker(ast.NodeVisitor):
    """Track module-alias bindings rules need to resolve call targets.

    After visiting a tree, ``aliases`` maps local name -> dotted module
    (``import time as t`` => ``t -> time``; ``from numpy import random as
    npr`` => ``npr -> numpy.random``) and ``from_imports`` maps local
    name -> ``(module, original_name)`` for non-module objects
    (``from random import Random`` => ``Random -> ('random', 'Random')``).
    """

    def __init__(self) -> None:
        self.aliases: dict[str, str] = {}
        self.from_imports: dict[str, tuple[str, str]] = {}

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            target = alias.name if alias.asname else alias.name.split(".")[0]
            self.aliases[local] = target

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module is None:  # relative "from . import x" — not a stdlib target
            return
        for alias in node.names:
            local = alias.asname or alias.name
            self.aliases.setdefault(local, f"{node.module}.{alias.name}")
            self.from_imports[local] = (node.module, alias.name)


def dotted_call_target(node: ast.Call, aliases: dict[str, str]) -> str | None:
    """Resolve ``mod.attr.fn(...)`` to a dotted name using import aliases.

    Returns e.g. ``time.sleep`` for ``t.sleep()`` after ``import time as
    t``, or None when the callee root is not a tracked module alias.
    Plain-name calls resolve through ``from``-import aliases too
    (``from time import sleep`` => ``time.sleep``).
    """
    func = node.func
    parts: list[str] = []
    while isinstance(func, ast.Attribute):
        parts.append(func.attr)
        func = func.value
    if isinstance(func, ast.Name):
        root = aliases.get(func.id)
        if root is None:
            return None
        parts.append(root)
        return ".".join(reversed(parts))
    return None
