"""The reprolint rules: repo contracts as AST checks.

Each rule is grounded in a bug class this repository has actually had
to defend against (see docs/DEVTOOLS.md for the full rationale, an
example of each violation, and how to suppress):

=======  ==============================================================
RPL001   blocking calls inside ``async def`` in the service tier
RPL002   unseeded randomness in engine code (determinism contract)
RPL003   top-level numpy/scipy imports not behind the optional guard
RPL004   wall-clock reads in fingerprint/digest construction
RPL005   bare/overbroad ``except`` in journal/WAL/recovery code
RPL006   raw subscripts on decoded wire-protocol dicts
RPL007   ``_*_vectorized`` without a dispatched ``_*_python`` twin
=======  ==============================================================
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.devtools.framework import (
    FileContext,
    Finding,
    ImportTracker,
    Rule,
    dotted_call_target,
    register,
)

__all__ = [
    "NoBlockingInAsyncRule",
    "SeededRandomnessRule",
    "GuardedNumericImportRule",
    "NoWallClockInFingerprintRule",
    "TypedExceptInStorageRule",
    "ValidatedWireAccessRule",
    "FallbackPairRule",
]


def _track_imports(tree: ast.Module) -> ImportTracker:
    tracker = ImportTracker()
    tracker.visit(tree)
    return tracker


@register
class NoBlockingInAsyncRule(Rule):
    """RPL001: the asyncio service tiers must never block the event loop.

    A ``time.sleep``, synchronous socket/file I/O, or a direct
    ``solve*`` engine call inside an ``async def`` stalls every request
    on that loop — the exact failure mode behind a "stalled gateway".
    CPU-heavy or blocking work belongs in an executor; helper functions
    *defined* inside the coroutine (the established
    ``run_in_executor(None, _apply)`` pattern) are deliberately not
    descended into.
    """

    code = "RPL001"
    name = "no-blocking-in-async"
    rationale = "blocking the event loop stalls every in-flight request"
    module_prefixes = ("repro.service",)

    # Dotted call targets that block the calling thread.
    BLOCKING_CALLS = frozenset(
        {
            "time.sleep",
            "socket.socket",
            "socket.create_connection",
            "socket.getaddrinfo",
            "subprocess.run",
            "subprocess.call",
            "subprocess.check_call",
            "subprocess.check_output",
            "subprocess.Popen",
            "urllib.request.urlopen",
        }
    )
    # Engine entry points: pure CPU for up to seconds at service sizes.
    SOLVE_PREFIX = "solve"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        tracker = _track_imports(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.AsyncFunctionDef):
                yield from self._check_async_body(ctx, node, tracker)

    def _check_async_body(
        self, ctx: FileContext, func: ast.AsyncFunctionDef, tracker: ImportTracker
    ) -> Iterator[Finding]:
        for child in ast.iter_child_nodes(func):
            yield from self._walk(ctx, child, tracker, func.name)

    def _walk(
        self, ctx: FileContext, node: ast.AST, tracker: ImportTracker, where: str
    ) -> Iterator[Finding]:
        # Nested function bodies run wherever they are *called* — the
        # dominant repo idiom defines them precisely to hand off to an
        # executor — so only the coroutine's own statements are checked.
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            return
        if isinstance(node, ast.Await) and isinstance(node.value, ast.Call):
            # An awaited call yields to the loop; its *arguments* are
            # still evaluated synchronously, so they are walked as usual.
            for child in ast.iter_child_nodes(node.value):
                yield from self._walk(ctx, child, tracker, where)
            return
        if isinstance(node, ast.Call):
            yield from self._check_call(ctx, node, tracker, where)
        for child in ast.iter_child_nodes(node):
            yield from self._walk(ctx, child, tracker, where)

    def _check_call(
        self, ctx: FileContext, node: ast.Call, tracker: ImportTracker, where: str
    ) -> Iterator[Finding]:
        dotted = dotted_call_target(node, tracker.aliases)
        if dotted in self.BLOCKING_CALLS:
            yield self.finding(
                ctx,
                node,
                f"blocking call {dotted}() inside async def {where}() — "
                "use an executor or the asyncio equivalent",
            )
            return
        func = node.func
        callee = None
        if isinstance(func, ast.Name):
            callee = func.id
        elif isinstance(func, ast.Attribute):
            callee = func.attr
        if callee == "open" and isinstance(func, ast.Name):
            yield self.finding(
                ctx,
                node,
                f"synchronous open() inside async def {where}() — "
                "file I/O blocks the event loop; offload to an executor",
            )
        elif callee is not None and callee.startswith(self.SOLVE_PREFIX):
            yield self.finding(
                ctx,
                node,
                f"direct engine call {callee}() inside async def {where}() — "
                "solves are CPU-bound for seconds; run via the pool executor",
            )


@register
class SeededRandomnessRule(Rule):
    """RPL002: engine code draws randomness only from seeded generators.

    The ``r1:``/``u1:`` content-digest caches assume every solve is a
    pure function of ``(graph, config)``.  One ``random.random()`` (the
    process-global generator) or ``numpy.random`` global-state call in
    the engine breaks that silently: results differ between runs, and a
    cache hit is no longer bit-identical to a fresh solve.
    """

    code = "RPL002"
    name = "seeded-randomness-only"
    rationale = "unseeded randomness breaks the content-digest determinism contract"
    module_prefixes = ("repro.core", "repro.primitives", "repro.graphs")

    # Drawing or reseeding through random's module-level (global) generator.
    GLOBAL_STATE_FNS = frozenset(
        {
            "betavariate", "choice", "choices", "expovariate", "gammavariate",
            "gauss", "getrandbits", "lognormvariate", "normalvariate",
            "paretovariate", "randbytes", "randint", "random", "randrange",
            "sample", "seed", "setstate", "shuffle", "triangular", "uniform",
            "vonmisesvariate", "weibullvariate",
        }
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        tracker = _track_imports(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_call_target(node, tracker.aliases)
            if dotted is None:
                continue
            if dotted == "random.Random":
                if not node.args and not node.keywords:
                    yield self.finding(
                        ctx,
                        node,
                        "random.Random() without a seed argument — engine "
                        "randomness must be reproducible from the config seed",
                    )
            elif dotted.startswith("random."):
                fn = dotted.split(".", 1)[1]
                if fn in self.GLOBAL_STATE_FNS:
                    yield self.finding(
                        ctx,
                        node,
                        f"{dotted}() uses the process-global generator — pass "
                        "a seeded random.Random through the call chain instead",
                    )
            elif dotted.startswith("numpy.random.") or dotted.startswith(
                "scipy.random."
            ):
                fn = dotted.rsplit(".", 1)[1]
                if fn == "default_rng" and (node.args or node.keywords):
                    continue  # explicitly seeded generator construction
                yield self.finding(
                    ctx,
                    node,
                    f"{dotted}() touches numpy global random state — results "
                    "would differ run to run; derive arrays from the seeded "
                    "python rng (rng.randbytes) as the existing kernels do",
                )


@register
class GuardedNumericImportRule(Rule):
    """RPL003: numpy/scipy imports must be optional.

    The numpy-free CI leg exercises every pure-Python fallback; one
    unconditional top-level ``import numpy`` anywhere on an import path
    breaks that whole leg at collection time.  The established pattern
    is either a function-local import or a module-level
    ``try: import numpy ... except Exception``.
    """

    code = "RPL003"
    name = "guarded-numeric-import"
    rationale = "the numpy-free CI leg depends on optional numeric imports"
    module_prefixes = ()  # applies to every linted file

    NUMERIC_ROOTS = frozenset({"numpy", "scipy"})

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        yield from self._scan(ctx.tree.body, ctx, guarded=False)

    def _scan(
        self, body: list[ast.stmt], ctx: FileContext, guarded: bool
    ) -> Iterator[Finding]:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue  # lazy function-level imports are the guard
            if isinstance(stmt, ast.Try):
                # try/except is the guard — but only when some handler
                # actually catches the ImportError (any broad handler does).
                yield from self._scan(stmt.body, ctx, guarded=True)
                for handler in stmt.handlers:
                    yield from self._scan(handler.body, ctx, guarded=False)
                yield from self._scan(stmt.orelse, ctx, guarded=guarded)
                yield from self._scan(stmt.finalbody, ctx, guarded=guarded)
                continue
            if isinstance(stmt, ast.If):
                if self._is_type_checking(stmt.test):
                    yield from self._scan(stmt.orelse, ctx, guarded=guarded)
                    continue
                yield from self._scan(stmt.body, ctx, guarded=guarded)
                yield from self._scan(stmt.orelse, ctx, guarded=guarded)
                continue
            if isinstance(stmt, (ast.With, ast.For, ast.While)):
                yield from self._scan(stmt.body, ctx, guarded=guarded)
                continue
            if guarded:
                continue
            root = self._numeric_import_root(stmt)
            if root is not None:
                yield self.finding(
                    ctx,
                    stmt,
                    f"unguarded top-level import of {root} — wrap in "
                    "try/except or import lazily; the numpy-free CI leg "
                    "must be able to import this module",
                )

    def _numeric_import_root(self, stmt: ast.stmt) -> str | None:
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                root = alias.name.split(".")[0]
                if root in self.NUMERIC_ROOTS:
                    return root
        elif isinstance(stmt, ast.ImportFrom) and stmt.module is not None:
            root = stmt.module.split(".")[0]
            if root in self.NUMERIC_ROOTS:
                return root
        return None

    @staticmethod
    def _is_type_checking(test: ast.expr) -> bool:
        if isinstance(test, ast.Name):
            return test.id == "TYPE_CHECKING"
        if isinstance(test, ast.Attribute):
            return test.attr == "TYPE_CHECKING"
        return False


@register
class NoWallClockInFingerprintRule(Rule):
    """RPL004: fingerprints hash content, never the clock.

    A wall-clock read flowing into ``r1:``/``u1:`` digest payloads makes
    the same request hash differently on every arrival — the cache
    silently stops hitting and every request re-solves.  (Timing is
    recorded, but in ``phase_stats``, which is stripped from digests.)
    """

    code = "RPL004"
    name = "no-wallclock-in-fingerprint"
    rationale = "clock-dependent digests silently kill the content-addressed cache"
    module_prefixes = ("repro.service.fingerprint",)

    CLOCK_CALLS = frozenset(
        {
            "time.time", "time.time_ns",
            "time.perf_counter", "time.perf_counter_ns",
            "time.monotonic", "time.monotonic_ns",
            "time.process_time", "time.process_time_ns",
            "datetime.datetime.now", "datetime.datetime.utcnow",
            "datetime.datetime.today", "datetime.date.today",
        }
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        tracker = _track_imports(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_call_target(node, tracker.aliases)
            if dotted in self.CLOCK_CALLS:
                yield self.finding(
                    ctx,
                    node,
                    f"wall-clock read {dotted}() in fingerprint construction — "
                    "digests must be a pure function of (graph, config)",
                )


@register
class TypedExceptInStorageRule(Rule):
    """RPL005: recovery code degrades through *typed* exceptions.

    The journal/WAL/recovery contract is explicit, counted degradation:
    a torn tail truncates, a corrupt record counts ``corrupt_reads`` and
    misses, a stale chain downgrades to ``StaleParentError``.  A bare or
    ``except Exception`` handler can swallow a genuine bug (an attribute
    typo, a cancelled future) as if it were expected corruption.
    """

    code = "RPL005"
    name = "typed-except-in-storage"
    rationale = "overbroad handlers hide real bugs behind 'expected corruption'"
    module_prefixes = ("repro.service.storage",)

    BROAD = frozenset({"Exception", "BaseException"})

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    ctx,
                    node,
                    "bare except in storage/recovery code — catch the typed "
                    "exceptions the contract names (or suppress with a "
                    "justification if breadth is the point)",
                )
                continue
            for name in self._caught_names(node.type):
                if name in self.BROAD:
                    yield self.finding(
                        ctx,
                        node,
                        f"except {name} in storage/recovery code — narrow to "
                        "the typed exceptions this path expects",
                    )
                    break

    @staticmethod
    def _caught_names(expr: ast.expr) -> Iterator[str]:
        nodes = expr.elts if isinstance(expr, ast.Tuple) else [expr]
        for node in nodes:
            if isinstance(node, ast.Name):
                yield node.id
            elif isinstance(node, ast.Attribute):
                yield node.attr


@register
class ValidatedWireAccessRule(Rule):
    """RPL006: decoded wire payloads are validated, not trusted.

    ``json.loads`` output is attacker-shaped: a raw ``request["op"]``
    turns a malformed request into a ``KeyError`` traceback instead of
    the protocol's typed ``ServiceProtocolError`` reply.  Reads must go
    through ``.get`` (or sit under an explicit ``"key" in d`` guard,
    which this rule recognises).
    """

    code = "RPL006"
    name = "validated-wire-access"
    rationale = "raw subscripts turn malformed requests into tracebacks, not typed replies"
    module_prefixes = ("repro.service.server", "repro.service.sharding.router")

    DEFAULT_DICT_NAMES = ("request", "reply", "payload", "msg", "message")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        names = tuple(
            ctx.rule_options(self.code).get("dict_names", self.DEFAULT_DICT_NAMES)
        )
        yield from self._walk(ctx, ctx.tree, frozenset(), frozenset(names))

    def _walk(
        self,
        ctx: FileContext,
        node: ast.AST,
        guards: frozenset[tuple[str, object]],
        names: frozenset[str],
    ) -> Iterator[Finding]:
        if isinstance(node, ast.If):
            body_guards = guards | frozenset(self._membership_guards(node.test, names))
            for child in node.body:
                yield from self._walk(ctx, child, body_guards, names)
            for child in node.orelse:
                yield from self._walk(ctx, child, guards, names)
            yield from self._walk(ctx, node.test, guards, names)
            return
        if isinstance(node, ast.Subscript) and isinstance(node.ctx, ast.Load):
            target = node.value
            if isinstance(target, ast.Name) and target.id in names:
                key = (
                    node.slice.value
                    if isinstance(node.slice, ast.Constant)
                    else None
                )
                if (target.id, key) not in guards:
                    shown = f"[{key!r}]" if key is not None else "[...]"
                    yield self.finding(
                        ctx,
                        node,
                        f"raw subscript {target.id}{shown} on a decoded wire "
                        "dict — use .get() and raise ServiceProtocolError on "
                        "missing/invalid fields",
                    )
        for child in ast.iter_child_nodes(node):
            yield from self._walk(ctx, child, guards, names)

    @staticmethod
    def _membership_guards(
        test: ast.expr, names: frozenset[str]
    ) -> Iterator[tuple[str, object]]:
        """Yield ``(dict_name, key)`` pairs proven present by ``test``."""
        if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
            for value in test.values:
                yield from ValidatedWireAccessRule._membership_guards(value, names)
            return
        if (
            isinstance(test, ast.Compare)
            and len(test.ops) == 1
            and isinstance(test.ops[0], ast.In)
            and isinstance(test.left, ast.Constant)
            and len(test.comparators) == 1
            and isinstance(test.comparators[0], ast.Name)
            and test.comparators[0].id in names
        ):
            yield (test.comparators[0].id, test.left.value)


@register
class FallbackPairRule(Rule):
    """RPL007: every vectorized kernel has a dispatched pure-Python twin.

    The repo's performance story is numpy fast paths pinned bit-identical
    to pure-Python fallbacks (docs/API.md).  A ``_*_vectorized`` function
    whose ``_*_python`` twin is missing — or defined but never dispatched
    — means the numpy-free leg silently runs different (or no) code, the
    exact divergence APGL-style repos accumulate.
    """

    code = "RPL007"
    name = "fallback-pair-complete"
    rationale = "vectorized kernels without dispatched python twins diverge unchecked"
    module_prefixes = ("repro",)

    _SUFFIX = re.compile(r"^_?(?P<stem>.+)_vectorized$")
    _PREFIX = re.compile(r"^_?vectorized_(?P<stem>.+)$")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        defs: dict[str, ast.AST] = {}
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                defs[node.name] = node
        for name, node in defs.items():
            match = self._SUFFIX.match(name) or self._PREFIX.match(name)
            if match is None:
                continue
            stem = match.group("stem")
            twins = {
                f"_{stem}_python", f"{stem}_python",
                f"_python_{stem}", f"python_{stem}",
            }
            twin = next((t for t in sorted(twins) if t in defs), None)
            if twin is None:
                yield self.finding(
                    ctx,
                    node,
                    f"{name}() has no pure-Python twin (expected one of "
                    f"{'/'.join(sorted(twins))}) — the numpy-free path must "
                    "run the same algorithm, pinned bit-identical",
                )
                continue
            if not self._dispatched(ctx.tree, twin, defs[twin]):
                yield self.finding(
                    ctx,
                    node,
                    f"pure-Python twin {twin}() is defined but never "
                    f"dispatched — the fallback is dead code and can drift",
                )

    @staticmethod
    def _dispatched(tree: ast.Module, twin: str, twin_def: ast.AST) -> bool:
        """Is ``twin`` referenced anywhere outside its own definition?"""
        inside = {id(n) for n in ast.walk(twin_def)}
        for node in ast.walk(tree):
            if id(node) in inside:
                continue
            if isinstance(node, ast.Name) and node.id == twin:
                return True
            if isinstance(node, ast.Attribute) and node.attr == twin:
                return True
        return False
