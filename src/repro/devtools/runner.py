"""The reprolint runner: discovery, per-file checking, reporting, CLI.

``python -m repro lint [paths...]`` lands here (via
:func:`repro.cli.main`).  The run is:

1. discover ``*.py`` files under the given paths (skipping config
   excludes and anything unreadable),
2. parse each file once, hand the AST to every registered rule that
   applies to its module,
3. drop findings silenced by ``# reprolint: disable=`` comments,
4. split the rest against the committed baseline — baselined findings
   report but don't fail; *new* findings (and stale baseline entries)
   exit non-zero,
5. render human output, or with ``--json`` a machine report including
   the ``repro_lint_findings_total{rule}`` summary CI uploads as an
   artifact.

Exit codes: 0 clean (or everything baselined), 1 new findings or stale
baseline entries, 2 usage/configuration errors (unreadable baseline,
no files).  Syntax errors in linted files are reported as RPL000
findings rather than crashing the run — a file that cannot parse cannot
be proven clean.
"""

from __future__ import annotations

import argparse
import ast
import json
import sys
from pathlib import Path
from typing import Iterable, Sequence

from repro.devtools import rules as _rules  # noqa: F401  (registers the rules)
from repro.devtools.baseline import (
    apply_baseline,
    load_baseline,
    save_baseline,
)
from repro.devtools.config import LintConfig, load_config
from repro.devtools.framework import (
    REGISTRY,
    FileContext,
    Finding,
    all_rules,
    module_name_for,
    parse_suppressions,
    suppressed_lines,
)

__all__ = ["LintReport", "lint_paths", "lint_file", "main"]


class LintReport:
    """Aggregated outcome of one lint run."""

    def __init__(self) -> None:
        self.findings: list[Finding] = []  # post-suppression, pre-baseline
        self.new: list[Finding] = []
        self.baselined: list[Finding] = []
        self.stale_baseline: list[tuple[str, str, str, int]] = []
        self.suppressed: int = 0
        self.files_scanned: int = 0
        self.rules_run: list[str] = []

    @property
    def exit_code(self) -> int:
        return 1 if (self.new or self.stale_baseline) else 0

    def findings_total(self) -> dict[str, int]:
        """Per-rule totals — the ``repro_lint_findings_total{rule}`` summary."""
        totals = {code: 0 for code in self.rules_run}
        for finding in self.findings:
            totals[finding.code] = totals.get(finding.code, 0) + 1
        return totals

    def to_json(self) -> dict:
        def row(finding: Finding) -> dict:
            return {
                "path": finding.path,
                "line": finding.line,
                "col": finding.col,
                "code": finding.code,
                "message": finding.message,
                "module": finding.module,
                "source": finding.source,
            }

        return {
            "version": 1,
            "files_scanned": self.files_scanned,
            "rules_run": self.rules_run,
            "new": [row(f) for f in self.new],
            "baselined": [row(f) for f in self.baselined],
            "stale_baseline": [
                {"path": p, "code": c, "source": s, "occurrence": o}
                for p, c, s, o in self.stale_baseline
            ],
            "suppressed": self.suppressed,
            "summary": {"repro_lint_findings_total": self.findings_total()},
            "exit_code": self.exit_code,
        }


def _discover(paths: Sequence[Path], config: LintConfig) -> list[Path]:
    files: list[Path] = []
    for path in paths:
        if path.is_file() and path.suffix == ".py":
            files.append(path)
        elif path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
    return [f for f in files if not config.is_excluded(f)]


def _display_path(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def lint_file(
    path: Path, config: LintConfig, rules: Iterable | None = None
) -> tuple[list[Finding], int]:
    """Lint one file: (kept findings, suppressed count)."""
    active = list(rules) if rules is not None else all_rules(disabled=config.disable)
    display = _display_path(path, config.root)
    try:
        source = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        return (
            [
                Finding(
                    path=display, line=1, col=0, code="RPL000",
                    message=f"unreadable file: {exc}",
                )
            ],
            0,
        )
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return (
            [
                Finding(
                    path=display, line=exc.lineno or 1, col=(exc.offset or 1) - 1,
                    code="RPL000", message=f"syntax error: {exc.msg}",
                )
            ],
            0,
        )
    ctx = FileContext(
        path=path,
        display_path=display,
        source=source,
        tree=tree,
        module=module_name_for(path),
        options=config.rule_options,
    )
    raw: list[Finding] = []
    for rule in active:
        if rule.applies_to(ctx):
            raw.extend(rule.check(ctx))
    if not raw:
        return [], 0
    covered = suppressed_lines(parse_suppressions(source))
    kept = [f for f in raw if f.code not in covered.get(f.line, ())]
    kept.sort(key=lambda f: (f.line, f.col, f.code))
    return kept, len(raw) - len(kept)


def lint_paths(
    paths: Sequence[Path],
    config: LintConfig,
    use_baseline: bool = True,
) -> LintReport:
    """Lint every python file under ``paths`` against ``config``."""
    report = LintReport()
    rules = all_rules(disabled=config.disable)
    report.rules_run = [rule.code for rule in rules]
    for path in _discover(paths, config):
        findings, suppressed = lint_file(path, config, rules)
        report.findings.extend(findings)
        report.suppressed += suppressed
        report.files_scanned += 1
    report.findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    entries = load_baseline(config.baseline_path) if use_baseline else set()
    split = apply_baseline(report.findings, entries)
    report.new = split.new
    report.baselined = split.baselined
    report.stale_baseline = split.stale
    return report


def _render_human(report: LintReport, out) -> None:
    for finding in report.new:
        print(finding.render(), file=out)
    if report.baselined:
        print(
            f"note: {len(report.baselined)} baselined finding(s) not shown "
            "as failures (see the baseline file)",
            file=out,
        )
    for key in report.stale_baseline:
        print(
            f"stale baseline entry (finding no longer present): "
            f"{key[0]} {key[1]} {key[2]!r} — re-run with --update-baseline",
            file=out,
        )
    total = sum(report.findings_total().values())
    state = "clean" if report.exit_code == 0 else "FAILED"
    print(
        f"reprolint: {report.files_scanned} files, "
        f"{len(report.rules_run)} rules, {total} finding(s) "
        f"({len(report.new)} new, {len(report.baselined)} baselined, "
        f"{report.suppressed} suppressed) — {state}",
        file=out,
    )


def main(argv: Sequence[str] | None = None, out=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="reprolint: repo-contract static analysis (see docs/DEVTOOLS.md)",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src", "scripts", "benchmarks"],
        help="files or directories to lint (default: src scripts benchmarks)",
    )
    parser.add_argument("--json", action="store_true", help="machine-readable report")
    parser.add_argument(
        "--baseline", default=None,
        help="baseline file (default: [tool.reprolint].baseline in pyproject.toml)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore the baseline: every finding fails",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline to tolerate every current finding, then exit 0",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="describe registered rules and exit"
    )
    args = parser.parse_args(argv)
    out = out if out is not None else sys.stdout

    if args.list_rules:
        for code in sorted(REGISTRY):
            rule = REGISTRY[code]
            scope = ", ".join(rule.module_prefixes) or "all files"
            print(f"{code} {rule.name} [{scope}]: {rule.rationale}", file=out)
        return 0

    paths = [Path(p) for p in args.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(f"repro lint: no such path: {missing[0]}", file=sys.stderr)
        return 2
    config = load_config(paths[0], baseline_override=args.baseline)
    try:
        report = lint_paths(paths, config, use_baseline=not args.no_baseline)
    except ValueError as exc:  # unreadable/mismatched baseline
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2

    if args.update_baseline:
        save_baseline(config.baseline_path, report.findings)
        print(
            f"wrote {len(report.findings)} finding(s) to {config.baseline_path}",
            file=out,
        )
        return 0

    if args.json:
        json.dump(report.to_json(), out, indent=2, sort_keys=True)
        print(file=out)
    else:
        _render_human(report, out)
    return report.exit_code
