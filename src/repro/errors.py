"""Exception hierarchy for the repro package.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything coming out of the reproduction with a single handler.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class GraphError(ReproError):
    """Raised for malformed graph inputs (self-loops, bad edges, ...)."""


class GraphConstructionError(GraphError):
    """Raised when an external graph description (e.g. an edge-list file)
    is malformed: unparsable lines, self-loops, duplicate edges.

    Carries enough position information (``path:line``) for the caller to
    fix the input without reading library internals.
    """


class ColoringError(ReproError):
    """Raised when a produced or supplied coloring violates a contract.

    Attributes
    ----------
    violations:
        A list of human-readable violation descriptions (possibly truncated);
        useful in test failure output.
    """

    def __init__(self, message: str, violations: list[str] | None = None):
        super().__init__(message)
        self.violations = violations or []


class NotNiceGraphError(ReproError):
    """Raised when an algorithm requiring a *nice* graph receives a clique,
    cycle, or path (these graphs are not Δ-colorable by Brooks' theorem or
    need special handling)."""


class InfeasibleListColoringError(ReproError):
    """Raised when a degree-list coloring instance admits no solution.

    By Theorem 8 (Erdős–Rubin–Taylor / Vizing) this can only happen when the
    underlying graph is a Gallai tree with tight lists; the algorithms in
    this package only create instances where a solution is guaranteed, so
    seeing this error indicates a caller bug.
    """


class IncrementalUpdateError(ReproError):
    """Base class for rejected edge-stream updates.

    Raised by :class:`repro.core.incremental.IncrementalColoring` (and the
    service's ``update`` verb) when an operation cannot be applied to the
    maintained instance; the engine's state is unchanged after a
    rejection, so callers may correct the op and retry.
    """


class EdgeAlreadyPresentError(IncrementalUpdateError):
    """Raised when an ``insert_edge`` names an edge the graph already has
    (or one duplicated within a batch update)."""


class EdgeNotPresentError(IncrementalUpdateError):
    """Raised when a ``delete_edge`` names an edge the graph does not have."""


class ConflictingUpdateError(IncrementalUpdateError):
    """Raised when one edge key appears in both the ``added`` and the
    ``removed`` list of a single batch update.

    Such a batch has no coherent meaning under atomic (set-at-once)
    delta semantics — it is neither an insert nor a delete — so it is
    rejected outright rather than resolved by list order.
    """


class DeltaChangeError(IncrementalUpdateError):
    """Raised when an update would change the maximum degree Δ while the
    engine was configured with ``allow_resolve=False``.

    A Δ change invalidates the Δ-coloring *contract* (not necessarily the
    coloring itself), so it cannot be repaired locally — it needs a full
    re-solve, which the caller explicitly opted out of.
    """


class StaleParentError(IncrementalUpdateError):
    """Raised by the service when an ``update`` request names a
    ``parent_digest`` the server no longer holds (evicted or never seen);
    the client should fall back to a full ``solve`` of the child graph."""


class ServiceOverloadedError(ReproError):
    """Raised by the serving gateway when the request queue is full.

    Load shedding is explicit: a request that cannot be admitted fails
    immediately with this error instead of queueing unboundedly (clients
    see a structured ``overloaded`` reply and may retry with backoff).
    """


class ShardUnavailableError(ServiceOverloadedError):
    """Raised by the shard router when the shard owning a request's
    digest arc is down (crashed, restarting, or unreachable).

    Subclasses :class:`ServiceOverloadedError` deliberately: on the wire
    it is an ``overloaded`` reply — the retriable kind — because a
    supervised shard is expected back within its restart backoff, so
    retry-with-backoff is exactly the right client behavior.
    """


class ShardFailedError(ReproError):
    """Raised by the shard supervisor when a worker process cannot be
    (re)started: it died before publishing its port, or exhausted its
    restart budget within the backoff window."""


class ServiceProtocolError(ReproError):
    """Raised for malformed service requests/replies (bad JSON, missing
    fields, out-of-range graph payloads)."""


class AlgorithmContractError(ReproError):
    """Raised in strict mode when an internal per-phase invariant fails.

    The randomized/deterministic Δ-coloring pipelines check their phase
    contracts (layer structure, T-node validity, independence of base-layer
    components, ...) when ``strict=True``; a failure means the implementation
    deviated from the paper's invariants, never that the input was unlucky.
    """
