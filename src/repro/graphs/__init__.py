"""Graph substrate: data structure, traversal, structure theory, generators.

This subpackage contains everything the LOCAL-model algorithms need to know
about graphs: the adjacency structure itself (:mod:`repro.graphs.graph`),
BFS machinery for balls/layers (:mod:`repro.graphs.bfs`), block
decompositions for Gallai-tree / DCC classification
(:mod:`repro.graphs.blocks`, :mod:`repro.graphs.properties`), workload
generators (:mod:`repro.graphs.generators`) and coloring validation
(:mod:`repro.graphs.validation`).
"""

from repro.graphs.bfs import (
    bfs_ball,
    bfs_distances,
    bfs_levels,
    bfs_tree,
    closest_source_assignment,
    distance_layers,
    eccentricity,
)
from repro.graphs.blocks import (
    BlockDecomposition,
    biconnected_components,
    blocks_through,
    cut_vertices,
)
from repro.graphs.generators import (
    complete_graph,
    complete_graph_minus_edge,
    cycle_graph,
    disjoint_union,
    hypercube,
    path_graph,
    random_gallai_tree,
    random_graph_with_max_degree,
    random_nice_graph,
    random_regular_graph,
    random_tree,
    torus_grid,
)
from repro.graphs.dynamic import DynamicGraph
from repro.graphs.graph import Graph, GraphBuilder, SubgraphView
from repro.graphs.properties import (
    assert_nice,
    girth_up_to,
    is_clique_nodes,
    is_complete,
    is_cycle_graph,
    is_degree_choosable_component,
    is_gallai_tree,
    is_nice,
    is_odd_cycle_nodes,
    is_path_graph,
)
from repro.graphs.validation import UNCOLORED, count_colors, uncolored_nodes, validate_coloring

__all__ = [
    "Graph",
    "GraphBuilder",
    "SubgraphView",
    "DynamicGraph",
    "BlockDecomposition",
    "biconnected_components",
    "blocks_through",
    "cut_vertices",
    "bfs_ball",
    "bfs_distances",
    "bfs_levels",
    "bfs_tree",
    "closest_source_assignment",
    "distance_layers",
    "eccentricity",
    "cycle_graph",
    "path_graph",
    "complete_graph",
    "complete_graph_minus_edge",
    "torus_grid",
    "hypercube",
    "random_regular_graph",
    "random_graph_with_max_degree",
    "random_tree",
    "random_gallai_tree",
    "random_nice_graph",
    "disjoint_union",
    "is_clique_nodes",
    "is_odd_cycle_nodes",
    "is_complete",
    "is_cycle_graph",
    "is_path_graph",
    "is_nice",
    "assert_nice",
    "is_gallai_tree",
    "is_degree_choosable_component",
    "girth_up_to",
    "UNCOLORED",
    "validate_coloring",
    "count_colors",
    "uncolored_nodes",
]
