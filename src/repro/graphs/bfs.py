"""Breadth-first-search utilities: distances, balls, layers, BFS trees.

These are the workhorses behind the paper's machinery: the layering
technique (layers ``B_i`` = nodes at distance exactly ``i`` from the base
layer, Section 3), the happiness layers ``C_i`` of phase (5), DCC detection
on radius-``r`` balls, and the expansion measurements of Lemmas 12/14/15
(which count nodes per BFS level).

All functions take an optional ``allowed`` predicate/set restricting the
traversal to a node subset — the paper constantly BFS-es inside a remainder
graph ``H`` or along *uncolored* paths, and filtering during traversal is
much cheaper than materialising induced subgraphs.  ``allowed`` may be a
set, a predicate, a ``bytearray``/bool-sequence mask (e.g. the ``mask`` of
:class:`repro.graphs.graph.SubgraphView`), or ``None``; the ``None`` case
takes a specialised loop with no per-visit predicate call, which matters in
the per-node ball collection of DCC detection.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable, Iterable, Sequence

from repro.graphs.graph import Graph

__all__ = [
    "bfs_distances",
    "bfs_ball",
    "bfs_levels",
    "bfs_tree",
    "distance_layers",
    "closest_source_assignment",
    "eccentricity",
]

UNREACHED = -1


def _normalize_allowed(
    graph: Graph, allowed: set[int] | Sequence[bool] | Callable[[int], bool] | None
) -> Callable[[int], bool]:
    """Turn the flexible ``allowed`` argument into a predicate."""
    if allowed is None:
        return lambda _v: True
    if callable(allowed):
        return allowed
    if isinstance(allowed, set) or isinstance(allowed, frozenset):
        return allowed.__contains__
    flags = allowed
    return lambda v: bool(flags[v])


def bfs_distances(
    graph: Graph,
    sources: Iterable[int],
    max_depth: int | None = None,
    allowed: set[int] | Sequence[bool] | Callable[[int], bool] | None = None,
) -> list[int]:
    """Multi-source BFS distances.

    Returns a list ``dist`` with ``dist[v]`` the hop distance from the
    closest source, or ``UNREACHED`` (-1) if ``v`` is farther than
    ``max_depth`` or unreachable.  Sources that are not ``allowed`` are
    skipped; traversal never enters disallowed nodes.
    """
    dist = [UNREACHED] * graph.n
    queue: deque[int] = deque()
    adj = graph.adj
    if allowed is None:
        for s in sources:
            if dist[s] == UNREACHED:
                dist[s] = 0
                queue.append(s)
        while queue:
            u = queue.popleft()
            du = dist[u]
            if max_depth is not None and du >= max_depth:
                continue
            for v in adj[u]:
                if dist[v] == UNREACHED:
                    dist[v] = du + 1
                    queue.append(v)
        return dist
    ok = _normalize_allowed(graph, allowed)
    for s in sources:
        if dist[s] == UNREACHED and ok(s):
            dist[s] = 0
            queue.append(s)
    while queue:
        u = queue.popleft()
        du = dist[u]
        if max_depth is not None and du >= max_depth:
            continue
        for v in adj[u]:
            if dist[v] == UNREACHED and ok(v):
                dist[v] = du + 1
                queue.append(v)
    return dist


def bfs_ball(
    graph: Graph,
    center: int,
    radius: int,
    allowed: set[int] | Sequence[bool] | Callable[[int], bool] | None = None,
) -> list[int]:
    """Nodes at distance at most ``radius`` from ``center`` (including it).

    This is the LOCAL-model "collect your radius-r neighbourhood" primitive;
    callers charge ``radius`` rounds for it on the ledger.
    """
    adj = graph.adj
    if allowed is None:
        dist = {center: 0}
        queue: deque[int] = deque([center])
        while queue:
            u = queue.popleft()
            du = dist[u]
            if du >= radius:
                continue
            for v in adj[u]:
                if v not in dist:
                    dist[v] = du + 1
                    queue.append(v)
        return list(dist)
    ok = _normalize_allowed(graph, allowed)
    if not ok(center):
        return []
    dist = {center: 0}
    queue = deque([center])
    while queue:
        u = queue.popleft()
        du = dist[u]
        if du >= radius:
            continue
        for v in adj[u]:
            if v not in dist and ok(v):
                dist[v] = du + 1
                queue.append(v)
    return list(dist)


def bfs_levels(
    graph: Graph,
    center: int,
    radius: int,
    allowed: set[int] | Sequence[bool] | Callable[[int], bool] | None = None,
) -> list[list[int]]:
    """BFS levels ``[B_0, B_1, .., B_radius]`` around ``center``.

    ``B_t`` is the list of nodes at distance exactly ``t``; trailing empty
    levels are preserved so ``len(result) == radius + 1`` (Lemmas 12/14/15
    reason about the size of a specific level ``B_r``).
    """
    ok = _normalize_allowed(graph, allowed)
    levels: list[list[int]] = [[] for _ in range(radius + 1)]
    if not ok(center):
        return levels
    dist = {center: 0}
    levels[0].append(center)
    queue: deque[int] = deque([center])
    adj = graph.adj
    while queue:
        u = queue.popleft()
        du = dist[u]
        if du >= radius:
            continue
        for v in adj[u]:
            if v not in dist and ok(v):
                dist[v] = du + 1
                levels[du + 1].append(v)
                queue.append(v)
    return levels


def bfs_tree(
    graph: Graph,
    center: int,
    radius: int,
    allowed: set[int] | Sequence[bool] | Callable[[int], bool] | None = None,
) -> tuple[dict[int, int], dict[int, int]]:
    """BFS tree around ``center`` truncated at depth ``radius``.

    Returns ``(parent, level)`` dictionaries over the reached nodes, with
    ``parent[center] == center``.  Lemma 10 shows this tree is *unique* in
    graphs without small degree-choosable components; the test suite checks
    that (every non-root reached node has exactly one neighbour on the
    previous level).
    """
    ok = _normalize_allowed(graph, allowed)
    parent: dict[int, int] = {}
    level: dict[int, int] = {}
    if not ok(center):
        return parent, level
    parent[center] = center
    level[center] = 0
    queue: deque[int] = deque([center])
    adj = graph.adj
    while queue:
        u = queue.popleft()
        du = level[u]
        if du >= radius:
            continue
        for v in adj[u]:
            if v not in level and ok(v):
                level[v] = du + 1
                parent[v] = u
                queue.append(v)
    return parent, level


def distance_layers(
    graph: Graph,
    base: Iterable[int],
    max_depth: int | None = None,
    allowed: set[int] | Sequence[bool] | Callable[[int], bool] | None = None,
) -> list[list[int]]:
    """Layers of the layering technique: ``layers[i]`` = nodes at distance
    exactly ``i`` from the base set (``layers[0]`` = base itself).

    This is exactly how the paper builds ``B_1, .., B_s`` from ``B_0``
    (Section 3) and the ``C``/``D`` layers of phases (5) and (6).  The
    result stops at the last non-empty layer (or ``max_depth``).
    """
    dist = bfs_distances(graph, base, max_depth=max_depth, allowed=allowed)
    depth = max((d for d in dist if d != UNREACHED), default=-1)
    layers: list[list[int]] = [[] for _ in range(depth + 1)]
    for v, d in enumerate(dist):
        if d != UNREACHED:
            layers[d].append(v)
    return layers


def closest_source_assignment(
    graph: Graph,
    sources: Iterable[int],
    max_depth: int | None = None,
    allowed: set[int] | Sequence[bool] | Callable[[int], bool] | None = None,
) -> tuple[list[int], list[int]]:
    """Assign every reached node to its closest source, ties by smaller id.

    Returns ``(dist, assigned)`` lists; unreached nodes have ``dist == -1``
    and ``assigned == -1``.  Phase (5) of the randomized algorithm assigns
    each happy node to its closest T-node / boundary node "breaking ties
    using identifiers" — this implements that rule: the BFS processes
    sources in ascending id order, and on equal distance the smaller
    assigned source id wins because it is enqueued first.
    """
    ok = _normalize_allowed(graph, allowed)
    dist = [UNREACHED] * graph.n
    assigned = [UNREACHED] * graph.n
    queue: deque[int] = deque()
    for s in sorted(set(sources)):
        if ok(s) and dist[s] == UNREACHED:
            dist[s] = 0
            assigned[s] = s
            queue.append(s)
    adj = graph.adj
    while queue:
        u = queue.popleft()
        du = dist[u]
        if max_depth is not None and du >= max_depth:
            continue
        for v in adj[u]:
            if dist[v] == UNREACHED and ok(v):
                dist[v] = du + 1
                assigned[v] = assigned[u]
                queue.append(v)
    return dist, assigned


def eccentricity(graph: Graph, v: int, allowed=None) -> int:
    """Eccentricity of ``v`` within its (allowed) connected component."""
    dist = bfs_distances(graph, [v], allowed=allowed)
    return max((d for d in dist if d != UNREACHED), default=0)
