"""Biconnected components (blocks), cut vertices, and the block-cut tree.

Gallai trees (Definition 7) are graphs whose maximal 2-connected components
are all cliques or odd cycles, and Theorem 8 (Erdős–Rubin–Taylor / Vizing)
says these are exactly the graphs that are *not* degree-choosable.  Block
decomposition is therefore the backbone of both DCC detection (a block that
is neither a clique nor an odd cycle is a degree-choosable component,
Definition 9) and of the constructive degree-list coloring in
``repro.core.degree_choosable``.

The implementation is an iterative Hopcroft–Tarjan DFS (no recursion, so it
handles blocks of ten of thousands of nodes without hitting Python's
recursion limit).
"""

from __future__ import annotations

from repro.graphs.graph import Graph

__all__ = [
    "biconnected_components",
    "blocks_through",
    "cut_vertices",
    "block_cut_forest",
    "BlockDecomposition",
]


class BlockDecomposition:
    """Result of a block decomposition.

    Attributes
    ----------
    blocks:
        List of blocks; each block is a sorted list of the nodes it spans.
        An isolated vertex forms no block; a bridge edge forms a 2-node
        block (a K2, which counts as a clique).
    cut_vertices:
        Set of articulation points.
    blocks_of_node:
        ``blocks_of_node[v]`` lists indices (into ``blocks``) of the blocks
        containing ``v``; non-cut vertices belong to at most one block.
    """

    def __init__(self, blocks: list[list[int]], cuts: set[int], n: int):
        self.blocks = blocks
        self.cut_vertices = cuts
        self.blocks_of_node: list[list[int]] = [[] for _ in range(n)]
        for idx, block in enumerate(blocks):
            for v in block:
                self.blocks_of_node[v].append(idx)


def biconnected_components(graph: Graph) -> BlockDecomposition:
    """Compute all blocks (maximal 2-connected subgraphs) of ``graph``.

    Iterative Hopcroft–Tarjan: classic low-link computation with an explicit
    DFS stack and an edge stack; every time a child subtree cannot reach
    above the current vertex, the edges accumulated since entering the child
    are popped as one block.
    """
    n = graph.n
    adj = graph.adj
    disc = [0] * n        # discovery time, 0 = unvisited
    low = [0] * n
    timer = 1
    cuts: set[int] = set()
    blocks: list[list[int]] = []
    edge_stack: list[tuple[int, int]] = []

    for root in range(n):
        if disc[root]:
            continue
        # Each stack frame: [vertex, parent, neighbour iterator,
        # tree-edge-to-parent not yet skipped].  Simple graphs store the
        # parent exactly once per row, so a boolean suffices to skip the
        # tree edge exactly once.
        stack: list[list] = [[root, -1, iter(adj[root]), False]]
        disc[root] = low[root] = timer
        timer += 1
        root_children = 0
        while stack:
            frame = stack[-1]
            u, parent = frame[0], frame[1]
            v = next(frame[2], -1)
            if v >= 0:
                if v == parent and not frame[3]:
                    frame[3] = True
                    continue
                if not disc[v]:
                    edge_stack.append((u, v))
                    disc[v] = low[v] = timer
                    timer += 1
                    stack.append([v, u, iter(adj[v]), False])
                    if u == root:
                        root_children += 1
                elif disc[v] < disc[u]:
                    edge_stack.append((u, v))
                    if disc[v] < low[u]:
                        low[u] = disc[v]
            else:
                stack.pop()
                if parent != -1:
                    if low[u] < low[parent]:
                        low[parent] = low[u]
                    if low[u] >= disc[parent]:
                        # parent is a cut vertex (unless it is the root with
                        # a single child, handled below) and the edges since
                        # (parent, u) form a block.
                        block_nodes: set[int] = set()
                        while edge_stack:
                            a, b = edge_stack[-1]
                            if disc[a] >= disc[u]:
                                edge_stack.pop()
                                block_nodes.add(a)
                                block_nodes.add(b)
                            else:
                                break
                        if edge_stack and edge_stack[-1] == (parent, u):
                            edge_stack.pop()
                        block_nodes.add(parent)
                        block_nodes.add(u)
                        blocks.append(sorted(block_nodes))
                        if parent != root or root_children > 1:
                            cuts.add(parent)
        # Root cut status was handled inline via root_children.
    return BlockDecomposition(blocks, cuts, n)


def blocks_through(
    graph: Graph,
    node: int | None,
    members: list[int],
    mask: bytearray | None = None,
    scratch: tuple[list[int], list[int]] | None = None,
) -> list[list[int]]:
    """Blocks of the subgraph induced by ``members`` that contain ``node``
    (pass ``node=None`` for *all* blocks, in the same discovery order —
    filtering the full list by membership afterwards is exactly
    equivalent, which is what lets DCC detection share one decomposition
    between every node of a common core).

    Runs Hopcroft–Tarjan directly on the original labels, restricted to the
    member set — no induced subgraph is materialised.  This is the DCC
    detection fast path: each detecting node only needs the blocks *through
    itself* inside its ball.  Blocks are returned in the same discovery
    order that :func:`biconnected_components` would produce on the
    relabeled induced subgraph rooted at ``min(members)`` (relabeling by
    ascending original id preserves DFS order), so callers iterating "the
    first acceptable block" behave identically on either path.

    ``members`` need not induce a connected subgraph: roots are taken in
    ascending member order, exactly like the relabeled decomposition.
    Tight-loop callers pass ``mask`` (a length-n ``bytearray`` with exactly
    the member bits set) and ``scratch`` (two length-n zeroed int lists,
    used for discovery/low-link times); both are restored to their zeroed
    state for the member entries before returning, so one allocation
    serves every ball of a detection sweep.
    """
    n = graph.n
    if mask is None:
        mask = bytearray(n)
        for v in members:
            mask[v] = 1
    if scratch is None:
        disc: list[int] = [0] * n
        low: list[int] = [0] * n
    else:
        disc, low = scratch
    adj = graph.adj
    timer = 1
    found: list[list[int]] = []
    edge_stack: list[tuple[int, int]] = []
    for root in sorted(members):
        if disc[root]:
            continue
        stack: list[list] = [[root, -1, iter(adj[root]), False]]
        disc[root] = low[root] = timer
        timer += 1
        while stack:
            frame = stack[-1]
            u, parent = frame[0], frame[1]
            v = next(frame[2], -1)
            if v >= 0:
                if not mask[v]:
                    continue
                if v == parent and not frame[3]:
                    frame[3] = True
                    continue
                dv = disc[v]
                if not dv:
                    edge_stack.append((u, v))
                    disc[v] = low[v] = timer
                    timer += 1
                    stack.append([v, u, iter(adj[v]), False])
                elif dv < disc[u]:
                    edge_stack.append((u, v))
                    if dv < low[u]:
                        low[u] = dv
            else:
                stack.pop()
                if parent != -1:
                    if low[u] < low[parent]:
                        low[parent] = low[u]
                    if low[u] >= disc[parent]:
                        block_nodes: set[int] = set()
                        du = disc[u]
                        while edge_stack:
                            a, b = edge_stack[-1]
                            if disc[a] >= du:
                                edge_stack.pop()
                                block_nodes.add(a)
                                block_nodes.add(b)
                            else:
                                break
                        if edge_stack and edge_stack[-1] == (parent, u):
                            edge_stack.pop()
                        block_nodes.add(parent)
                        block_nodes.add(u)
                        if node is None or node in block_nodes:
                            found.append(sorted(block_nodes))
    for v in members:
        disc[v] = 0
        low[v] = 0
    return found


def cut_vertices(graph: Graph) -> set[int]:
    """Articulation points of ``graph``."""
    return biconnected_components(graph).cut_vertices


def block_cut_forest(graph: Graph) -> tuple[list[list[int]], dict[int, list[int]]]:
    """Block-cut forest: bipartite structure between blocks and cut nodes.

    Returns ``(blocks, tree_adj)`` where ``tree_adj`` maps *block index* to
    the list of cut vertices it contains, which is enough structure for the
    leaf-block peeling used by the constructive list colorer.
    """
    decomposition = biconnected_components(graph)
    tree_adj: dict[int, list[int]] = {}
    for idx, block in enumerate(decomposition.blocks):
        tree_adj[idx] = [v for v in block if v in decomposition.cut_vertices]
    return decomposition.blocks, tree_adj
