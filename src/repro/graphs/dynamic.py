"""Updatable CSR: slack-padded neighbour rows with in-place edge updates.

:class:`repro.graphs.graph.Graph` treats instances as immutable — every
edge delta builds a *new* graph, and even the touched-rows-only rewrite
of :meth:`Graph.apply_updates` pays O(n + m) buffer copies per update.
That is the right trade for snapshot workloads (the service caches and
fingerprints immutable instances), but it is the latency floor of the
*streaming* workload: a single-edge update against a long-lived
:class:`repro.core.incremental.IncrementalColoring` engine should cost
O(Δ), not O(n + m).

:class:`DynamicGraph` is the streaming-native representation.  It keeps
the CSR discipline — one flat native-int data buffer, one start offset
per row — but pads every row to a power-of-two capacity so edges insert
and delete **in place**:

* ``apply_delta(added, removed)`` mutates only the touched rows: an
  insert appends into the row's slack (amortized O(1)); a delete shifts
  the row left (O(deg), preserving neighbour order so downstream seeded
  algorithms behave identically to the immutable path);
* a row out of slack is **relocated** to the tail of the data buffer
  with doubled capacity, leaving a hole; when holes exceed a third of
  the buffer an amortized **compaction** rebuilds the storage with
  fresh power-of-two capacities (a relocation leaves ``old_cap`` holes
  but appends ``≥ 2·old_cap`` fresh slots, so holes can approach but
  never reach half the buffer — one third is the reachable trigger);
* a degree histogram is maintained per op, so ``max_degree()`` — which
  the incremental engine consults on *every* update to police the
  Δ-coloring contract — is O(1) instead of O(n);
* ``apply_delta(..., record_undo=True)`` returns an undo token that
  restores the exact pre-delta rows (content, not layout), which is how
  the engine keeps its "typed rejections leave state untouched" promise
  even for failures discovered after mutation.

``DynamicGraph`` subclasses :class:`Graph`, so everything written
against the immutable interface keeps working: ``csr()`` compacts the
padded rows into a classic ``(offsets, indices)`` pair on demand (cached
until the next mutation; the compaction itself runs vectorized on numpy
with a bit-identical pure-Python fallback), ``adj`` / ``has_edge`` /
``subgraph`` read through the live rows, and :meth:`snapshot` emits an
immutable :class:`Graph` sharing the compacted buffers — safe to hand to
caches and solvers because mutation never writes into a compacted
buffer, it only abandons it.

Equivalence contract (pinned by ``tests/test_dynamic_graph.py``): after
any sequence of deltas, ``csr()`` is **bit-identical** to the immutable
graph produced by folding the same deltas through
:meth:`Graph.apply_updates` — same offsets, same indices, same neighbour
order.
"""

from __future__ import annotations

from array import array
from collections.abc import Iterable

from repro.errors import GraphError
from repro.graphs.graph import Graph

__all__ = ["DynamicGraph", "DeltaUndo"]

#: Smallest per-row capacity (slots); rows never shrink below this.
MIN_ROW_SLOTS = 4


def _row_capacity(deg: int, min_slots: int = MIN_ROW_SLOTS) -> int:
    """Power-of-two capacity with at least one free slot for ``deg`` edges."""
    need = deg + 1
    return max(min_slots, 1 << (need - 1).bit_length())


class DeltaUndo:
    """Opaque token restoring a :class:`DynamicGraph` to its pre-delta rows.

    Captures row *contents* (not storage positions): relocation or
    compaction between capture and restore is irrelevant, the logical
    graph comes back bit-identical.
    """

    __slots__ = ("rows", "num_edges", "deg_hist", "max_deg")

    def __init__(
        self,
        rows: list[tuple[int, array]],
        num_edges: int,
        deg_hist: dict[int, int],
        max_deg: int,
    ):
        self.rows = rows
        self.num_edges = num_edges
        self.deg_hist = deg_hist
        self.max_deg = max_deg


class DynamicGraph(Graph):
    """A simple undirected graph with in-place edge updates.

    Build one with :meth:`from_graph` (the usual route: adopt a solved
    immutable instance into streaming mode) or ``DynamicGraph(n, edges)``.
    The mutating API is :meth:`apply_delta` / :meth:`insert_edge` /
    :meth:`delete_edge`; everything else is the read-only :class:`Graph`
    interface, answered from the live padded rows.
    """

    __slots__ = (
        "_starts",
        "_lens",
        "_caps",
        "_data",
        "_holes",
        "_deg_hist",
        "_dyn_max",
        "_snapshot",
        "relocations",
        "compactions",
        "_min_slots",
    )

    def __init__(self, n: int, edges: Iterable[tuple[int, int]] = (), *,
                 min_slots: int = MIN_ROW_SLOTS):
        base = Graph(n, edges)
        offsets, indices = base.csr()
        self._adopt_csr(n, offsets, indices, base.num_edges, min_slots)

    @classmethod
    def from_graph(cls, graph: Graph, *, min_slots: int = MIN_ROW_SLOTS) -> "DynamicGraph":
        """A dynamic copy of ``graph`` (row order preserved exactly)."""
        dyn = cls.__new__(cls)
        offsets, indices = graph.csr()
        dyn._adopt_csr(graph.n, offsets, indices, graph.num_edges, min_slots)
        return dyn

    def _adopt_csr(
        self, n: int, offsets: array, indices: array, num_edges: int,
        min_slots: int,
    ) -> None:
        self.n = n
        self._num_edges = num_edges
        self._min_slots = min_slots
        lens = array("i", bytes(4 * n))
        caps = array("i", bytes(4 * n))
        starts = array("q", bytes(8 * n))
        total = 0
        for v in range(n):
            deg = offsets[v + 1] - offsets[v]
            lens[v] = deg
            cap = _row_capacity(deg, min_slots)
            caps[v] = cap
            starts[v] = total
            total += cap
        data = array("i", bytes(4 * total))
        for v in range(n):
            deg = lens[v]
            if deg:
                s = starts[v]
                data[s : s + deg] = indices[offsets[v] : offsets[v] + deg]
        self._starts = starts
        self._lens = lens
        self._caps = caps
        self._data = data
        self._holes = 0
        self.relocations = 0
        self.compactions = 0
        hist: dict[int, int] = {}
        for v in range(n):
            d = lens[v]
            hist[d] = hist.get(d, 0) + 1
        self._deg_hist = hist
        self._dyn_max = max(hist) if hist else 0
        # Graph base slots double as invalidatable caches here.
        self._offsets = None
        self._indices = None
        self._adj = None
        self._adj_sets = None
        self._max_degree = None
        self._min_degree = None
        self._snapshot = None

    # -- cache discipline --------------------------------------------------

    def _touch(self) -> None:
        """Invalidate every derived view after a mutation."""
        self._offsets = None
        self._indices = None
        self._adj = None
        self._adj_sets = None
        self._min_degree = None
        self._snapshot = None

    # -- read interface (overrides answering from live rows) --------------

    @property
    def adj(self) -> list[list[int]]:
        cached = self._adj
        if cached is None:
            data, starts, lens = self._data, self._starts, self._lens
            cached = [
                data[starts[v] : starts[v] + lens[v]].tolist()
                for v in range(self.n)
            ]
            self._adj = cached
        return cached

    def degree(self, v: int) -> int:
        return self._lens[v]

    def degrees(self) -> list[int]:
        return self._lens.tolist()

    def max_degree(self) -> int:
        """O(1): maintained through the degree histogram."""
        return self._dyn_max

    def min_degree(self) -> int:
        if self._min_degree is None:
            self._min_degree = min(self._lens) if self.n else 0
        return self._min_degree

    def neighbors(self, v: int) -> list[int]:
        s = self._starts[v]
        return self._data[s : s + self._lens[v]].tolist()

    def neighbors_csr(self, v: int) -> memoryview:
        s = self._starts[v]
        return memoryview(self._data)[s : s + self._lens[v]]

    def has_edge(self, u: int, v: int) -> bool:
        # Probe the smaller row; never build the adjacency-set cache.
        if self._lens[v] < self._lens[u]:
            u, v = v, u
        s = self._starts[u]
        data = self._data
        for i in range(s, s + self._lens[u]):
            if data[i] == v:
                return True
        return False

    def adjacency_sets(self) -> list[set[int]]:
        if self._adj_sets is None:
            self._adj_sets = [set(row) for row in self.adj]
        return self._adj_sets

    def csr(self) -> tuple[array, array]:
        """Compact the padded rows into classic CSR buffers (cached until
        the next mutation; never aliased by future mutations)."""
        if self._offsets is None:
            np = _numpy()
            if np is not None and self.n >= 512:
                self._offsets, self._indices = self._compact_numpy(np)
            else:
                self._offsets, self._indices = self._compact_python()
        return self._offsets, self._indices

    def _compact_python(self) -> tuple[array, array]:
        n = self.n
        lens, starts, data = self._lens, self._starts, self._data
        offsets = array("i", bytes(4 * (n + 1)))
        total = 0
        for v in range(n):
            total += lens[v]
            offsets[v + 1] = total
        indices = array("i", bytes(4 * total))
        for v in range(n):
            deg = lens[v]
            if deg:
                s = starts[v]
                indices[offsets[v] : offsets[v] + deg] = data[s : s + deg]
        return offsets, indices

    def _compact_numpy(self, np) -> tuple[array, array]:
        lens = np.frombuffer(self._lens, dtype=np.int32).astype(np.int64)
        starts = np.frombuffer(self._starts, dtype=np.int64)
        data = np.frombuffer(self._data, dtype=np.int32)
        offsets = np.zeros(self.n + 1, dtype=np.int64)
        np.cumsum(lens, out=offsets[1:])
        total = int(offsets[-1])
        # Source index of every compacted slot: its row's padded start
        # plus its offset within the row.
        rows = np.repeat(np.arange(self.n, dtype=np.int64), lens)
        within = np.arange(total, dtype=np.int64) - np.repeat(offsets[:-1], lens)
        gathered = data[starts[rows] + within]
        return (
            array("i", offsets.astype(np.int32).tobytes()),
            array("i", gathered.astype(np.int32, copy=False).tobytes()),
        )

    def snapshot(self) -> Graph:
        """An immutable :class:`Graph` of the current state (cached until
        the next mutation; shares the compacted CSR buffers, which later
        mutations abandon rather than overwrite)."""
        if self._snapshot is None:
            offsets, indices = self.csr()
            graph = Graph._from_csr(self.n, offsets, indices, self._num_edges)
            graph._max_degree = self._dyn_max
            self._snapshot = graph
        return self._snapshot

    def apply_updates(
        self,
        added: Iterable[tuple[int, int]] = (),
        removed: Iterable[tuple[int, int]] = (),
    ) -> Graph:
        """Immutable-style delta: a *new* graph, this one untouched."""
        return self.snapshot().apply_updates(added, removed)

    # -- mutation ----------------------------------------------------------

    def insert_edge(self, u: int, v: int) -> None:
        """Insert ``{u, v}`` in place (validated)."""
        self.apply_delta(added=[(u, v)])

    def delete_edge(self, u: int, v: int) -> None:
        """Delete ``{u, v}`` in place (validated)."""
        self.apply_delta(removed=[(u, v)])

    def apply_delta(
        self,
        added: Iterable[tuple[int, int]] = (),
        removed: Iterable[tuple[int, int]] = (),
        *,
        record_undo: bool = False,
        _validated: bool = False,
    ) -> DeltaUndo | None:
        """Apply a whole delta **in place**: O(vol of touched rows).

        Validation matches :meth:`Graph.apply_updates` exactly (raises
        :class:`GraphError` with the same messages, state untouched):
        endpoints in range, no self-loops, removed edges present, added
        edges absent, no key repeated within the batch or appearing in
        both lists.  All checks run before the first mutation, so a
        raising call never leaves a partial delta behind.

        With ``record_undo=True`` returns a :class:`DeltaUndo` token for
        :meth:`undo_delta`.  ``_validated`` skips the validation pass for
        callers that already ran an equivalent one (the incremental
        engine's typed-rejection layer does).
        """
        added = list(added)
        removed = list(removed)
        if not _validated:
            self._validate_delta(added, removed)
        undo = None
        if record_undo:
            touched = {w for edge in added for w in edge}
            touched.update(w for edge in removed for w in edge)
            data, starts, lens = self._data, self._starts, self._lens
            undo = DeltaUndo(
                rows=[
                    (v, data[starts[v] : starts[v] + lens[v]])
                    for v in touched
                ],
                num_edges=self._num_edges,
                deg_hist=dict(self._deg_hist),
                max_deg=self._dyn_max,
            )
        # Removals first, then insertions, mirroring the per-row
        # "drop then extend" order of Graph.apply_updates.
        for u, v in removed:
            self._row_remove(u, v)
            self._row_remove(v, u)
        for u, v in added:
            self._row_append(u, v)
            self._row_append(v, u)
        self._num_edges += len(added) - len(removed)
        self._touch()
        return undo

    def undo_delta(self, undo: DeltaUndo) -> None:
        """Restore the rows captured by ``apply_delta(record_undo=True)``."""
        for v, row in undo.rows:
            ln = len(row)
            # No stale locals here: _grow_row can trigger a compaction that
            # replaces the storage buffers wholesale.
            if self._caps[v] < ln:
                self._grow_row(v, ln)
            if ln:
                start = self._starts[v]
                self._data[start : start + ln] = row
            self._lens[v] = ln
        self._deg_hist = dict(undo.deg_hist)
        self._dyn_max = undo.max_deg
        self._num_edges = undo.num_edges
        self._touch()

    def delta_after(
        self,
        added: Iterable[tuple[int, int]],
        removed: Iterable[tuple[int, int]],
    ) -> int:
        """The max degree the graph would have after the delta, without
        applying it: O(touched) through the degree histogram."""
        change: dict[int, int] = {}
        for u, v in added:
            change[u] = change.get(u, 0) + 1
            change[v] = change.get(v, 0) + 1
        for u, v in removed:
            change[u] = change.get(u, 0) - 1
            change[v] = change.get(v, 0) - 1
        hist = self._deg_hist
        lens = self._lens
        adjusted: dict[int, int] = {}
        top = self._dyn_max
        for v, d in change.items():
            old = lens[v]
            new = old + d
            adjusted[old] = adjusted.get(old, 0) - 1
            adjusted[new] = adjusted.get(new, 0) + 1
            if new > top:
                top = new
        d = top
        while d > 0 and hist.get(d, 0) + adjusted.get(d, 0) <= 0:
            d -= 1
        return d

    def storage_stats(self) -> dict[str, int]:
        """Internal layout accounting (for tests and capacity planning)."""
        return {
            "data_slots": len(self._data),
            "live_slots": sum(self._lens),
            "holes": self._holes,
            "relocations": self.relocations,
            "compactions": self.compactions,
        }

    # -- internals ---------------------------------------------------------

    def _validate_delta(
        self, added: list[tuple[int, int]], removed: list[tuple[int, int]]
    ) -> None:
        """The :meth:`Graph.apply_updates` validation contract, verbatim."""
        n = self.n
        for u, v in added + removed:
            if not (0 <= u < n and 0 <= v < n):
                raise GraphError(f"edge ({u}, {v}) out of range for n={n}")
            if u == v:
                raise GraphError(f"self-loop at node {u} is not allowed")
        removed_keys: set[tuple[int, int]] = set()
        for u, v in removed:
            key = (u, v) if u < v else (v, u)
            if key in removed_keys:
                raise GraphError(f"edge ({u}, {v}) removed twice in one update")
            removed_keys.add(key)
            if not self.has_edge(u, v):
                raise GraphError(f"cannot remove edge ({u}, {v}): not present")
        added_keys: set[tuple[int, int]] = set()
        for u, v in added:
            key = (u, v) if u < v else (v, u)
            if key in added_keys:
                raise GraphError(f"duplicate edge ({u}, {v}) in update batch")
            if key in removed_keys:
                raise GraphError(
                    f"edge ({u}, {v}) both added and removed in one update"
                )
            added_keys.add(key)
            if self.has_edge(u, v):
                raise GraphError(f"cannot add edge ({u}, {v}): already present")

    def _bump_degree(self, v: int, new: int) -> None:
        hist = self._deg_hist
        old = self._lens[v]
        count = hist.get(old, 0) - 1
        if count:
            hist[old] = count
        else:
            hist.pop(old, None)
        hist[new] = hist.get(new, 0) + 1
        self._lens[v] = new
        if new > self._dyn_max:
            self._dyn_max = new
        elif old == self._dyn_max and old not in hist:
            d = old
            while d > 0 and hist.get(d, 0) <= 0:
                d -= 1
            self._dyn_max = d

    def _row_append(self, v: int, w: int) -> None:
        ln = self._lens[v]
        if ln == self._caps[v]:
            self._grow_row(v, ln + 1)
        self._data[self._starts[v] + ln] = w
        self._bump_degree(v, ln + 1)

    def _row_remove(self, v: int, w: int) -> None:
        start = self._starts[v]
        ln = self._lens[v]
        data = self._data
        end = start + ln
        for i in range(start, end):
            if data[i] == w:
                break
        else:  # pragma: no cover - presence validated before mutation
            raise GraphError(f"cannot remove edge ({v}, {w}): not present")
        if i < end - 1:
            data[i : end - 1] = data[i + 1 : end]  # shift left, order kept
        self._bump_degree(v, ln - 1)

    def _grow_row(self, v: int, needed: int) -> None:
        """Relocate row ``v`` to the tail of the data buffer with at least
        ``needed`` slots (power-of-two), leaving a hole behind."""
        new_cap = max(_row_capacity(needed - 1, self._min_slots), self._caps[v] * 2)
        data = self._data
        start, ln = self._starts[v], self._lens[v]
        new_start = len(data)
        data.extend(data[start : start + ln])
        if new_cap > ln:
            data.extend(array("i", bytes(4 * (new_cap - ln))))
        self._holes += self._caps[v]
        self._starts[v] = new_start
        self._caps[v] = new_cap
        self.relocations += 1
        if self._holes * 3 > len(data):
            self._compact_storage()

    def _compact_storage(self) -> None:
        """Rebuild the padded storage: fresh power-of-two capacities, no
        holes.  Amortized against the relocations that triggered it."""
        n = self.n
        old_data, old_starts, lens = self._data, self._starts, self._lens
        caps = array("i", bytes(4 * n))
        starts = array("q", bytes(8 * n))
        total = 0
        for v in range(n):
            cap = _row_capacity(lens[v], self._min_slots)
            caps[v] = cap
            starts[v] = total
            total += cap
        data = array("i", bytes(4 * total))
        for v in range(n):
            deg = lens[v]
            if deg:
                s_old, s_new = old_starts[v], starts[v]
                data[s_new : s_new + deg] = old_data[s_old : s_old + deg]
        self._starts = starts
        self._caps = caps
        self._data = data
        self._holes = 0
        self.compactions += 1

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"DynamicGraph(n={self.n}, m={self.num_edges}, Δ={self.max_degree()}, "
            f"slots={len(self._data)}, holes={self._holes})"
        )


def _numpy():
    try:
        import numpy as np
    except Exception:  # pragma: no cover - numpy-free environments
        return None
    return np
