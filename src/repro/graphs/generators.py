"""Graph generators: the workloads for tests and benchmarks.

The paper's algorithms target *nice* graphs (connected, not a path / cycle /
clique) with maximum degree Δ >= 3.  The generators here cover the regimes
its analysis distinguishes:

* **Random Δ-regular graphs** (configuration model) — the canonical "hard"
  instance: locally tree-like, so almost no node sees a small
  degree-choosable component and the shattering machinery (phases 4-6) does
  all the work.  Used by experiments E1, E2, E4, E6, E7.
* **Torus grids / hypercubes** — structured regular graphs with many short
  even cycles, i.e. DCCs everywhere; the DCC-removal phases (1-3) do all the
  work.  Good contrast workload.
* **Gallai trees** — graphs with *no* DCC at all (every block a clique or
  odd cycle); the adversarial regime for degree-choosability and the
  negative instances for property tests of Theorem 8.
* **Irregular random graphs with a degree cap** — exercise boundary nodes
  (degree < Δ), which every phase must treat as "free" slack.

All generators take an explicit ``seed`` and are deterministic given it.
"""

from __future__ import annotations

import random

from repro.errors import GraphError
from repro.graphs.graph import Graph, GraphBuilder

__all__ = [
    "cycle_graph",
    "path_graph",
    "complete_graph",
    "complete_graph_minus_edge",
    "torus_grid",
    "hypercube",
    "random_regular_graph",
    "random_graph_with_max_degree",
    "random_tree",
    "random_gallai_tree",
    "random_nice_graph",
    "disjoint_union",
]


def cycle_graph(n: int) -> Graph:
    """The cycle C_n (n >= 3)."""
    if n < 3:
        raise GraphError("cycle needs n >= 3")
    return Graph(n, [(i, (i + 1) % n) for i in range(n)])


def path_graph(n: int) -> Graph:
    """The path P_n (n >= 1)."""
    return Graph(n, [(i, i + 1) for i in range(n - 1)])


def complete_graph(n: int) -> Graph:
    """The clique K_n."""
    return Graph(n, [(i, j) for i in range(n) for j in range(i + 1, n)])


def complete_graph_minus_edge(n: int) -> Graph:
    """K_n minus one edge: the smallest nice graph of degree Δ = n-1 family.

    For n >= 4 this is a single DCC (2-connected, not a clique, not an odd
    cycle), so it Δ-colors through pure degree-choosability — a useful unit
    test for the ERT colorer.
    """
    if n < 3:
        raise GraphError("need n >= 3")
    edges = [(i, j) for i in range(n) for j in range(i + 1, n) if (i, j) != (0, 1)]
    return Graph(n, edges)


def torus_grid(rows: int, cols: int) -> Graph:
    """The ``rows x cols`` torus: 4-regular, vertex-transitive, girth 4
    (for rows, cols >= 5), hence DCCs (4-cycles) everywhere."""
    if rows < 3 or cols < 3:
        raise GraphError("torus needs rows, cols >= 3")
    n = rows * cols
    edges = set()
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            right = r * cols + (c + 1) % cols
            down = ((r + 1) % rows) * cols + c
            for w in (right, down):
                if v != w:
                    edges.add((min(v, w), max(v, w)))
    return Graph.from_edges_unchecked(n, sorted(edges))


def hypercube(dim: int) -> Graph:
    """The ``dim``-dimensional hypercube: 2^dim nodes, Δ = dim, girth 4."""
    if dim < 1:
        raise GraphError("hypercube needs dim >= 1")
    n = 1 << dim
    edges = [(v, v ^ (1 << b)) for v in range(n) for b in range(dim) if v < v ^ (1 << b)]
    return Graph.from_edges_unchecked(n, edges)


def random_regular_graph(n: int, d: int, seed: int = 0, max_restarts: int = 200) -> Graph:
    """Random ``d``-regular simple graph via the configuration model.

    Pairs up ``n*d`` half-edges uniformly at random and retries the whole
    pairing whenever it produces a self-loop or parallel edge.  For d << n
    the acceptance probability is roughly ``exp(-(d^2-1)/4)``, so a few
    dozen restarts suffice for every d used in the benchmarks; a local
    repair pass (re-pairing only conflicting half-edges) keeps the restart
    count low for larger d.

    Raises :class:`GraphError` when ``n*d`` is odd or ``d >= n``.
    """
    if d < 0 or d >= n:
        raise GraphError(f"need 0 <= d < n, got d={d}, n={n}")
    if (n * d) % 2 != 0:
        raise GraphError("n*d must be even for a d-regular graph")
    rng = random.Random(seed)
    for _ in range(max_restarts):
        edges = _configuration_model_attempt(n, d, rng)
        if edges is not None:
            return Graph.from_edges_unchecked(n, edges)
    # Dense/small cases where stub pairing keeps colliding: start from a
    # circulant d-regular graph and randomize with double edge swaps.
    return _circulant_with_swaps(n, d, rng)


def _circulant_with_swaps(n: int, d: int, rng: random.Random) -> Graph:
    """Deterministic circulant d-regular graph randomized by 2-opt swaps."""
    edges: set[tuple[int, int]] = set()
    half = d // 2
    for v in range(n):
        for offset in range(1, half + 1):
            u = (v + offset) % n
            edges.add((min(v, u), max(v, u)))
    if d % 2 == 1:
        for v in range(n // 2):
            u = v + n // 2
            edges.add((min(v, u), max(v, u)))
    edge_list = sorted(edges)
    for _ in range(10 * len(edge_list)):
        i, j = rng.randrange(len(edge_list)), rng.randrange(len(edge_list))
        (u, v), (x, y) = edge_list[i], edge_list[j]
        if len({u, v, x, y}) < 4:
            continue
        a, b = (min(u, x), max(u, x)), (min(v, y), max(v, y))
        if a in edges or b in edges:
            continue
        edges.discard((min(u, v), max(u, v)))
        edges.discard((min(x, y), max(x, y)))
        edges.add(a)
        edges.add(b)
        edge_list[i], edge_list[j] = a, b
    return Graph.from_edges_unchecked(n, sorted(edges))


def _shuffle_order(rng: random.Random, count: int, np=None):
    """Permutation of ``range(count)`` from one ``rng.randbytes`` draw.

    Both configuration-model paths shuffle by assigning every position a
    64-bit key from the *same* byte stream and stably sorting, so the
    numpy path and the pure-Python path consume identical entropy and
    produce identical permutations (ties, if any, break by position in
    both).  Returns a numpy array when ``np`` is given, else a list.
    """
    buf = rng.randbytes(8 * count)
    if np is not None:
        keys = np.frombuffer(buf, dtype="<u8")
        return np.argsort(keys, kind="stable")
    keys = [
        int.from_bytes(buf[8 * i : 8 * i + 8], "little") for i in range(count)
    ]
    return sorted(range(count), key=keys.__getitem__)


def _configuration_model_attempt(
    n: int, d: int, rng: random.Random, repair_rounds: int = 50
) -> list[tuple[int, int]] | None:
    """One configuration-model attempt with local repair.

    Pairs the ``n*d`` half-edges along a key-sorted permutation
    (:func:`_shuffle_order`), detects self-loops / parallel edges, and
    re-pairs conflicting stubs (plus a few good edges broken open) for up
    to ``repair_rounds`` rounds.  The scan and pairing run on numpy when
    available and fall back to pure Python; the two paths draw the same
    entropy and return bit-identical edge lists.

    Returns the edge list, or ``None`` if conflicts could not be repaired.
    """
    try:
        import numpy as np
    except Exception:  # pragma: no cover - numpy-free environments
        np = None
    if np is not None and n * d >= 256:
        return _attempt_vectorized(n, d, rng, repair_rounds, np)
    return _attempt_python(n, d, rng, repair_rounds)


def _attempt_python(
    n: int, d: int, rng: random.Random, repair_rounds: int
) -> list[tuple[int, int]] | None:
    """Pure-Python configuration-model attempt (reference semantics)."""
    order = _shuffle_order(rng, n * d)
    # Stub j belongs to node j // d.
    pairs = [
        (order[2 * i] // d, order[2 * i + 1] // d) for i in range(len(order) // 2)
    ]
    for _ in range(repair_rounds):
        good: list[tuple[int, int]] = []
        bad_stubs: list[int] = []
        # Packed-int edge keys: no tuple allocation/hashing in the scan.
        seen: set[int] = set()
        for u, v in pairs:
            key = (u << 32) | v if u < v else (v << 32) | u
            if u == v or key in seen:
                bad_stubs.extend((u, v))
            else:
                seen.add(key)
                good.append((u, v) if u < v else (v, u))
        if not bad_stubs:
            return good
        if len(bad_stubs) > max(4, n // 2):
            return None
        # Re-pair the conflicting stubs together with a few random good
        # edges broken open, to give the repair room to succeed.
        k = min(len(good), len(bad_stubs))
        good = [good[i] for i in _shuffle_order(rng, len(good))]
        for _ in range(k):
            u, v = good.pop()
            bad_stubs.extend((u, v))
        bad_stubs = [bad_stubs[i] for i in _shuffle_order(rng, len(bad_stubs))]
        pairs = good + [
            (bad_stubs[2 * i], bad_stubs[2 * i + 1]) for i in range(len(bad_stubs) // 2)
        ]
    return None


def _attempt_vectorized(
    n: int, d: int, rng: random.Random, repair_rounds: int, np
) -> list[tuple[int, int]] | None:
    """Numpy twin of :func:`_attempt_python` (bit-identical output).

    Pairing, conflict detection (self-loops, duplicate edges keeping the
    first occurrence) and the repair-round bookkeeping are all array
    operations; only the rng draws and the loop skeleton match the pure
    path step for step.
    """
    order = _shuffle_order(rng, n * d, np)
    us = order[0::2] // d
    vs = order[1::2] // d
    for _ in range(repair_rounds):
        lo = np.minimum(us, vs)
        hi = np.maximum(us, vs)
        keys = lo.astype(np.int64) * n + hi
        # A pair is bad if it is a self-loop or repeats an earlier key;
        # stable sort puts equal keys in scan order, so "not the first of
        # its run" is exactly the fallback's ``key in seen``.
        perm = np.argsort(keys, kind="stable")
        dup_sorted = np.zeros(len(keys), dtype=bool)
        if len(keys) > 1:
            dup_sorted[1:] = keys[perm][1:] == keys[perm][:-1]
        bad = np.zeros(len(keys), dtype=bool)
        bad[perm] = dup_sorted
        bad |= us == vs
        if not bad.any():
            return list(zip(lo.tolist(), hi.tolist()))
        bad_count = int(bad.sum())
        if 2 * bad_count > max(4, n // 2):
            return None
        good_lo, good_hi = lo[~bad], hi[~bad]
        bad_stubs = np.column_stack((us[bad], vs[bad])).ravel()
        k = min(len(good_lo), len(bad_stubs))
        order = _shuffle_order(rng, len(good_lo), np)
        good_lo, good_hi = good_lo[order], good_hi[order]
        if k:
            # The fallback pops k pairs off the end, appending (u, v) per
            # pop: the tail in reverse, interleaved.
            tail = np.column_stack(
                (good_lo[len(good_lo) - k :], good_hi[len(good_hi) - k :])
            )[::-1].ravel()
            bad_stubs = np.concatenate((bad_stubs, tail))
            good_lo, good_hi = good_lo[:-k], good_hi[:-k]
        order = _shuffle_order(rng, len(bad_stubs), np)
        bad_stubs = bad_stubs[order]
        us = np.concatenate((good_lo, bad_stubs[0::2]))
        vs = np.concatenate((good_hi, bad_stubs[1::2]))
    return None


def high_girth_regular_graph(
    n: int, d: int, girth: int, seed: int = 0, max_swaps: int = 20000
) -> Graph:
    """Random ``d``-regular graph with girth >= ``girth``.

    Starts from a configuration-model sample and repeatedly breaks the
    shortest cycle by a degree-preserving double edge swap with a random
    far-away edge.  These are the paper's *hard* instances: with girth
    > 4·r + 2 no node sees a degree-choosable component within radius r,
    so the base layer B0 is empty and the entire graph goes through the
    shattering phases (4)-(6) — exactly the regime Lemmas 12/14/15 and 23
    reason about.

    Feasible whenever the Moore bound allows it; the swap loop raises
    :class:`GraphError` if it cannot reach the target girth (ask for a
    larger n or smaller girth).
    """
    rng = random.Random(seed)
    graph = random_regular_graph(n, d, seed=rng.randrange(1 << 30))
    for _ in range(max_swaps):
        cycle = _short_cycle(graph, girth - 1)
        if cycle is None:
            return graph
        u, v = cycle[0], cycle[1]
        edges = list(graph.edges())
        for _attempt in range(200):
            x, y = edges[rng.randrange(len(edges))]
            if len({u, v, x, y}) < 4:
                continue
            # Swap (u,v),(x,y) -> (u,x),(v,y) keeping the graph simple.
            if graph.has_edge(u, x) or graph.has_edge(v, y):
                continue
            new_edges = [
                e for e in edges if e not in ((min(u, v), max(u, v)), (min(x, y), max(x, y)))
            ]
            new_edges.append((min(u, x), max(u, x)))
            new_edges.append((min(v, y), max(v, y)))
            candidate = Graph.from_edges_unchecked(n, new_edges)
            if candidate.is_connected():
                graph = candidate
                break
        else:
            raise GraphError("edge-swap girth boosting got stuck")
    raise GraphError(
        f"could not reach girth {girth} on a {d}-regular graph with n={n}"
    )


def _short_cycle(graph: Graph, max_len: int) -> list[int] | None:
    """Some cycle of length <= max_len, as a vertex list (or None)."""
    for root in range(graph.n):
        dist = {root: 0}
        parent = {root: -1}
        queue = [root]
        head = 0
        while head < len(queue):
            u = queue[head]
            head += 1
            if dist[u] * 2 >= max_len:
                continue
            for v in graph.adj[u]:
                if v == parent[u]:
                    continue
                if v in dist:
                    if dist[u] + dist[v] + 1 <= max_len:
                        path_u = _path_to_root(parent, u)
                        path_v = _path_to_root(parent, v)
                        return _merge_cycle(path_u, path_v)
                else:
                    dist[v] = dist[u] + 1
                    parent[v] = u
                    queue.append(v)
    return None


def _path_to_root(parent: dict[int, int], u: int) -> list[int]:
    path = [u]
    while parent[path[-1]] != -1:
        path.append(parent[path[-1]])
    return path


def _merge_cycle(path_u: list[int], path_v: list[int]) -> list[int]:
    """Combine two root paths meeting at their last common ancestor."""
    set_v = set(path_v)
    meet_index = next(i for i, x in enumerate(path_u) if x in set_v)
    meet = path_u[meet_index]
    tail = path_v[: path_v.index(meet)]
    return path_u[: meet_index + 1] + list(reversed(tail))


def random_graph_with_max_degree(
    n: int, max_degree: int, target_avg_degree: float, seed: int = 0
) -> Graph:
    """Random graph with degrees capped at ``max_degree``.

    Samples candidate edges uniformly and keeps those not violating the cap,
    until the average degree reaches ``target_avg_degree`` or candidates are
    exhausted.  Produces irregular instances with genuine boundary
    (degree < Δ) nodes, exercising the "free node" code paths.
    """
    if max_degree < 1 or n < 2:
        raise GraphError("need max_degree >= 1 and n >= 2")
    rng = random.Random(seed)
    target_edges = int(n * target_avg_degree / 2)
    degrees = [0] * n
    edges: set[tuple[int, int]] = set()
    attempts = 0
    max_attempts = 40 * target_edges + 100
    while len(edges) < target_edges and attempts < max_attempts:
        attempts += 1
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u == v:
            continue
        key = (min(u, v), max(u, v))
        if key in edges or degrees[u] >= max_degree or degrees[v] >= max_degree:
            continue
        edges.add(key)
        degrees[u] += 1
        degrees[v] += 1
    return Graph.from_edges_unchecked(n, sorted(edges))


def random_tree(n: int, seed: int = 0, max_degree: int | None = None) -> Graph:
    """Uniform-ish random tree via random attachment with a degree cap."""
    if n < 1:
        raise GraphError("need n >= 1")
    rng = random.Random(seed)
    degrees = [0] * n
    builder = GraphBuilder(n)
    for v in range(1, n):
        while True:
            u = rng.randrange(v)
            if max_degree is None or degrees[u] < max_degree - (1 if v < n - 1 else 0):
                break
        builder.add_edge(u, v)
        degrees[u] += 1
        degrees[v] += 1
    return builder.build()


def random_gallai_tree(
    num_blocks: int, seed: int = 0, max_clique: int = 5, max_cycle: int = 9
) -> Graph:
    """Random Gallai tree: a tree of blocks, each a clique or an odd cycle.

    Blocks are glued at single shared (cut) vertices, so every maximal
    2-connected component is exactly one generated block — by Definition 7
    the result is a Gallai tree, and by Theorem 8 it is *not*
    degree-choosable.  These are the negative instances for DCC detection
    and the ERT colorer's infeasibility tests.
    """
    if num_blocks < 1:
        raise GraphError("need at least one block")
    rng = random.Random(seed)
    edges: list[tuple[int, int]] = []
    all_nodes: list[int] = [0]
    next_node = 1
    for block_index in range(num_blocks):
        attach = 0 if block_index == 0 else rng.choice(all_nodes)
        if rng.random() < 0.5:
            size = rng.randrange(2, max_clique + 1)
            members = [attach] + list(range(next_node, next_node + size - 1))
            for i, u in enumerate(members):
                for v in members[i + 1:]:
                    edges.append((u, v))
        else:
            length = rng.choice([k for k in range(3, max_cycle + 1, 2)])
            members = [attach] + list(range(next_node, next_node + length - 1))
            for i in range(len(members)):
                edges.append((members[i], members[(i + 1) % len(members)]))
        fresh = [v for v in members if v != attach]
        next_node += len(fresh)
        all_nodes.extend(fresh)
    return Graph.from_edges_unchecked(next_node, sorted({(min(u, v), max(u, v)) for u, v in edges}))


def random_nice_graph(n: int, delta: int, seed: int = 0) -> Graph:
    """A connected nice graph with maximum degree exactly ``delta``.

    Sampled as a random graph with capped degree grown until connected, then
    patched to guarantee niceness; convenience generator for property tests
    that want "any valid algorithm input".
    """
    if delta < 3 or n < delta + 2:
        raise GraphError("need delta >= 3 and n >= delta + 2")
    rng = random.Random(seed)
    for attempt in range(60):
        graph = random_graph_with_max_degree(
            n, delta, target_avg_degree=min(delta - 0.3, 2.5 + delta / 2), seed=rng.randrange(1 << 30)
        )
        graph = _connect_components(graph, delta, rng)
        if graph is None:
            continue
        if graph.max_degree() == delta:
            from repro.graphs.properties import is_nice

            if is_nice(graph):
                return graph
    raise GraphError(f"failed to sample a nice graph (n={n}, delta={delta})")


def _connect_components(graph: Graph, max_degree: int, rng: random.Random) -> Graph | None:
    """Join components by adding edges between low-degree nodes."""
    components = graph.connected_components()
    if len(components) == 1:
        return graph
    edges = list(graph.edges())
    degrees = graph.degrees()
    previous = None
    for component in components:
        candidates = [v for v in component if degrees[v] < max_degree]
        if not candidates:
            return None
        pick = rng.choice(candidates)
        if previous is not None:
            edges.append((previous, pick))
            degrees[previous] += 1
            degrees[pick] += 1
        candidates = [v for v in component if degrees[v] < max_degree]
        if not candidates:
            return None
        previous = rng.choice(candidates)
    return Graph.from_edges_unchecked(graph.n, edges)


def disjoint_union(graphs: list[Graph]) -> Graph:
    """Disjoint union with consecutive relabeling."""
    builder = GraphBuilder()
    offset = 0
    for graph in graphs:
        for u, v in graph.edges():
            builder.add_edge(u + offset, v + offset)
        offset += graph.n
        if offset:
            builder.ensure_node(offset - 1)
    return builder.build()
