"""Core graph data structure for the LOCAL-model simulator.

The paper works with simple undirected graphs ``G = (V, E)`` where ``V`` is
identified with ``{0, .., n-1}``; the node index doubles as the unique
identifier that LOCAL-model algorithms may use for symmetry breaking.

The representation is a flat **compressed-sparse-row (CSR)** pair: one
``array('i')`` of neighbour indices plus one ``array('i')`` of per-node
offsets into it (``offsets[v] .. offsets[v+1]`` delimits the neighbours of
``v``).  Compared to the list-of-lists layout this package started with,
CSR keeps the whole adjacency structure in two contiguous native-int
buffers, which

* makes construction a pair of counting passes (no per-edge set hashing),
* gives O(1) ``degree`` / ``num_edges`` / cached ``max_degree``,
* shrinks memory by roughly an order of magnitude (two machine ints per
  directed edge instead of a PyObject pointer per neighbour plus per-node
  list headers), which is what lets million-edge instances fit and
  traverse quickly in pure Python, and
* lets :meth:`subgraph` build induced instances through an unchecked
  internal fast path (the remainder-graph / per-layer pattern of the
  paper's algorithms builds thousands of small subgraphs per run).

Compatibility: ``Graph.adj`` is still a list-of-lists — it is materialised
lazily from the CSR buffers on first access and cached, so existing call
sites (and tight loops that bind ``adj = graph.adj`` once) keep working at
full speed while code that never touches ``adj`` never pays for it.
Neighbour order is exactly the classic insertion order (for each input
edge ``(u, v)``: ``v`` is appended to ``u``'s row and ``u`` to ``v``'s), so
seeded algorithms behave identically to the historical representation.

Three scaling helpers are new: :meth:`Graph.neighbors_csr` (zero-copy
memoryview of a neighbour row), :meth:`Graph.subgraph_view`
(allocation-free masked view for "run on the remainder graph H" call
sites), and :class:`GraphBuilder` (incremental construction for
generators, with optional deduplication).
"""

from __future__ import annotations

from array import array
from collections import Counter
from collections.abc import Iterable, Iterator, Sequence

from repro.errors import GraphError

__all__ = ["Graph", "GraphBuilder", "SubgraphView"]


class Graph:
    """A simple undirected graph on nodes ``0..n-1``.

    Parameters
    ----------
    n:
        Number of nodes.
    edges:
        Iterable of ``(u, v)`` pairs with ``0 <= u, v < n`` and ``u != v``.
        Duplicate edges are rejected.

    Notes
    -----
    Instances are treated as immutable after construction; all algorithms
    derive new graphs via :meth:`subgraph` instead of mutating.  The
    ``adj`` attribute is a cached read-only view — do not mutate the lists
    it hands out.
    """

    __slots__ = (
        "n",
        "_offsets",
        "_indices",
        "_num_edges",
        "_adj",
        "_adj_sets",
        "_max_degree",
        "_min_degree",
    )

    def __init__(self, n: int, edges: Iterable[tuple[int, int]] = ()):
        if n < 0:
            raise GraphError(f"node count must be non-negative, got {n}")
        self.n = n
        edge_list = edges if isinstance(edges, (list, tuple)) else list(edges)
        # Pass 1: validate endpoints and count degrees.
        offsets = array("i", bytes(4 * (n + 1)))
        for u, v in edge_list:
            if not (0 <= u < n and 0 <= v < n):
                raise GraphError(f"edge ({u}, {v}) out of range for n={n}")
            if u == v:
                raise GraphError(f"self-loop at node {u} is not allowed")
            offsets[u + 1] += 1
            offsets[v + 1] += 1
        total = 0
        for i in range(1, n + 1):
            total += offsets[i]
            offsets[i] = total
        # Pass 2: fill neighbour rows in insertion order.
        indices = array("i", bytes(4 * total))
        cursor = array("i", offsets[:n])
        for u, v in edge_list:
            indices[cursor[u]] = v
            cursor[u] += 1
            indices[cursor[v]] = u
            cursor[v] += 1
        # Pass 3: duplicate detection by neighbour stamping (O(n + m), no
        # tuple-set hashing; ``stamp[w] == u + 1`` iff w was already seen in
        # u's row).
        stamp = array("i", bytes(4 * n))
        for u in range(n):
            mark = u + 1
            for w in indices[offsets[u] : offsets[u + 1]]:
                if stamp[w] == mark:
                    raise GraphError(f"duplicate edge ({u}, {w})")
                stamp[w] = mark
        self._offsets = offsets
        self._indices = indices
        self._num_edges = len(edge_list)
        self._adj: list[list[int]] | None = None
        self._adj_sets: list[set[int]] | None = None
        self._max_degree: int | None = None
        self._min_degree: int | None = None

    @classmethod
    def _from_csr(cls, n: int, offsets: array, indices: array, num_edges: int) -> "Graph":
        """Internal trusted constructor: adopt prebuilt CSR buffers.

        Callers guarantee simplicity (no loops/duplicates) and symmetry;
        used by :meth:`subgraph` and :class:`GraphBuilder` to skip the
        validation passes.
        """
        graph = cls.__new__(cls)
        graph.n = n
        graph._offsets = offsets
        graph._indices = indices
        graph._num_edges = num_edges
        graph._adj = None
        graph._adj_sets = None
        graph._max_degree = None
        graph._min_degree = None
        return graph

    # -- factory helpers -------------------------------------------------

    @classmethod
    def from_edges_unchecked(cls, n: int, edges: Iterable[tuple[int, int]]) -> "Graph":
        """Build from an edge list that is *known* to be simple and in range.

        Skips the validation passes of ``Graph(n, edges)`` (endpoint
        checks, self-loop and duplicate detection) — two counting passes
        and nothing else.  For generator-internal use where simplicity
        holds by construction; untrusted input must go through the normal
        constructor.
        """
        edge_list = edges if isinstance(edges, (list, tuple)) else list(edges)
        offsets = array("i", bytes(4 * (n + 1)))
        for u, v in edge_list:
            offsets[u + 1] += 1
            offsets[v + 1] += 1
        total = 0
        for i in range(1, n + 1):
            total += offsets[i]
            offsets[i] = total
        indices = array("i", bytes(4 * total))
        cursor = array("i", offsets[:n])
        for u, v in edge_list:
            indices[cursor[u]] = v
            cursor[u] += 1
            indices[cursor[v]] = u
            cursor[v] += 1
        return cls._from_csr(n, offsets, indices, len(edge_list))

    @classmethod
    def from_adjacency(cls, adj: Sequence[Sequence[int]]) -> "Graph":
        """Build a graph from an adjacency-list structure.

        The adjacency lists must be symmetric (``v in adj[u]`` iff
        ``u in adj[v]``); this is validated in a single counting pass
        (historically this was an O(deg²) per-node ``sorted`` comparison).
        """
        n = len(adj)
        edges = []
        for u in range(n):
            for v in adj[u]:
                if u < v:
                    edges.append((u, v))
        graph = cls(n, edges)
        # The constructor consumed only the u < v half; symmetry holds iff
        # each input row is (as a multiset) exactly the reconstructed row.
        for u in range(n):
            if len(adj[u]) != graph.degree(u) or Counter(adj[u]) != Counter(
                graph.neighbors(u)
            ):
                raise GraphError(f"adjacency list of node {u} is not symmetric")
        return graph

    # -- basic queries ----------------------------------------------------

    @property
    def adj(self) -> list[list[int]]:
        """Adjacency lists, materialised lazily from CSR and cached."""
        cached = self._adj
        if cached is None:
            offsets = self._offsets
            flat = self._indices.tolist()
            cached = [flat[offsets[v] : offsets[v + 1]] for v in range(self.n)]
            self._adj = cached
        return cached

    @property
    def num_edges(self) -> int:
        """Number of undirected edges."""
        return self._num_edges

    def degree(self, v: int) -> int:
        """Degree of node ``v`` (O(1) from the CSR offsets)."""
        return self._offsets[v + 1] - self._offsets[v]

    def degrees(self) -> list[int]:
        """List of all node degrees, indexed by node."""
        offsets = self._offsets
        return [offsets[v + 1] - offsets[v] for v in range(self.n)]

    def max_degree(self) -> int:
        """Maximum degree Δ of the graph (0 for the empty graph); cached.

        The first call on a large graph runs vectorized (max over the
        CSR offset differences) when numpy is available — this sits on
        the incremental hot path, where every update consults Δ on a
        fresh graph whose cache is cold.
        """
        if self._max_degree is None:
            if self.n >= 1024:
                try:
                    import numpy as np
                except Exception:  # pragma: no cover - numpy-free environments
                    np = None
                if np is not None:
                    offs = np.frombuffer(self._offsets, dtype=np.int32)
                    self._max_degree = int(np.max(np.diff(offs)))
                    return self._max_degree
            self._max_degree = max(self.degrees(), default=0)
        return self._max_degree

    def min_degree(self) -> int:
        """Minimum degree of the graph (0 for the empty graph); cached."""
        if self._min_degree is None:
            self._min_degree = min(self.degrees(), default=0)
        return self._min_degree

    def neighbors(self, v: int) -> list[int]:
        """The adjacency list of ``v`` (do not mutate)."""
        return self.adj[v]

    def neighbors_csr(self, v: int) -> memoryview:
        """Zero-copy view of ``v``'s neighbour row in the CSR buffer.

        Iterating the memoryview yields plain ints; use this in code that
        touches a few rows of a large graph without wanting the full
        ``adj`` materialisation.
        """
        return memoryview(self._indices)[self._offsets[v] : self._offsets[v + 1]]

    def csr(self) -> tuple[array, array]:
        """The raw ``(offsets, indices)`` CSR buffers (read-only by contract)."""
        return self._offsets, self._indices

    def adjacency_sets(self) -> list[set[int]]:
        """Set-of-neighbors view, built lazily and cached."""
        if self._adj_sets is None:
            self._adj_sets = [set(nbrs) for nbrs in self.adj]
        return self._adj_sets

    def has_edge(self, u: int, v: int) -> bool:
        """True iff ``{u, v}`` is an edge."""
        return v in self.adjacency_sets()[u]

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate undirected edges as ``(u, v)`` with ``u < v``."""
        for u in range(self.n):
            for v in self.adj[u]:
                if u < v:
                    yield (u, v)

    def nodes(self) -> range:
        """Range over all node indices."""
        return range(self.n)

    # -- connectivity -----------------------------------------------------

    def connected_components(self) -> list[list[int]]:
        """Connected components as lists of nodes (each sorted ascending)."""
        adj = self.adj
        seen = bytearray(self.n)
        components: list[list[int]] = []
        for start in range(self.n):
            if seen[start]:
                continue
            seen[start] = 1
            stack = [start]
            component = [start]
            while stack:
                u = stack.pop()
                for v in adj[u]:
                    if not seen[v]:
                        seen[v] = 1
                        stack.append(v)
                        component.append(v)
            component.sort()
            components.append(component)
        return components

    def is_connected(self) -> bool:
        """True iff the graph is connected (the empty graph counts as
        connected, single-node graphs too)."""
        if self.n <= 1:
            return True
        return len(self.connected_components()) == 1

    def is_connected_without(self, removed: set[int]) -> bool:
        """True iff ``G - removed`` is connected (and non-empty or trivial).

        Used by the Erdős–Rubin–Taylor gadget search, which needs
        ``G - {a, b}`` connected.
        """
        remaining = [v for v in range(self.n) if v not in removed]
        if len(remaining) <= 1:
            return True
        adj = self.adj
        seen = set(removed)
        start = remaining[0]
        seen.add(start)
        stack = [start]
        reached = 1
        while stack:
            u = stack.pop()
            for v in adj[u]:
                if v not in seen:
                    seen.add(v)
                    stack.append(v)
                    reached += 1
        return reached == len(remaining)

    # -- derived graphs ---------------------------------------------------

    def subgraph(self, nodes: Iterable[int]) -> tuple["Graph", list[int]]:
        """Node-induced subgraph.

        Returns ``(H, originals)`` where ``H`` is the induced subgraph with
        nodes relabeled ``0..k-1`` and ``originals[i]`` is the original index
        of ``H``'s node ``i``.  Built through the unchecked CSR fast path:
        the induced rows of a simple graph are simple, so no validation
        passes run.
        """
        originals = sorted(set(nodes))
        k = len(originals)
        index = {v: i for i, v in enumerate(originals)}
        adj = self.adj
        rows: list[list[int]] = []
        total = 0
        for v in originals:
            row = [index[w] for w in adj[v] if w in index]
            total += len(row)
            rows.append(row)
        offsets = array("i", bytes(4 * (k + 1)))
        indices = array("i", bytes(4 * total))
        pos = 0
        for i, row in enumerate(rows):
            for w in row:
                indices[pos] = w
                pos += 1
            offsets[i + 1] = pos
        return Graph._from_csr(k, offsets, indices, total // 2), originals

    def subgraph_view(self, allowed: Iterable[int] | bytearray) -> "SubgraphView":
        """Allocation-free masked view of the subgraph induced by ``allowed``.

        Accepts a node iterable or a prebuilt ``bytearray`` mask of length
        ``n``.  The view shares this graph's CSR buffers — nothing is
        copied — and exposes the filtered ``degree`` / ``neighbors`` /
        ``mask`` that the remainder-graph and per-layer call sites need.
        """
        if isinstance(allowed, bytearray):
            mask = allowed
        else:
            mask = bytearray(self.n)
            for v in allowed:
                mask[v] = 1
        return SubgraphView(self, mask)

    def apply_updates(
        self,
        added: Iterable[tuple[int, int]] = (),
        removed: Iterable[tuple[int, int]] = (),
    ) -> "Graph":
        """A new graph with ``added`` edges inserted and ``removed`` deleted.

        The delta application that backs the incremental-coloring engine
        (:mod:`repro.core.incremental`): instead of re-running the full
        constructor validation (three O(n + m) passes over an edge list
        this graph already certified), only the *touched* neighbour rows
        are checked and rewritten — untouched rows are copied between the
        CSR buffers in bulk slices.  ``self`` is not mutated (graphs stay
        immutable); the node set is fixed — updates never grow ``n``
        (grow through :meth:`GraphBuilder.from_graph` instead).

        Validation (raises :class:`GraphError`, leaving ``self`` usable):
        endpoints in range, no self-loops, every removed edge must be
        present, every added edge must be absent, no edge repeated
        within the batch — including appearing in both lists at once (a
        remove-and-re-add is a no-op; spell it as two calls if the
        intermediate version matters).

        Large deltas (more directed endpoints touched than remain
        untouched) take a whole-buffer rebuild instead of span-by-span
        copying — same result, better constants.

        Row-order determinism: both internal paths produce the *same*
        CSR buffers — every untouched row verbatim, every touched row in
        its old order minus removals with additions appended in batch
        order.  :class:`repro.graphs.dynamic.DynamicGraph` mirrors these
        semantics in place, which is what makes "updatable CSR equals
        immutable apply_updates, bit for bit" a testable contract.
        """
        added = list(added)
        removed = list(removed)
        n = self.n
        for u, v in added + removed:
            if not (0 <= u < n and 0 <= v < n):
                raise GraphError(f"edge ({u}, {v}) out of range for n={n}")
            if u == v:
                raise GraphError(f"self-loop at node {u} is not allowed")
        to_remove: dict[int, set[int]] = {}
        removed_keys: set[tuple[int, int]] = set()
        for u, v in removed:
            key = (u, v) if u < v else (v, u)
            if key in removed_keys:
                raise GraphError(f"edge ({u}, {v}) removed twice in one update")
            removed_keys.add(key)
            to_remove.setdefault(u, set()).add(v)
            to_remove.setdefault(v, set()).add(u)
        to_add: dict[int, list[int]] = {}
        added_keys: set[tuple[int, int]] = set()
        for u, v in added:
            key = (u, v) if u < v else (v, u)
            if key in added_keys:
                raise GraphError(f"duplicate edge ({u}, {v}) in update batch")
            if key in removed_keys:
                raise GraphError(
                    f"edge ({u}, {v}) both added and removed in one update"
                )
            added_keys.add(key)
            to_add.setdefault(u, []).append(v)
            to_add.setdefault(v, []).append(u)
        offsets, indices = self._offsets, self._indices
        # Presence checks scan only the touched rows (O(deg) each).
        for u, v in removed:
            if v not in indices[offsets[u] : offsets[u + 1]]:
                raise GraphError(f"cannot remove edge ({u}, {v}): not present")
        for u, v in added:
            if v in indices[offsets[u] : offsets[u + 1]]:
                raise GraphError(f"cannot add edge ({u}, {v}): already present")
        touched = set(to_remove) | set(to_add)
        touched_volume = sum(
            offsets[v + 1] - offsets[v] for v in touched
        ) + 2 * len(added)
        new_m = self._num_edges + len(added) - len(removed)
        new_offsets = self._shifted_offsets(n, offsets, touched, to_add, to_remove)
        if touched_volume > len(indices) - touched_volume:
            # Most of the volume moves anyway: rebuild every row in one
            # pass (same row semantics as the span-copy path below, so
            # the two branches stay bit-identical).
            new_indices = array("i", bytes(4 * (2 * new_m)))
            pos = 0
            for v in range(n):
                row_start, row_end = offsets[v], offsets[v + 1]
                drop = to_remove.get(v)
                if drop:
                    row = [w for w in indices[row_start:row_end] if w not in drop]
                else:
                    row = indices[row_start:row_end].tolist()
                row.extend(to_add.get(v, ()))
                new_indices[pos : pos + len(row)] = array("i", row)
                pos += len(row)
            return Graph._from_csr(n, new_offsets, new_indices, new_m)
        new_indices = array("i", bytes(4 * (2 * new_m)))
        ordered = sorted(touched)
        copy_from = 0  # source cursor (old buffer)
        copy_to = 0  # destination cursor (new buffer)
        for v in ordered:
            row_start, row_end = offsets[v], offsets[v + 1]
            if row_start > copy_from:  # bulk-copy the untouched span before v
                span = row_start - copy_from
                new_indices[copy_to : copy_to + span] = indices[copy_from:row_start]
                copy_to += span
            drop = to_remove.get(v)
            if drop:
                row = [w for w in indices[row_start:row_end] if w not in drop]
            else:
                row = indices[row_start:row_end].tolist()
            row.extend(to_add.get(v, ()))
            new_indices[copy_to : copy_to + len(row)] = array("i", row)
            copy_to += len(row)
            copy_from = row_end
        if copy_from < len(indices):
            new_indices[copy_to:] = indices[copy_from:]
        return Graph._from_csr(n, new_offsets, new_indices, new_m)

    @staticmethod
    def _shifted_offsets(
        n: int,
        offsets: array,
        touched: set[int],
        to_add: dict[int, list[int]],
        to_remove: dict[int, "set[int]"],
    ) -> array:
        """Offsets of the updated CSR: old offsets plus the running degree
        shift of the touched rows.

        Small deltas touch a handful of rows but the shift still has to be
        propagated across all ``n + 1`` offsets; that prefix sum runs on
        numpy when available (the update path's last O(n) Python loop),
        with a bit-identical plain loop otherwise.
        """
        try:
            import numpy as np
        except Exception:  # pragma: no cover - numpy-free environments
            np = None
        if np is not None and n >= 1024:
            deltas = np.zeros(n + 1, dtype=np.int64)
            for v in touched:
                deltas[v + 1] = len(to_add.get(v, ())) - len(to_remove.get(v, ()))
            shifted = np.frombuffer(offsets, dtype=np.int32) + np.cumsum(deltas)
            return array("i", shifted.astype(np.int32).tobytes())
        new_offsets = array("i", bytes(4 * (n + 1)))
        shift = 0
        for v in range(n):
            if v in touched:
                shift += len(to_add.get(v, ())) - len(to_remove.get(v, ()))
            new_offsets[v + 1] = offsets[v + 1] + shift
        return new_offsets

    def validate_coloring_region(
        self,
        colors: Sequence[int],
        nodes: Iterable[int],
        max_colors: int | None = None,
        allow_partial: bool = False,
    ) -> None:
        """Validate ``colors`` on the edges incident to ``nodes`` only.

        Convenience front door to :func:`repro.graphs.validation.
        validate_coloring_region` — the O(vol(region)) dirty-region check
        the incremental engine uses instead of a full O(n + m) pass.  See
        that function for the soundness contract (every changed node must
        be inside ``nodes``).
        """
        from repro.graphs.validation import validate_coloring_region

        validate_coloring_region(
            self, colors, nodes, max_colors=max_colors, allow_partial=allow_partial
        )

    def complement_within(self, nodes: Sequence[int]) -> list[tuple[int, int]]:
        """Non-edges among ``nodes`` (pairs in original labels).

        Helper for picking two non-adjacent neighbours in the marking
        process and in the Brooks gadget; quadratic in ``len(nodes)`` which
        is at most Δ in all call sites.
        """
        adj_sets = self.adjacency_sets()
        out = []
        node_list = list(nodes)
        for i, u in enumerate(node_list):
            for v in node_list[i + 1:]:
                if v not in adj_sets[u]:
                    out.append((u, v))
        return out

    # -- dunder -----------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Graph(n={self.n}, m={self.num_edges}, Δ={self.max_degree()})"


class SubgraphView:
    """Read-only masked view of a :class:`Graph` (no copying).

    ``view.mask`` is a ``bytearray`` usable directly as the ``allowed``
    argument of the BFS helpers; ``degree``/``neighbors`` filter through it
    on the fly.  Use :meth:`materialize` when a relabeled concrete
    :class:`Graph` is genuinely needed.
    """

    __slots__ = ("graph", "mask")

    def __init__(self, graph: Graph, mask: bytearray):
        if len(mask) != graph.n:
            raise GraphError(
                f"mask length {len(mask)} does not match graph on {graph.n} nodes"
            )
        self.graph = graph
        self.mask = mask

    @property
    def n(self) -> int:
        return self.graph.n

    def __contains__(self, v: int) -> bool:
        return bool(self.mask[v])

    def nodes(self) -> Iterator[int]:
        """Member nodes in ascending order."""
        mask = self.mask
        return (v for v in range(self.graph.n) if mask[v])

    def num_nodes(self) -> int:
        return sum(self.mask)

    def degree(self, v: int) -> int:
        """Degree of ``v`` inside the view."""
        mask = self.mask
        return sum(1 for w in self.graph.adj[v] if mask[w])

    def neighbors(self, v: int) -> list[int]:
        """Neighbours of ``v`` inside the view (fresh list)."""
        mask = self.mask
        return [w for w in self.graph.adj[v] if mask[w]]

    def num_edges(self) -> int:
        """Edge count of the induced subgraph (O(vol of the member set))."""
        mask = self.mask
        adj = self.graph.adj
        twice = 0
        for v in range(self.graph.n):
            if mask[v]:
                for w in adj[v]:
                    if mask[w]:
                        twice += 1
        return twice // 2

    def materialize(self) -> tuple[Graph, list[int]]:
        """Concrete relabeled induced subgraph (see :meth:`Graph.subgraph`)."""
        mask = self.mask
        return self.graph.subgraph([v for v in range(self.graph.n) if mask[v]])


class GraphBuilder:
    """Incremental graph construction for generators.

    Collects edges (optionally deduplicating on the fly) and emits a
    :class:`Graph` through the unchecked CSR fast path, skipping the
    validation passes that :class:`Graph` runs on untrusted input.

    Usage::

        builder = GraphBuilder(n)
        for u, v in stream:
            builder.add_edge(u, v)        # raises on loops/range errors
        graph = builder.build()
    """

    __slots__ = ("n", "_us", "_vs", "_seen", "_dedup")

    def __init__(self, n: int = 0, dedup: bool = False):
        if n < 0:
            raise GraphError(f"node count must be non-negative, got {n}")
        self.n = n
        self._us = array("i")
        self._vs = array("i")
        self._dedup = dedup
        self._seen: set[int] | None = set() if dedup else None

    @classmethod
    def from_graph(
        cls,
        graph: Graph,
        *,
        dedup: bool = False,
        skip_keys: "set[tuple[int, int]] | None" = None,
    ) -> "GraphBuilder":
        """A builder pre-loaded with ``graph``'s edges (insertion order).

        The bulk half of :meth:`Graph.apply_updates` and the escape hatch
        for updates that must grow the node set.  ``skip_keys`` drops the
        given ``(min, max)`` edge keys while copying — the caller promises
        they exist (the update path validates presence first).
        """
        builder = cls(graph.n, dedup=dedup)
        us, vs, seen = builder._us, builder._vs, builder._seen
        for u, v in graph.edges():
            if skip_keys is not None and (u, v) in skip_keys:
                continue
            us.append(u)
            vs.append(v)
            if seen is not None:
                seen.add((u << 32) | v)
        return builder

    def add_node(self) -> int:
        """Append a fresh isolated node, returning its index."""
        v = self.n
        self.n += 1
        return v

    def ensure_node(self, v: int) -> None:
        """Grow the node range to include ``v``."""
        if v >= self.n:
            self.n = v + 1

    def add_edge(self, u: int, v: int) -> bool:
        """Record the edge ``{u, v}``.

        Returns False (instead of raising) for a duplicate when the builder
        was created with ``dedup=True``.  Raises :class:`GraphError` for
        self-loops and, without dedup, leaves duplicate detection to the
        caller's discipline (generators emit each edge once by
        construction).
        """
        if u == v:
            raise GraphError(f"self-loop at node {u} is not allowed")
        if u < 0 or v < 0:
            raise GraphError(f"edge ({u}, {v}) has a negative endpoint")
        if v >= self.n or u >= self.n:
            self.ensure_node(max(u, v))
        if self._seen is not None:
            key = (u << 32) | v if u < v else (v << 32) | u
            if key in self._seen:
                return False
            self._seen.add(key)
        self._us.append(u)
        self._vs.append(v)
        return True

    def has_edge(self, u: int, v: int) -> bool:
        """Membership probe; only available on deduplicating builders."""
        if self._seen is None:
            raise GraphError("has_edge requires GraphBuilder(dedup=True)")
        key = (u << 32) | v if u < v else (v << 32) | u
        return key in self._seen

    @property
    def num_edges(self) -> int:
        return len(self._us)

    def build(self) -> Graph:
        """Emit the accumulated graph via the unchecked CSR path."""
        n = self.n
        us, vs = self._us, self._vs
        m = len(us)
        offsets = array("i", bytes(4 * (n + 1)))
        for i in range(m):
            offsets[us[i] + 1] += 1
            offsets[vs[i] + 1] += 1
        total = 0
        for i in range(1, n + 1):
            total += offsets[i]
            offsets[i] = total
        indices = array("i", bytes(4 * total))
        cursor = array("i", offsets[:n])
        for i in range(m):
            u, v = us[i], vs[i]
            indices[cursor[u]] = v
            cursor[u] += 1
            indices[cursor[v]] = u
            cursor[v] += 1
        return Graph._from_csr(n, offsets, indices, m)
