"""Core graph data structure for the LOCAL-model simulator.

The paper works with simple undirected graphs ``G = (V, E)`` where ``V`` is
identified with ``{0, .., n-1}``; the node index doubles as the unique
identifier that LOCAL-model algorithms may use for symmetry breaking.

The representation is a plain adjacency list (``list[list[int]]``) with an
optional lazily-built set view for O(1) edge queries.  This is deliberately
minimal and fast: the whole reproduction simulates synchronous rounds over
graphs with up to a few hundred thousand edges in pure Python, so every
hot-path operation here avoids object overhead.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence

from repro.errors import GraphError

__all__ = ["Graph"]


class Graph:
    """A simple undirected graph on nodes ``0..n-1``.

    Parameters
    ----------
    n:
        Number of nodes.
    edges:
        Iterable of ``(u, v)`` pairs with ``0 <= u, v < n`` and ``u != v``.
        Duplicate edges are rejected.

    Notes
    -----
    Instances are treated as immutable after construction; all algorithms
    derive new graphs via :meth:`subgraph` instead of mutating.
    """

    __slots__ = ("n", "adj", "_adj_sets", "_num_edges")

    def __init__(self, n: int, edges: Iterable[tuple[int, int]] = ()):
        if n < 0:
            raise GraphError(f"node count must be non-negative, got {n}")
        self.n = n
        self.adj: list[list[int]] = [[] for _ in range(n)]
        self._adj_sets: list[set[int]] | None = None
        seen: set[tuple[int, int]] = set()
        count = 0
        for u, v in edges:
            if not (0 <= u < n and 0 <= v < n):
                raise GraphError(f"edge ({u}, {v}) out of range for n={n}")
            if u == v:
                raise GraphError(f"self-loop at node {u} is not allowed")
            key = (u, v) if u < v else (v, u)
            if key in seen:
                raise GraphError(f"duplicate edge ({u}, {v})")
            seen.add(key)
            self.adj[u].append(v)
            self.adj[v].append(u)
            count += 1
        self._num_edges = count

    # -- factory helpers -------------------------------------------------

    @classmethod
    def from_adjacency(cls, adj: Sequence[Sequence[int]]) -> "Graph":
        """Build a graph from an adjacency-list structure.

        The adjacency lists must be symmetric (``v in adj[u]`` iff
        ``u in adj[v]``); this is validated.
        """
        n = len(adj)
        edges = []
        for u in range(n):
            for v in adj[u]:
                if u < v:
                    edges.append((u, v))
        graph = cls(n, edges)
        for u in range(n):
            if sorted(graph.adj[u]) != sorted(adj[u]):
                raise GraphError(f"adjacency list of node {u} is not symmetric")
        return graph

    # -- basic queries ----------------------------------------------------

    @property
    def num_edges(self) -> int:
        """Number of undirected edges."""
        return self._num_edges

    def degree(self, v: int) -> int:
        """Degree of node ``v``."""
        return len(self.adj[v])

    def degrees(self) -> list[int]:
        """List of all node degrees, indexed by node."""
        return [len(nbrs) for nbrs in self.adj]

    def max_degree(self) -> int:
        """Maximum degree Δ of the graph (0 for the empty graph)."""
        if self.n == 0:
            return 0
        return max(len(nbrs) for nbrs in self.adj)

    def min_degree(self) -> int:
        """Minimum degree of the graph (0 for the empty graph)."""
        if self.n == 0:
            return 0
        return min(len(nbrs) for nbrs in self.adj)

    def neighbors(self, v: int) -> list[int]:
        """The adjacency list of ``v`` (do not mutate)."""
        return self.adj[v]

    def adjacency_sets(self) -> list[set[int]]:
        """Set-of-neighbors view, built lazily and cached."""
        if self._adj_sets is None:
            self._adj_sets = [set(nbrs) for nbrs in self.adj]
        return self._adj_sets

    def has_edge(self, u: int, v: int) -> bool:
        """True iff ``{u, v}`` is an edge."""
        return v in self.adjacency_sets()[u]

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate undirected edges as ``(u, v)`` with ``u < v``."""
        for u in range(self.n):
            for v in self.adj[u]:
                if u < v:
                    yield (u, v)

    def nodes(self) -> range:
        """Range over all node indices."""
        return range(self.n)

    # -- connectivity -----------------------------------------------------

    def connected_components(self) -> list[list[int]]:
        """Connected components as lists of nodes (each sorted ascending)."""
        seen = [False] * self.n
        components: list[list[int]] = []
        for start in range(self.n):
            if seen[start]:
                continue
            seen[start] = True
            stack = [start]
            component = [start]
            while stack:
                u = stack.pop()
                for v in self.adj[u]:
                    if not seen[v]:
                        seen[v] = True
                        stack.append(v)
                        component.append(v)
            component.sort()
            components.append(component)
        return components

    def is_connected(self) -> bool:
        """True iff the graph is connected (the empty graph counts as
        connected, single-node graphs too)."""
        if self.n <= 1:
            return True
        return len(self.connected_components()) == 1

    def is_connected_without(self, removed: set[int]) -> bool:
        """True iff ``G - removed`` is connected (and non-empty or trivial).

        Used by the Erdős–Rubin–Taylor gadget search, which needs
        ``G - {a, b}`` connected.
        """
        remaining = [v for v in range(self.n) if v not in removed]
        if len(remaining) <= 1:
            return True
        seen = set(removed)
        start = remaining[0]
        seen.add(start)
        stack = [start]
        reached = 1
        while stack:
            u = stack.pop()
            for v in self.adj[u]:
                if v not in seen:
                    seen.add(v)
                    stack.append(v)
                    reached += 1
        return reached == len(remaining)

    # -- derived graphs ---------------------------------------------------

    def subgraph(self, nodes: Iterable[int]) -> tuple["Graph", list[int]]:
        """Node-induced subgraph.

        Returns ``(H, originals)`` where ``H`` is the induced subgraph with
        nodes relabeled ``0..k-1`` and ``originals[i]`` is the original index
        of ``H``'s node ``i``.
        """
        originals = sorted(set(nodes))
        index = {v: i for i, v in enumerate(originals)}
        edges = []
        for i, v in enumerate(originals):
            for w in self.adj[v]:
                j = index.get(w)
                if j is not None and i < j:
                    edges.append((i, j))
        return Graph(len(originals), edges), originals

    def complement_within(self, nodes: Sequence[int]) -> list[tuple[int, int]]:
        """Non-edges among ``nodes`` (pairs in original labels).

        Helper for picking two non-adjacent neighbours in the marking
        process and in the Brooks gadget; quadratic in ``len(nodes)`` which
        is at most Δ in all call sites.
        """
        adj_sets = self.adjacency_sets()
        out = []
        node_list = list(nodes)
        for i, u in enumerate(node_list):
            for v in node_list[i + 1:]:
                if v not in adj_sets[u]:
                    out.append((u, v))
        return out

    # -- dunder -----------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Graph(n={self.n}, m={self.num_edges}, Δ={self.max_degree()})"
