"""Named graphs: classic instances with known coloring structure.

These are the standard sanity vectors for coloring algorithms:

* **Petersen graph** — 3-regular, girth 5, χ = 3 = Δ: a nice graph with
  no 4-cycles (so no DCC of radius 1) but plenty of 5-cycles and
  6-cycles; a compact stress case for DCC detection radii.
* **Complete bipartite K_{a,b}** — χ = 2 but Δ = max(a, b); nice for
  a, b >= 2 (except K_{2,2} = C_4... which is still handled), every
  4-cycle a DCC: the opposite extreme from high-girth instances.
* **Kneser graph K(5,2)** is the Petersen graph; larger Kneser graphs
  are provided for Δ-coloring beyond toy degrees with rich symmetry.
* **Circulant graphs** — the deterministic regular fallback family, with
  controllable degree.
"""

from __future__ import annotations

from itertools import combinations

from repro.errors import GraphError
from repro.graphs.graph import Graph

__all__ = ["petersen_graph", "complete_bipartite", "kneser_graph", "circulant_graph"]


def petersen_graph() -> Graph:
    """The Petersen graph: 10 nodes, 3-regular, girth 5, χ = 3."""
    return kneser_graph(5, 2)


def complete_bipartite(a: int, b: int) -> Graph:
    """K_{a,b}: bipartite, Δ = max(a, b), 4-cycles (DCCs) everywhere."""
    if a < 1 or b < 1:
        raise GraphError("need a, b >= 1")
    return Graph(a + b, [(i, a + j) for i in range(a) for j in range(b)])


def kneser_graph(n: int, k: int) -> Graph:
    """Kneser graph K(n, k): nodes are k-subsets of [n], edges join
    disjoint subsets.  Regular of degree C(n-k, k); K(5,2) = Petersen."""
    if not 0 < k or n < 2 * k:
        raise GraphError("need 0 < k and n >= 2k")
    subsets = [frozenset(c) for c in combinations(range(n), k)]
    index = {s: i for i, s in enumerate(subsets)}
    edges = []
    for i, s in enumerate(subsets):
        for t in subsets[i + 1:]:
            if not (s & t):
                edges.append((i, index[t]))
    return Graph(len(subsets), edges)


def circulant_graph(n: int, offsets: list[int]) -> Graph:
    """Circulant C_n(offsets): node v adjacent to v ± o for each offset."""
    if n < 3:
        raise GraphError("need n >= 3")
    edges = set()
    for v in range(n):
        for offset in offsets:
            if not 0 < offset <= n // 2:
                raise GraphError(f"offset {offset} out of range for n={n}")
            u = (v + offset) % n
            if u != v:
                edges.add((min(u, v), max(u, v)))
    return Graph(n, sorted(edges))
