"""Structural predicates from Section 2.1 of the paper.

Definitions implemented here:

* **clique / odd cycle** — the two block types allowed in a Gallai tree.
* **Gallai tree** (Definition 7): every maximal 2-connected component is a
  clique or an odd cycle.  By Theorem 8 these are exactly the graphs that
  are *not* degree-choosable.
* **degree-choosable component, DCC** (Definition 9): a node-induced
  subgraph that is 2-connected and neither a clique nor an odd cycle.
* **nice graph** (from [PS95]): a connected graph that is neither a path,
  a cycle, nor a clique.  All nice graphs are Δ-colorable; the paper's
  algorithms assume nice inputs, and :func:`assert_nice` enforces it.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import NotNiceGraphError
from repro.graphs.blocks import biconnected_components
from repro.graphs.graph import Graph

__all__ = [
    "is_clique_nodes",
    "is_odd_cycle_nodes",
    "is_complete",
    "is_cycle_graph",
    "is_path_graph",
    "is_nice",
    "assert_nice",
    "is_gallai_tree",
    "is_degree_choosable_component",
    "girth_up_to",
]


def is_clique_nodes(graph: Graph, nodes: Sequence[int]) -> bool:
    """True iff ``nodes`` induce a complete subgraph (K1 and K2 count)."""
    node_list = list(nodes)
    k = len(node_list)
    if k <= 2:
        return True
    # Degree screen first: O(1) per node via the CSR offsets, rejecting
    # almost all non-cliques before any set is built.
    if any(graph.degree(v) < k - 1 for v in node_list):
        return False
    node_set = set(node_list)
    adj_sets = graph.adjacency_sets()
    return all(len(adj_sets[v] & node_set) == k - 1 for v in node_list)


def is_odd_cycle_nodes(graph: Graph, nodes: Sequence[int]) -> bool:
    """True iff ``nodes`` induce a chordless cycle of odd length >= 3.

    A triangle is both a clique and an odd cycle; either classification
    keeps it out of the DCC set, which is all the algorithms care about.
    """
    node_list = list(nodes)
    k = len(node_list)
    if k < 3 or k % 2 == 0:
        return False
    if any(graph.degree(v) < 2 for v in node_list):
        return False
    node_set = set(node_list)
    adj_sets = graph.adjacency_sets()
    if any(len(adj_sets[v] & node_set) != 2 for v in node_list):
        return False
    # 2-regular induced subgraph: odd cycle iff connected.
    start = node_list[0]
    seen = {start}
    stack = [start]
    while stack:
        u = stack.pop()
        for v in adj_sets[u] & node_set:
            if v not in seen:
                seen.add(v)
                stack.append(v)
    return len(seen) == k


def is_complete(graph: Graph) -> bool:
    """True iff the whole graph is a clique (on >= 1 node)."""
    if graph.n < 1:
        return False
    if graph.num_edges != graph.n * (graph.n - 1) // 2:
        return False
    return is_clique_nodes(graph, range(graph.n))


def is_cycle_graph(graph: Graph) -> bool:
    """True iff the whole graph is a single cycle C_n, n >= 3."""
    if graph.n < 3 or graph.num_edges != graph.n:
        return False
    if any(graph.degree(v) != 2 for v in range(graph.n)):
        return False
    return graph.is_connected()


def is_path_graph(graph: Graph) -> bool:
    """True iff the whole graph is a simple path P_n (n >= 1)."""
    if graph.n == 0 or graph.num_edges != graph.n - 1:
        return False
    degs = graph.degrees()
    if graph.n == 1:
        return True
    if sorted(degs)[:2] != [1, 1] or max(degs) > 2:
        return False
    return graph.is_connected()


def is_nice(graph: Graph) -> bool:
    """Nice graph per [PS95]: connected and not a path, cycle, or clique."""
    return (
        graph.is_connected()
        and not is_path_graph(graph)
        and not is_cycle_graph(graph)
        and not is_complete(graph)
    )


def assert_nice(graph: Graph) -> None:
    """Raise :class:`NotNiceGraphError` unless ``graph`` is nice.

    The Δ-coloring algorithms require nice graphs: cliques and odd cycles
    are not Δ-colorable (Brooks), and paths/cycles need Ω(n) rounds or
    trivial special-casing, which the callers handle separately.
    """
    if not graph.is_connected():
        raise NotNiceGraphError(
            "graph must be connected; run algorithms per connected component"
        )
    if is_complete(graph):
        raise NotNiceGraphError("complete graphs are not Δ-colorable (Brooks)")
    if is_cycle_graph(graph):
        raise NotNiceGraphError("cycles need special handling (Δ=2 / odd cycle)")
    if is_path_graph(graph):
        raise NotNiceGraphError("paths need special handling (Δ<=2)")


def is_gallai_tree(graph: Graph) -> bool:
    """Definition 7: every block is a clique or an odd cycle.

    The empty graph and edgeless graphs are (vacuously) Gallai trees.  By
    Theorem 8, ``is_gallai_tree(G)`` is equivalent to "G is not
    degree-choosable"; the test suite cross-validates that equivalence by
    brute force on small graphs.
    """
    decomposition = biconnected_components(graph)
    for block in decomposition.blocks:
        if not (is_clique_nodes(graph, block) or is_odd_cycle_nodes(graph, block)):
            return False
    return True


def is_degree_choosable_component(graph: Graph, nodes: Sequence[int]) -> bool:
    """Definition 9: ``nodes`` induce a 2-connected non-clique non-odd-cycle.

    2-connectivity of the induced subgraph is checked via its block
    decomposition (a graph on >= 3 nodes is 2-connected iff it is connected
    and consists of a single block spanning all nodes).
    """
    node_list = sorted(set(nodes))
    if len(node_list) < 4:
        # 2-connected graphs on <=3 nodes are K3/K2/K1: cliques, never DCCs.
        return False
    sub, _ = graph.subgraph(node_list)
    if not sub.is_connected():
        return False
    decomposition = biconnected_components(sub)
    if len(decomposition.blocks) != 1 or len(decomposition.blocks[0]) != sub.n:
        return False
    return not (is_clique_nodes(sub, range(sub.n)) or is_odd_cycle_nodes(sub, range(sub.n)))


def girth_up_to(graph: Graph, cap: int) -> int | None:
    """Length of the shortest cycle, or ``None`` if girth > ``cap``.

    BFS from every node, stopping at depth ``cap``//2 + 1; used by tests and
    the expansion benchmarks to select locally tree-like (DCC-free) regions.
    """
    best: int | None = None
    limit = cap
    for root in range(graph.n):
        dist = {root: 0}
        parent = {root: -1}
        queue = [root]
        head = 0
        while head < len(queue):
            u = queue[head]
            head += 1
            if dist[u] * 2 >= (best if best is not None else limit + 1):
                continue
            for v in graph.adj[u]:
                if v == parent[u]:
                    continue
                if v in dist:
                    cycle_len = dist[u] + dist[v] + 1
                    if cycle_len <= limit and (best is None or cycle_len < best):
                        best = cycle_len
                else:
                    dist[v] = dist[u] + 1
                    parent[v] = u
                    queue.append(v)
        if best == 3:
            return 3
    return best
