"""Coloring validation: the single source of truth for output correctness.

Every end-to-end algorithm in this package funnels its output through
:func:`validate_coloring`; the test suite additionally calls it on every
intermediate partial coloring contract it checks.

Color conventions used throughout the package:

* Colors are integers ``1..k`` (the paper speaks of "color one" for marked
  nodes, so colors are 1-based).
* ``UNCOLORED`` (0) marks a node without a color; partial colorings are
  first-class citizens because the whole Δ-coloring machinery revolves
  around carefully staged partial colorings.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.errors import ColoringError
from repro.graphs.graph import Graph

__all__ = [
    "UNCOLORED",
    "validate_coloring",
    "validate_coloring_region",
    "count_colors",
    "uncolored_nodes",
]

UNCOLORED = 0


def validate_coloring(
    graph: Graph,
    colors: Sequence[int],
    max_colors: int | None = None,
    allow_partial: bool = False,
    max_violations: int = 20,
) -> None:
    """Validate a (partial) coloring, raising :class:`ColoringError` on failure.

    Parameters
    ----------
    graph:
        The graph being colored.
    colors:
        ``colors[v]`` is the color of node ``v`` (1-based) or ``UNCOLORED``.
    max_colors:
        If given, every assigned color must lie in ``1..max_colors``
        (pass ``graph.max_degree()`` to check a Δ-coloring).
    allow_partial:
        If False, every node must be colored.
    max_violations:
        Cap on collected violation messages (errors can otherwise be huge).
    """
    if len(colors) != graph.n:
        raise ColoringError(
            f"coloring has {len(colors)} entries for a graph on {graph.n} nodes"
        )
    violations: list[str] = []
    for v in range(graph.n):
        c = colors[v]
        if c == UNCOLORED:
            if not allow_partial:
                violations.append(f"node {v} is uncolored")
        elif c < 1 or (max_colors is not None and c > max_colors):
            violations.append(f"node {v} has out-of-palette color {c}")
        if len(violations) >= max_violations:
            break
    if len(violations) < max_violations:
        adj = graph.adj
        for u in range(graph.n):
            cu = colors[u]
            if cu == UNCOLORED:
                continue
            for v in adj[u]:
                if u < v and colors[v] == cu:
                    violations.append(f"edge ({u}, {v}) is monochromatic (color {cu})")
                    if len(violations) >= max_violations:
                        break
            if len(violations) >= max_violations:
                break
    if violations:
        raise ColoringError(
            f"invalid coloring ({len(violations)}+ violations); first: {violations[0]}",
            violations,
        )


def validate_coloring_region(
    graph: Graph,
    colors: Sequence[int],
    nodes: Iterable[int],
    max_colors: int | None = None,
    allow_partial: bool = False,
    max_violations: int = 20,
) -> None:
    """Validate a coloring on the edges incident to ``nodes`` only.

    The dirty-region counterpart of :func:`validate_coloring`: instead of
    an O(n + m) full pass, only the given region — typically the nodes an
    incremental repair recolored plus the endpoints of inserted edges —
    and its incident edges are checked, an O(vol(region)) pass.

    **Soundness contract**: if the coloring was valid before a change and
    every node whose color changed (plus both endpoints of every added
    edge) is in ``nodes``, then this check accepts exactly when the full
    :func:`validate_coloring` accepts.  Corruption strictly *outside* the
    region is invisible here by design — callers that cannot bound where
    changes happened must use the full validator.

    Raises :class:`ColoringError` on failure, like the full validator.
    """
    if len(colors) != graph.n:
        raise ColoringError(
            f"coloring has {len(colors)} entries for a graph on {graph.n} nodes"
        )
    region_set = set(nodes)
    region = sorted(region_set)
    violations: list[str] = []
    # Read neighbour rows one node at a time (``neighbors_csr``):
    # touching ``graph.adj`` would lazily materialise all O(n + m)
    # adjacency lists on a fresh graph, and asking for the full
    # ``csr()`` pair would force a DynamicGraph to compact its padded
    # rows — both exactly the costs this validator exists to avoid on
    # the incremental path, whose graphs are fresh or streaming.
    for v in region:
        if not 0 <= v < graph.n:
            raise ColoringError(f"region node {v} out of range for n={graph.n}")
        c = colors[v]
        if c == UNCOLORED:
            if not allow_partial:
                violations.append(f"node {v} is uncolored")
        elif c < 1 or (max_colors is not None and c > max_colors):
            violations.append(f"node {v} has out-of-palette color {c}")
        else:
            for u in graph.neighbors_csr(v):
                if colors[u] == c:
                    # an edge with both endpoints in the region is
                    # visited twice; report it from the smaller one only
                    if u in region_set and u < v:
                        continue
                    a, b = (u, v) if u < v else (v, u)
                    violations.append(
                        f"edge ({a}, {b}) is monochromatic (color {c})"
                    )
                    if len(violations) >= max_violations:
                        break
        if len(violations) >= max_violations:
            break
    if violations:
        raise ColoringError(
            f"invalid coloring in region ({len(violations)}+ violations); "
            f"first: {violations[0]}",
            violations,
        )


def count_colors(colors: Sequence[int]) -> int:
    """Number of distinct colors used (ignoring uncolored nodes)."""
    return len({c for c in colors if c != UNCOLORED})


def uncolored_nodes(colors: Sequence[int]) -> list[int]:
    """Indices of all uncolored nodes."""
    return [v for v, c in enumerate(colors) if c == UNCOLORED]
