"""LOCAL model substrate: synchronous execution and round accounting."""

from repro.local.network import NodeContext, NodeProgram, SyncNetwork
from repro.local.rounds import PhaseBreakdown, RoundLedger
from repro.local.slocal import SLocalRun, SLocalSimulator

__all__ = ["NodeContext", "NodeProgram", "SyncNetwork", "RoundLedger", "PhaseBreakdown", "SLocalRun", "SLocalSimulator"]
