"""Synchronous message-passing engine for the LOCAL model.

This is the faithful execution substrate: per-node state machines exchange
one message per neighbour per round, with unbounded message size and
unbounded local computation, exactly as in [Linial 92, Peleg 00].  The
engine is used directly by the primitives whose behaviour is genuinely
round-by-round (Linial color reduction, Luby/Ghaffari MIS, randomized list
coloring trials); higher-level algorithms compose those primitives and
charge ball-collection rounds on the shared :class:`RoundLedger`.

The node program interface is deliberately tiny:

* ``start(ctx)`` — called once before round 1; may inspect ``ctx`` (own id,
  degree, ports) and set initial state.
* ``message(ctx, round_index)`` — the message broadcast to all neighbours
  this round (LOCAL algorithms in this paper never need port-specific
  messages, broadcast is standard), or ``None`` to stay silent.
* ``receive(ctx, round_index, inbox)`` — ``inbox`` maps neighbour id to the
  message it sent.  Returns True when the node has halted.

The engine stops when every node has halted or ``max_rounds`` is hit, and
charges every executed round to the ledger.

Scaling notes (CSR era): the communication topology sits in the
:class:`repro.graphs.graph.Graph` CSR buffers; the engine resolves the
*active-neighbour* lists (the paper constantly runs subroutines on a
remainder graph H or a single layer, so inactive neighbours must be
filtered out) **once in the constructor** instead of per ``run`` call.
When every node is active the engine hands out the graph's own adjacency
rows without copying; a masked filter pass builds the restricted rows
otherwise.  Repeated ``run`` invocations on one network — the dominant
pattern in the per-layer subroutines — therefore pay no per-run setup
proportional to the graph.  Node programs receive these shared lists in
``ctx.neighbors`` and must treat them as read-only (copy before mutating,
as ``LubyProgram`` does with its ``live_neighbors`` set).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Protocol

from repro.graphs.graph import Graph
from repro.local.rounds import RoundLedger

__all__ = ["NodeContext", "NodeProgram", "SyncNetwork"]


@dataclass
class NodeContext:
    """Per-node view handed to the node program.

    ``node`` is the unique identifier (LOCAL gives nodes O(log n)-bit ids;
    we use the index).  ``state`` is free-form per-node storage owned by the
    program.  ``halted`` is managed by the engine.  ``neighbors`` is the
    engine-owned active-neighbour list — read-only by contract.
    """

    node: int
    neighbors: list[int]
    state: dict[str, Any] = field(default_factory=dict)
    halted: bool = False

    @property
    def degree(self) -> int:
        return len(self.neighbors)


class NodeProgram(Protocol):
    """Protocol for synchronous node programs (see module docstring)."""

    def start(self, ctx: NodeContext) -> None:
        ...

    def message(self, ctx: NodeContext, round_index: int) -> Any:
        ...

    def receive(self, ctx: NodeContext, round_index: int, inbox: dict[int, Any]) -> bool:
        ...


class SyncNetwork:
    """Synchronous executor of a :class:`NodeProgram` over a graph.

    Parameters
    ----------
    graph:
        Communication topology.
    ledger:
        Shared round ledger; every executed round charges 1.
    active:
        Optional subset of nodes participating (the paper constantly runs
        subroutines on a remainder graph H or a single layer); inactive
        nodes neither send nor receive, and messages to them are dropped —
        equivalent to running on the induced subgraph.

    The active-neighbour lists are precomputed once here (not per
    :meth:`run`): the full-graph case shares the CSR-backed adjacency rows
    outright, the restricted case filters through a byte mask.
    """

    def __init__(
        self,
        graph: Graph,
        ledger: RoundLedger | None = None,
        active: set[int] | None = None,
    ):
        self.graph = graph
        self.ledger = ledger if ledger is not None else RoundLedger()
        adj = graph.adj
        if active is None:
            self.active = set(range(graph.n))
            self._active_nodes = list(range(graph.n))
            self._neighbors: list[list[int]] = adj
        else:
            self.active = set(active)
            self._active_nodes = sorted(self.active)
            mask = bytearray(graph.n)
            for v in self._active_nodes:
                mask[v] = 1
            self._neighbors = [
                [u for u in adj[v] if mask[u]] if mask[v] else []
                for v in range(graph.n)
            ]
        self.contexts: dict[int, NodeContext] = {}

    def run(self, program: NodeProgram, max_rounds: int = 10_000) -> dict[int, NodeContext]:
        """Execute ``program`` until all active nodes halt.

        Returns the per-node contexts (whose ``state`` holds the outputs).
        Raises ``RuntimeError`` if ``max_rounds`` is exceeded — node
        programs in this package always halt, so hitting the cap indicates
        a bug rather than an unlucky run.
        """
        neighbors = self._neighbors
        self.contexts = {
            v: NodeContext(node=v, neighbors=neighbors[v]) for v in self._active_nodes
        }
        contexts = self.contexts
        for ctx in contexts.values():
            program.start(ctx)

        round_index = 0
        live = {v for v, ctx in contexts.items() if not ctx.halted}
        message = program.message
        receive = program.receive
        while live:
            round_index += 1
            if round_index > max_rounds:
                raise RuntimeError(
                    f"node program {type(program).__name__} exceeded {max_rounds} rounds"
                )
            outbox: dict[int, Any] = {}
            for v in live:
                msg = message(contexts[v], round_index)
                if msg is not None:
                    outbox[v] = msg
            newly_halted = []
            for v in live:
                ctx = contexts[v]
                inbox = {u: outbox[u] for u in ctx.neighbors if u in outbox}
                if receive(ctx, round_index, inbox):
                    ctx.halted = True
                    newly_halted.append(v)
            for v in newly_halted:
                live.discard(v)
            self.ledger.charge(1)
        return self.contexts

    def states(self, key: str) -> dict[int, Any]:
        """Extract ``state[key]`` from every context after a run."""
        return {v: ctx.state.get(key) for v, ctx in self.contexts.items()}
