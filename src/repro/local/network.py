"""Synchronous message-passing engine for the LOCAL model.

This is the faithful execution substrate: per-node state machines exchange
one message per neighbour per round, with unbounded message size and
unbounded local computation, exactly as in [Linial 92, Peleg 00].  The
engine is used directly by the primitives whose behaviour is genuinely
round-by-round (Linial color reduction, Luby/Ghaffari MIS, randomized list
coloring trials); higher-level algorithms compose those primitives and
charge ball-collection rounds on the shared :class:`RoundLedger`.

The node program interface is deliberately tiny:

* ``start(ctx)`` — called once before round 1; may inspect ``ctx`` (own id,
  degree, ports) and set initial state.
* ``message(ctx, round_index)`` — the message broadcast to all neighbours
  this round (LOCAL algorithms in this paper never need port-specific
  messages, broadcast is standard), or ``None`` to stay silent.
* ``receive(ctx, round_index, inbox)`` — ``inbox`` maps neighbour id to the
  message it sent.  Returns True when the node has halted.

The engine stops when every node has halted or ``max_rounds`` is hit, and
charges every executed round to the ledger.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Protocol

from repro.graphs.graph import Graph
from repro.local.rounds import RoundLedger

__all__ = ["NodeContext", "NodeProgram", "SyncNetwork"]


@dataclass
class NodeContext:
    """Per-node view handed to the node program.

    ``node`` is the unique identifier (LOCAL gives nodes O(log n)-bit ids;
    we use the index).  ``state`` is free-form per-node storage owned by the
    program.  ``halted`` is managed by the engine.
    """

    node: int
    neighbors: list[int]
    state: dict[str, Any] = field(default_factory=dict)
    halted: bool = False

    @property
    def degree(self) -> int:
        return len(self.neighbors)


class NodeProgram(Protocol):
    """Protocol for synchronous node programs (see module docstring)."""

    def start(self, ctx: NodeContext) -> None:
        ...

    def message(self, ctx: NodeContext, round_index: int) -> Any:
        ...

    def receive(self, ctx: NodeContext, round_index: int, inbox: dict[int, Any]) -> bool:
        ...


class SyncNetwork:
    """Synchronous executor of a :class:`NodeProgram` over a graph.

    Parameters
    ----------
    graph:
        Communication topology.
    ledger:
        Shared round ledger; every executed round charges 1.
    active:
        Optional subset of nodes participating (the paper constantly runs
        subroutines on a remainder graph H or a single layer); inactive
        nodes neither send nor receive, and messages to them are dropped —
        equivalent to running on the induced subgraph.
    """

    def __init__(
        self,
        graph: Graph,
        ledger: RoundLedger | None = None,
        active: set[int] | None = None,
    ):
        self.graph = graph
        self.ledger = ledger if ledger is not None else RoundLedger()
        if active is None:
            self.active = set(range(graph.n))
        else:
            self.active = set(active)
        self.contexts: dict[int, NodeContext] = {}

    def run(self, program: NodeProgram, max_rounds: int = 10_000) -> dict[int, NodeContext]:
        """Execute ``program`` until all active nodes halt.

        Returns the per-node contexts (whose ``state`` holds the outputs).
        Raises ``RuntimeError`` if ``max_rounds`` is exceeded — node
        programs in this package always halt, so hitting the cap indicates
        a bug rather than an unlucky run.
        """
        active = self.active
        self.contexts = {
            v: NodeContext(node=v, neighbors=[u for u in self.graph.adj[v] if u in active])
            for v in active
        }
        for ctx in self.contexts.values():
            program.start(ctx)

        round_index = 0
        live = {v for v, ctx in self.contexts.items() if not ctx.halted}
        while live:
            round_index += 1
            if round_index > max_rounds:
                raise RuntimeError(
                    f"node program {type(program).__name__} exceeded {max_rounds} rounds"
                )
            outbox: dict[int, Any] = {}
            for v in live:
                msg = program.message(self.contexts[v], round_index)
                if msg is not None:
                    outbox[v] = msg
            newly_halted = []
            for v in live:
                ctx = self.contexts[v]
                inbox = {u: outbox[u] for u in ctx.neighbors if u in outbox}
                if program.receive(ctx, round_index, inbox):
                    ctx.halted = True
                    newly_halted.append(v)
            for v in newly_halted:
                live.discard(v)
            self.ledger.charge(1)
        return self.contexts

    def states(self, key: str) -> dict[int, Any]:
        """Extract ``state[key]`` from every context after a run."""
        return {v: ctx.state.get(key) for v, ctx in self.contexts.items()}
