"""Round accounting for the LOCAL model.

The complexity measure of everything in the paper is the number of
synchronous communication rounds.  Every algorithm in this package charges
its rounds to a :class:`RoundLedger`, which supports *phases* mirroring the
paper's own cost decomposition (phases (1)-(9) of the randomized algorithm,
the steps of the deterministic one, ...), so that benchmark tables can
report exactly the terms the theorems bound.

Two charging styles coexist, both exact LOCAL semantics:

* per-round loops (``charge(1)`` per iteration of Luby/Ghaffari/Linial), and
* ball collection (``charge(r)`` for "gather the radius-r neighbourhood and
  decide locally" — messages are unbounded in LOCAL, so collecting a ball
  of radius r costs exactly r rounds).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = ["RoundLedger", "PhaseBreakdown"]


@dataclass
class PhaseBreakdown:
    """Per-phase round totals, in first-charged order."""

    phases: dict[str, int] = field(default_factory=dict)

    def add(self, phase: str, rounds: int) -> None:
        self.phases[phase] = self.phases.get(phase, 0) + rounds

    def total(self) -> int:
        return sum(self.phases.values())

    def as_table(self) -> str:
        """Human-readable phase table used by examples and benchmarks."""
        if not self.phases:
            return "(no rounds charged)"
        width = max(len(name) for name in self.phases)
        lines = [f"{name:<{width}}  {rounds:>8}" for name, rounds in self.phases.items()]
        lines.append(f"{'TOTAL':<{width}}  {self.total():>8}")
        return "\n".join(lines)


class RoundLedger:
    """Accumulates LOCAL rounds, attributed to nested phases.

    Usage::

        ledger = RoundLedger()
        with ledger.phase("1:dcc-detection"):
            ledger.charge(2 * r)          # collect radius-2r balls
        with ledger.phase("4:marking"):
            ledger.charge(1)              # one exchange
        ledger.total_rounds               # -> 2*r + 1

    Phases nest; rounds are attributed to the innermost phase name joined
    with ``/``.  Parallel composition (phases that the paper runs on
    disjoint node sets simultaneously) can be expressed with
    :meth:`charge_max`, which records the maximum of several candidate
    costs — LOCAL rounds are global, so independent regional procedures run
    concurrently and cost their maximum, not their sum.
    """

    def __init__(self, clock=time.perf_counter) -> None:
        self.total_rounds = 0
        self.breakdown = PhaseBreakdown()
        self._stack: list[str] = []
        self._clock = clock
        self._wall: dict[str, float] = {}

    # -- phase management --------------------------------------------------

    @contextmanager
    def phase(self, name: str):
        """Context manager attributing charges to ``name`` (nestable).

        Also accumulates the phase's wall-clock seconds, keyed by the same
        ``/``-joined name the round breakdown uses — the source of the
        reserved ``wall_s`` entries in ``ColoringResult.phase_stats``.
        """
        self._stack.append(name)
        joined = self._current_phase()
        started = self._clock()
        try:
            yield self
        finally:
            elapsed = self._clock() - started
            self._wall[joined] = self._wall.get(joined, 0.0) + elapsed
            self._stack.pop()

    def _current_phase(self) -> str:
        return "/".join(self._stack) if self._stack else "(toplevel)"

    # -- charging ----------------------------------------------------------

    def charge(self, rounds: int) -> None:
        """Charge ``rounds`` synchronous rounds to the current phase."""
        if rounds < 0:
            raise ValueError(f"cannot charge negative rounds: {rounds}")
        self.total_rounds += rounds
        self.breakdown.add(self._current_phase(), rounds)

    def charge_max(self, candidate_rounds: list[int]) -> None:
        """Charge the maximum of several concurrent regional costs.

        Used when disjoint regions run local procedures in parallel (e.g.
        phase (9) brute-forces all base-layer components independently):
        the global round cost is the slowest region.
        """
        if candidate_rounds:
            self.charge(max(candidate_rounds))

    # -- reporting ----------------------------------------------------------

    def snapshot(self) -> dict[str, int]:
        """Copy of the per-phase totals."""
        return dict(self.breakdown.phases)

    def wall_snapshot(self) -> dict[str, float]:
        """Per-phase wall-clock seconds, keyed like :meth:`snapshot`.

        A nested phase's time is counted under its own joined name only;
        the enclosing phase's entry includes it (wall time, unlike rounds,
        is measured around the ``with`` block rather than charged once).
        """
        return dict(self._wall)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"RoundLedger(total={self.total_rounds})"
