"""The SLOCAL model [Ghaffari–Kuhn–Maus, STOC'17] — Remark 17's setting.

In SLOCAL(r), nodes are processed in an *adversarial sequential order*;
when processed, a node reads its radius-r neighbourhood **including the
outputs already written by previously processed nodes**, and commits its
own output irrevocably.  The complexity measure is the locality radius r.

The paper's Remark 17: the distributed Brooks' theorem (Theorem 5)
implies an SLOCAL(O(log_Δ n)) algorithm for Δ-coloring — process nodes in
any order; each new node extends the partial coloring, repairing within
its O(log n)-ball via the token walk when stuck.  This module provides
the generic simulator; :mod:`repro.core.slocal_coloring` builds that
algorithm on top of it.

The simulator tracks, per processed node, the radius actually *read* and
the radius actually *written*; the maximum over nodes is the certified
SLOCAL locality of the run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.graphs.bfs import bfs_distances
from repro.graphs.graph import Graph

__all__ = ["SLocalRun", "SLocalSimulator"]


@dataclass
class SLocalRun:
    """Certificate of one SLOCAL execution.

    ``read_radius`` / ``write_radius`` are the maxima over processed
    nodes; ``per_node_radius`` maps each node to the radius its step
    touched (for the locality histograms in the SLOCAL tests).
    """

    order: list[int]
    read_radius: int = 0
    write_radius: int = 0
    per_node_radius: dict[int, int] = field(default_factory=dict)


class SLocalSimulator:
    """Sequential-local executor over a shared output vector.

    The step function receives ``(node, graph, outputs)`` and returns the
    set of nodes whose outputs it wrote (itself included).  The simulator
    verifies the write-set claim and records radii.  Reads are not
    sandboxed (steps are trusted library code); the *write* radius is
    measured exactly, and callers pass ``declared_read_radius`` per step
    for the read side.
    """

    def __init__(self, graph: Graph):
        self.graph = graph

    def run(
        self,
        order: list[int],
        step: Callable[[int, Graph, list[Any]], tuple[set[int], int]],
        outputs: list[Any],
    ) -> SLocalRun:
        """Process ``order`` sequentially.

        ``step`` returns ``(written_nodes, declared_read_radius)``.  The
        write radius of a step is the maximum distance from the processed
        node to any written node.
        """
        run = SLocalRun(order=list(order))
        for v in order:
            written, declared_read = step(v, self.graph, outputs)
            if written:
                dist = bfs_distances(self.graph, [v])
                write_radius = max(
                    (dist[u] for u in written if dist[u] != -1), default=0
                )
            else:
                write_radius = 0
            radius = max(write_radius, declared_read)
            run.per_node_radius[v] = radius
            run.read_radius = max(run.read_radius, declared_read)
            run.write_radius = max(run.write_radius, write_radius)
        return run
