"""repro.obs — dependency-free tracing and metrics.

The instrumentation layer under the service (and, eventually, the
CONGEST-mode message ledger): request-scoped :class:`Span` trees that
cross the NDJSON wire via the optional ``trace`` request field, plus a
Prometheus-style :class:`MetricsRegistry` of counters/gauges/histograms
behind the ``metrics`` server verb.

* :mod:`repro.obs.trace` — :class:`Tracer`/:class:`Span`, bounded span
  ring, JSONL export, parent-based sampling, the :data:`NOOP_SPAN`
  zero-cost fast path;
* :mod:`repro.obs.meters` — instruments, JSON snapshot + Prometheus
  text exposition, cross-shard snapshot merging, process gauges;
* :mod:`repro.obs.render` — ``repro trace``'s waterfall / top-N-slow
  rendering over exported JSONL spans.

See docs/OBSERVABILITY.md for the span model and wire format.
"""

from repro.obs.meters import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_snapshots,
    render_prometheus,
)
from repro.obs.render import (
    TraceView,
    group_traces,
    render_report,
    render_trace,
)
from repro.obs.trace import (
    NOOP_SPAN,
    NULL_TRACER,
    NoopSpan,
    Span,
    Tracer,
    load_spans,
)

__all__ = [
    "Span",
    "NoopSpan",
    "NOOP_SPAN",
    "Tracer",
    "NULL_TRACER",
    "load_spans",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "render_prometheus",
    "merge_snapshots",
    "TraceView",
    "group_traces",
    "render_trace",
    "render_report",
]
