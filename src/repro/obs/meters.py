"""Counters, gauges, histograms: the aggregate half of :mod:`repro.obs`.

A :class:`MetricsRegistry` holds named instruments; each instrument may
declare label names and keeps one value per label-value tuple (the
Prometheus data model, stdlib-only).  Two expositions:

* :meth:`MetricsRegistry.as_dict` — a JSON snapshot, served by the
  ``metrics`` verb and mergeable across shards with
  :func:`merge_snapshots` (the router fans out, merges, and serves one
  fleet view);
* :func:`render_prometheus` — the Prometheus text format, rendered from
  a snapshot dict rather than a live registry so the router can expose
  the *merged* fleet snapshot through the same function.

Recording is a dict upsert under one lock per registry — cheap enough
for the serving path (the admission/batching locks around it dominate).
Process-level gauges (RSS, GC collections, thread count) are registered
as callbacks, read only at snapshot time.
"""

from __future__ import annotations

import gc
import threading
from bisect import bisect_left
from typing import Any, Callable, Iterable

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "render_prometheus",
    "merge_snapshots",
    "DEFAULT_LATENCY_BUCKETS",
]

#: Histogram bucket bounds (seconds) tuned to the service's latency
#: range: cached hits are sub-millisecond, cold million-edge solves run
#: tens of seconds.
DEFAULT_LATENCY_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25,
    0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)


def _label_key(
    labelnames: tuple[str, ...], labels: dict[str, Any]
) -> tuple[str, ...]:
    if set(labels) != set(labelnames):
        raise ValueError(
            f"expected labels {labelnames}, got {tuple(sorted(labels))}"
        )
    return tuple(str(labels[name]) for name in labelnames)


class Counter:
    """Monotonic counter, optionally labelled."""

    kind = "counter"

    def __init__(self, name: str, help: str, labelnames: Iterable[str] = ()):
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._values: dict[tuple[str, ...], float] = {}
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        key = _label_key(self.labelnames, labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        key = _label_key(self.labelnames, labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def total(self) -> float:
        """Sum over every label combination."""
        with self._lock:
            return sum(self._values.values())

    def _snapshot(self) -> dict[str, Any]:
        with self._lock:
            values = dict(self._values)
        return {
            "kind": self.kind,
            "help": self.help,
            "labelnames": list(self.labelnames),
            "values": [
                {"labels": list(key), "value": value}
                for key, value in sorted(values.items())
            ],
        }


class Gauge:
    """Set-to-current-value instrument; may be callback-backed.

    A callback gauge (``Gauge(..., callback=fn)``) reads ``fn()`` at
    snapshot time instead of storing sets — how process stats (RSS, GC,
    threads) are exposed without a background sampler thread.
    """

    kind = "gauge"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: Iterable[str] = (),
        callback: Callable[[], float] | None = None,
    ):
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        if callback is not None and self.labelnames:
            raise ValueError("callback gauges cannot be labelled")
        self._callback = callback
        self._values: dict[tuple[str, ...], float] = {}
        self._lock = threading.Lock()

    def set(self, value: float, **labels: Any) -> None:
        if self._callback is not None:
            raise ValueError(f"gauge {self.name} is callback-backed")
        key = _label_key(self.labelnames, labels)
        with self._lock:
            self._values[key] = float(value)

    def value(self, **labels: Any) -> float:
        if self._callback is not None:
            return float(self._callback())
        key = _label_key(self.labelnames, labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def _snapshot(self) -> dict[str, Any]:
        if self._callback is not None:
            try:
                values = {(): float(self._callback())}
            except Exception:  # a broken probe must not break the scrape
                values = {}
        else:
            with self._lock:
                values = dict(self._values)
        return {
            "kind": self.kind,
            "help": self.help,
            "labelnames": list(self.labelnames),
            "values": [
                {"labels": list(key), "value": value}
                for key, value in sorted(values.items())
            ],
        }


class Histogram:
    """Cumulative-bucket histogram (Prometheus semantics).

    ``observe`` bumps the first bucket whose bound is >= the sample; the
    exposition renders cumulative counts with a ``+Inf`` bucket plus
    ``_sum``/``_count`` series.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: Iterable[str] = (),
        buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS,
    ):
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self.buckets = tuple(sorted(buckets))
        if not self.buckets:
            raise ValueError("histogram needs at least one bucket bound")
        self._series: dict[tuple[str, ...], dict[str, Any]] = {}
        self._lock = threading.Lock()

    def observe(self, value: float, **labels: Any) -> None:
        key = _label_key(self.labelnames, labels)
        index = bisect_left(self.buckets, value)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = {
                    "counts": [0] * (len(self.buckets) + 1),  # +Inf last
                    "sum": 0.0,
                    "count": 0,
                }
            series["counts"][index] += 1
            series["sum"] += value
            series["count"] += 1

    def _snapshot(self) -> dict[str, Any]:
        with self._lock:
            series = {
                key: {
                    "counts": list(value["counts"]),
                    "sum": value["sum"],
                    "count": value["count"],
                }
                for key, value in self._series.items()
            }
        return {
            "kind": self.kind,
            "help": self.help,
            "labelnames": list(self.labelnames),
            "buckets": list(self.buckets),
            "values": [
                {"labels": list(key), **value}
                for key, value in sorted(series.items())
            ],
        }


class MetricsRegistry:
    """A named collection of instruments with one JSON snapshot.

    ``counter``/``gauge``/``histogram`` are get-or-create: asking twice
    for the same name returns the same instrument (so wiring code can be
    idempotent), and asking with conflicting label names raises.
    """

    def __init__(self) -> None:
        self._instruments: dict[str, Any] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, cls: type[Any], name: str, help: str, **kwargs: Any) -> Any:
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, not {cls.kind}"
                    )
                wanted = tuple(kwargs.get("labelnames", ()))
                if tuple(existing.labelnames) != wanted:
                    raise ValueError(
                        f"metric {name!r} already registered with labels "
                        f"{existing.labelnames}, not {wanted}"
                    )
                return existing
            instrument = cls(name, help, **kwargs)
            self._instruments[name] = instrument
            return instrument

    def counter(
        self, name: str, help: str = "", labelnames: Iterable[str] = ()
    ) -> Counter:
        return self._get_or_create(
            Counter, name, help, labelnames=tuple(labelnames)
        )

    def gauge(
        self,
        name: str,
        help: str = "",
        labelnames: Iterable[str] = (),
        callback: Callable[[], float] | None = None,
    ) -> Gauge:
        return self._get_or_create(
            Gauge, name, help, labelnames=tuple(labelnames), callback=callback
        )

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Iterable[str] = (),
        buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help, labelnames=tuple(labelnames),
            buckets=tuple(buckets),
        )

    def as_dict(self) -> dict[str, Any]:
        """``{metric_name: {kind, help, labelnames, values, ...}}``."""
        with self._lock:
            instruments = dict(self._instruments)
        return {name: inst._snapshot() for name, inst in sorted(instruments.items())}

    def install_process_gauges(self) -> None:
        """Register the standard process gauges (idempotent)."""
        self.gauge(
            "process_resident_memory_bytes",
            "Resident set size of this process",
            callback=_rss_bytes,
        )
        self.gauge(
            "process_threads",
            "Live threads in this process",
            callback=lambda: float(threading.active_count()),
        )
        self.gauge(
            "process_gc_collections_total",
            "Garbage collections across all generations",
            callback=lambda: float(sum(s["collections"] for s in gc.get_stats())),
        )
        self.gauge(
            "process_gc_objects_tracked",
            "Objects currently tracked by the garbage collector",
            callback=lambda: float(len(gc.get_objects())),
        )


def _rss_bytes() -> float:
    """Resident set size: /proc on Linux, getrusage elsewhere."""
    try:
        with open("/proc/self/status", "r", encoding="ascii") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    return float(line.split()[1]) * 1024.0
    except OSError:
        pass
    try:
        import resource

        rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        # ru_maxrss is KiB on Linux, bytes on macOS
        return float(rss_kb) * (1.0 if rss_kb > 1 << 32 else 1024.0)
    except Exception:  # pragma: no cover - defensive
        return 0.0


# -- exposition ------------------------------------------------------------


def _escape_label(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r'\"').replace("\n", r"\n")


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _labels_text(labelnames: list[str], labelvalues: list[str]) -> str:
    if not labelnames:
        return ""
    pairs = ",".join(
        f'{name}="{_escape_label(str(value))}"'
        for name, value in zip(labelnames, labelvalues)
    )
    return "{" + pairs + "}"


def render_prometheus(snapshot: dict[str, Any]) -> str:
    """Render a :meth:`MetricsRegistry.as_dict` snapshot as Prometheus
    text exposition format (version 0.0.4).

    Takes the snapshot dict, not a registry, so merged fleet snapshots
    (:func:`merge_snapshots`) render through the same code path.
    """
    lines: list[str] = []
    for name, metric in sorted(snapshot.items()):
        kind = metric.get("kind", "untyped")
        help_text = (metric.get("help") or "").replace("\n", " ")
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")
        labelnames = list(metric.get("labelnames", ()))
        if kind == "histogram":
            buckets = list(metric.get("buckets", ()))
            for series in metric.get("values", ()):
                labelvalues = list(series["labels"])
                cumulative = 0
                for bound, count in zip(buckets, series["counts"]):
                    cumulative += count
                    bucket_labels = _labels_text(
                        labelnames + ["le"], labelvalues + [_format_value(bound)]
                    )
                    lines.append(f"{name}_bucket{bucket_labels} {cumulative}")
                cumulative += series["counts"][len(buckets)]
                inf_labels = _labels_text(
                    labelnames + ["le"], labelvalues + ["+Inf"]
                )
                lines.append(f"{name}_bucket{inf_labels} {cumulative}")
                plain = _labels_text(labelnames, labelvalues)
                lines.append(f"{name}_sum{plain} {_format_value(series['sum'])}")
                lines.append(f"{name}_count{plain} {series['count']}")
        else:
            for series in metric.get("values", ()):
                labels = _labels_text(labelnames, list(series["labels"]))
                lines.append(f"{name}{labels} {_format_value(series['value'])}")
    return "\n".join(lines) + ("\n" if lines else "")


def merge_snapshots(snapshots: "list[dict[str, Any]]") -> dict[str, Any]:
    """Fold per-process registry snapshots into one fleet snapshot.

    Counters and histograms sum per (metric, label tuple); gauges sum
    too — the fleet's RSS/threads/queue depth is the sum of its
    processes' (for a worst-shard view, read the per-shard sections the
    ``metrics`` verb also returns).  Metrics present in only some
    snapshots merge from those that have them.
    """
    merged: dict[str, Any] = {}
    for snapshot in snapshots:
        for name, metric in snapshot.items():
            target = merged.get(name)
            if target is None:
                merged[name] = {
                    **metric,
                    "values": [dict(v) for v in metric.get("values", ())],
                }
                continue
            by_labels = {
                tuple(series["labels"]): series
                for series in target["values"]
            }
            for series in metric.get("values", ()):
                key = tuple(series["labels"])
                existing = by_labels.get(key)
                if existing is None:
                    appended = dict(series)
                    target["values"].append(appended)
                    by_labels[key] = appended
                elif metric.get("kind") == "histogram":
                    existing["counts"] = [
                        a + b
                        for a, b in zip(existing["counts"], series["counts"])
                    ]
                    existing["sum"] += series["sum"]
                    existing["count"] += series["count"]
                else:
                    existing["value"] += series["value"]
            target["values"].sort(key=lambda series: series["labels"])
    return merged
