"""Waterfall / top-N rendering over exported JSONL spans.

The analysis half of ``repro trace``: group span records (from
:func:`repro.obs.trace.load_spans`) into traces, rank traces by wall
duration, and render each as an indented waterfall — offset bars laid
out against the trace's own time window, so a router-to-solver-phase
request reads top to bottom in causal order even when its spans came
from three different processes' export files.
"""

from __future__ import annotations

from typing import Any

__all__ = ["group_traces", "render_trace", "render_report", "TraceView"]


class TraceView:
    """One trace's spans, ordered and depth-annotated for rendering."""

    def __init__(self, trace_id: str, spans: list[dict[str, Any]]):
        self.trace_id = trace_id
        self.spans = sorted(
            spans, key=lambda s: (s.get("start_s", 0.0), s.get("span_id", ""))
        )
        by_id = {s.get("span_id"): s for s in self.spans}
        self.depth: dict[str, int] = {}
        for span in self.spans:
            self.depth[span["span_id"]] = self._depth_of(span, by_id)
        starts = [s.get("start_s", 0.0) for s in self.spans]
        ends = [
            s.get("start_s", 0.0) + s.get("duration_s", 0.0) for s in self.spans
        ]
        self.start_s = min(starts) if starts else 0.0
        self.end_s = max(ends) if ends else 0.0

    def _depth_of(self, span: dict[str, Any], by_id: dict) -> int:
        depth, seen = 0, set()
        current = span
        while True:
            parent_id = current.get("parent_id")
            if parent_id is None or parent_id not in by_id or parent_id in seen:
                # roots, and orphans whose parent wasn't exported (e.g.
                # a tier traced at sample=0 without a file), both anchor
                # at their nearest present ancestor
                return depth
            seen.add(parent_id)
            current = by_id[parent_id]
            depth += 1

    @property
    def duration_s(self) -> float:
        return max(0.0, self.end_s - self.start_s)

    @property
    def root(self) -> dict[str, Any]:
        for span in self.spans:
            if self.depth.get(span.get("span_id"), 0) == 0:
                return span
        return self.spans[0]


def group_traces(records: "list[dict[str, Any]]") -> list[TraceView]:
    """Group span records by trace id; slowest trace first."""
    by_trace: dict[str, list[dict[str, Any]]] = {}
    for record in records:
        trace_id = record.get("trace_id")
        if isinstance(trace_id, str) and trace_id:
            by_trace.setdefault(trace_id, []).append(record)
    views = [TraceView(tid, spans) for tid, spans in by_trace.items()]
    views.sort(key=lambda view: view.duration_s, reverse=True)
    return views


def _format_attrs(attrs: dict[str, Any], limit: int = 4) -> str:
    if not attrs:
        return ""
    parts = [f"{k}={v}" for k, v in list(attrs.items())[:limit]]
    if len(attrs) > limit:
        parts.append("…")
    return "  " + " ".join(parts)


def render_trace(view: TraceView, width: int = 28) -> str:
    """One trace as an indented waterfall with offset/duration bars."""
    window = max(view.duration_s, 1e-9)
    lines = [
        f"trace {view.trace_id}  spans={len(view.spans)}  "
        f"total={1000 * view.duration_s:.1f} ms"
    ]
    for span in view.spans:
        offset = span.get("start_s", 0.0) - view.start_s
        duration = span.get("duration_s", 0.0)
        left = min(width - 1, int(width * offset / window))
        fill = max(1, min(width - left, round(width * duration / window)))
        bar = " " * left + "▇" * fill + " " * (width - left - fill)
        indent = "  " * view.depth.get(span.get("span_id"), 0)
        lines.append(
            f"  [{bar}] {1000 * offset:8.1f} ms +{1000 * duration:8.1f} ms  "
            f"{indent}{span.get('name', '?')}"
            f"{_format_attrs(span.get('attrs', {}))}"
        )
    return "\n".join(lines)


def render_report(
    records: "list[dict[str, Any]]",
    top: int = 5,
    trace_id: str | None = None,
    min_ms: float = 0.0,
) -> str:
    """The ``repro trace`` output: a slowest-traces table plus waterfalls.

    ``trace_id`` (a full id or a unique prefix) narrows the report to one
    trace; ``min_ms`` drops traces faster than the threshold from both
    the table and the waterfalls.
    """
    views = group_traces(records)
    if trace_id is not None:
        views = [v for v in views if v.trace_id.startswith(trace_id)]
        if not views:
            return f"no trace matching {trace_id!r} in {len(records)} spans"
    if min_ms > 0:
        views = [v for v in views if 1000 * v.duration_s >= min_ms]
    if not views:
        return f"no complete traces in {len(records)} spans"
    lines = [f"{len(records)} spans, {len(views)} trace(s)", ""]
    lines.append(
        f"{'#':>3}  {'trace':<16} {'root':<24} {'spans':>5} {'total':>10}"
    )
    for rank, view in enumerate(views[:top], 1):
        lines.append(
            f"{rank:>3}  {view.trace_id[:16]:<16} "
            f"{view.root.get('name', '?'):<24} {len(view.spans):>5} "
            f"{1000 * view.duration_s:>8.1f} ms"
        )
    lines.append("")
    for view in views[:top]:
        lines.append(render_trace(view))
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"
