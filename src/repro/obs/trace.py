"""Spans and tracers: the request-path half of :mod:`repro.obs`.

One request through the sharded service crosses five tiers — router →
shard worker → gateway/batcher → solver pool → phase pipeline — and a
:class:`Span` tree is the only structure that can say *where inside one
request* the time went (metrics aggregate across requests; spans
decompose within one).  The model is deliberately the OpenTelemetry
core, with none of its weight:

* a **trace** is identified by a 32-hex ``trace_id`` shared by every
  span of one request, across processes;
* a **span** is one timed operation: 16-hex ``span_id``, ``parent_id``
  linking it into the tree, a name, a monotonic start + duration, and a
  small flat ``attrs`` dict;
* context crosses the NDJSON wire as the optional ``trace`` request
  field — ``{"trace_id": ..., "span_id": ...}`` — which the receiving
  tier passes as ``remote_parent`` to continue the tree.

Everything is stdlib-only and cheap enough for the serving hot path:

* a disabled or non-sampled tracer hands out the shared
  :data:`NOOP_SPAN` singleton — no allocation, no clock reads, no lock
  (the "sampling off costs ≤2%" budget in benchmarks/bench_s4_obs.py
  holds the service to this);
* finished spans land in a bounded ring (old spans drop, the process
  never grows) and, when ``export_path`` is set, append to a JSONL file
  one object per line — the input of ``repro trace``;
* sampling is decided once, at the root: child spans inherit the
  decision, and a remote parent context forces it on (the router made
  the call for the whole fleet).

Wall-clock timestamps: spans carry ``start_s`` in epoch seconds
(derived once per span from ``time.time`` anchored to a
``perf_counter`` offset) so spans from different processes order
correctly in one waterfall, while durations are pure ``perf_counter``
deltas.
"""

from __future__ import annotations

import json
import os
import random
import threading
import time
from collections import deque
from types import TracebackType
from typing import Any

__all__ = [
    "Span",
    "NoopSpan",
    "NOOP_SPAN",
    "Tracer",
    "NULL_TRACER",
    "load_spans",
]


class NoopSpan:
    """The do-nothing span handed out when tracing is off or unsampled.

    A single module-level instance (:data:`NOOP_SPAN`) is shared by every
    caller — the hot path allocates nothing.  All mutators are no-ops and
    it is falsy, so ``if span:`` guards optional work (attr formatting,
    context injection) without an ``isinstance`` check.
    """

    __slots__ = ()

    sampled = False
    trace_id = ""
    span_id = ""

    def set_attr(self, key: str, value: Any) -> "NoopSpan":
        return self

    def end(self) -> None:
        return None

    def wire_context(self) -> None:
        return None

    def __enter__(self) -> "NoopSpan":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        return None

    def __bool__(self) -> bool:
        return False

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return "NoopSpan()"


NOOP_SPAN = NoopSpan()


class Span:
    """One timed operation in a trace tree.

    Created via :meth:`Tracer.start_span`; finished with :meth:`end` (or
    the context-manager protocol).  ``attrs`` values should be small
    JSON-able scalars — they ride in every exported line.
    """

    __slots__ = (
        "tracer", "name", "trace_id", "span_id", "parent_id",
        "start_s", "_t0", "duration_s", "attrs", "_ended",
    )

    sampled = True

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        trace_id: str,
        span_id: str,
        parent_id: str | None,
    ):
        self.tracer = tracer
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self._t0 = time.perf_counter()
        self.start_s = tracer._epoch + (self._t0 - tracer._epoch_t0)
        self.duration_s: float | None = None
        self.attrs: dict[str, Any] = {}
        self._ended = False

    def set_attr(self, key: str, value: Any) -> "Span":
        self.attrs[key] = value
        return self

    def end(self) -> None:
        """Finish the span (idempotent) and hand it to the tracer."""
        if self._ended:
            return
        self._ended = True
        if self.duration_s is None:
            self.duration_s = time.perf_counter() - self._t0
        self.tracer._finish(self)

    def wire_context(self) -> dict[str, str]:
        """The ``trace`` field to put on a forwarded NDJSON request."""
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    def as_dict(self) -> dict[str, Any]:
        record: dict[str, Any] = {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_s": round(self.start_s, 6),
            "duration_s": round(self.duration_s or 0.0, 6),
        }
        if self.attrs:
            record["attrs"] = dict(self.attrs)
        return record

    def __enter__(self) -> "Span":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self.end()

    def __bool__(self) -> bool:
        return True

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"Span({self.name!r}, trace={self.trace_id[:8]}…, "
            f"span={self.span_id}, parent={self.parent_id})"
        )


class Tracer:
    """Creates spans, keeps the recent ones, optionally exports JSONL.

    Parameters
    ----------
    enabled:
        Master switch; off hands out :data:`NOOP_SPAN` everywhere.
    sample:
        Root sampling probability in ``[0, 1]``.  Decided once per trace
        at the root span; children (local and remote) inherit.  ``0.0``
        keeps the tracer "on" but tracing nothing locally — it still
        honours remote parents, so a shard at ``sample=0`` traces
        exactly the requests its router sampled.
    max_spans:
        Ring-buffer bound on retained finished spans.
    export_path:
        Append finished spans to this JSONL file (one object per line,
        created eagerly so an idle process still leaves a readable file).
    slow_threshold_s:
        Root spans at least this slow are also kept in
        :attr:`slow_exemplars` (most recent ``max_exemplars``) — the
        "why was *that* request slow" ring that survives even when the
        main ring has churned past it.
    seed:
        Id-stream seed (tests); defaults to OS entropy.  Ids come from a
        private :class:`random.Random` so tracing never perturbs any
        solver's seeded rng stream.
    """

    def __init__(
        self,
        enabled: bool = True,
        *,
        sample: float = 1.0,
        max_spans: int = 4096,
        export_path: str | None = None,
        slow_threshold_s: float = 1.0,
        max_exemplars: int = 32,
        seed: int | None = None,
    ):
        if not 0.0 <= sample <= 1.0:
            raise ValueError(f"sample must be in [0, 1], got {sample}")
        if max_spans < 1:
            raise ValueError(f"max_spans must be >= 1, got {max_spans}")
        self.enabled = enabled
        self.sample = sample
        self.slow_threshold_s = slow_threshold_s
        self.export_path = export_path
        self._rng = random.Random(seed if seed is not None else os.urandom(8))
        self._lock = threading.Lock()
        self._spans: deque[dict[str, Any]] = deque(maxlen=max_spans)
        self.slow_exemplars: deque[dict[str, Any]] = deque(maxlen=max_exemplars)
        self.dropped = 0  # finished spans pushed out of the ring
        self.finished = 0  # all-time finished span count
        # One epoch anchor per tracer: wall time is read once, span
        # timestamps are perf_counter offsets from it (monotonic within
        # the process, comparable across processes to ~clock accuracy).
        self._epoch = time.time()
        self._epoch_t0 = time.perf_counter()
        if export_path:
            with open(export_path, "a", encoding="utf-8"):
                pass

    # -- span creation -----------------------------------------------------

    def _new_id(self, bits: int) -> str:
        return f"{self._rng.getrandbits(bits):0{bits // 4}x}"

    def start_span(
        self,
        name: str,
        parent: "Span | NoopSpan | None" = None,
        *,
        remote_parent: dict[str, Any] | None = None,
        attrs: dict[str, Any] | None = None,
    ) -> "Span | NoopSpan":
        """Start a span; returns :data:`NOOP_SPAN` when not sampled.

        ``parent`` continues a local span's trace; ``remote_parent`` a
        wire context (``{"trace_id", "span_id"}`` — a malformed one is
        ignored rather than poisoning the request).  With neither, this
        is a root span and the sampling decision is made here.
        """
        if not self.enabled:
            return NOOP_SPAN
        if remote_parent is not None and not _valid_context(remote_parent):
            remote_parent = None  # junk context: treat as absent
        if parent is not None and parent:
            trace_id, parent_id = parent.trace_id, parent.span_id
        elif remote_parent is not None:
            trace_id = remote_parent["trace_id"]
            parent_id = remote_parent["span_id"]
        elif parent is None:
            if self.sample < 1.0 and self._rng.random() >= self.sample:
                return NOOP_SPAN
            trace_id, parent_id = self._new_id(128), None
        else:
            # a NOOP parent: the upstream decided not to sample this
            # request — stay out of the trace entirely
            return NOOP_SPAN
        span = Span(self, name, trace_id, self._new_id(64), parent_id)
        if attrs:
            span.attrs.update(attrs)
        return span

    def emit(
        self,
        name: str,
        parent: "Span | NoopSpan | None",
        duration_s: float,
        *,
        offset_s: float = 0.0,
        attrs: dict[str, Any] | None = None,
    ) -> "Span | NoopSpan":
        """Record an already-finished child span from a measured duration.

        Solver phases and repair rungs are timed inside engines that know
        nothing about tracing; their recorded wall times are synthesized
        into spans after the fact.  ``offset_s`` places the span's start
        relative to the parent's start (phases are sequential, so callers
        accumulate offsets to lay them end-to-end).
        """
        if parent is None or not parent:
            return NOOP_SPAN
        span = Span(self, name, parent.trace_id, self._new_id(64), parent.span_id)
        span.start_s = parent.start_s + offset_s
        span.duration_s = max(0.0, duration_s)
        if attrs:
            span.attrs.update(attrs)
        span.end()
        return span

    # -- collection --------------------------------------------------------

    def _finish(self, span: Span) -> None:
        record = span.as_dict()
        line = None
        if self.export_path:
            line = json.dumps(record, separators=(",", ":")) + "\n"
        with self._lock:
            self.finished += 1
            if len(self._spans) == self._spans.maxlen:
                self.dropped += 1
            self._spans.append(record)
            if (
                span.parent_id is None
                and (span.duration_s or 0.0) >= self.slow_threshold_s
            ):
                self.slow_exemplars.append(record)
            if line is not None:
                with open(self.export_path, "a", encoding="utf-8") as handle:
                    handle.write(line)

    def spans(self) -> list[dict[str, Any]]:
        """Finished spans still in the ring (oldest first)."""
        with self._lock:
            return list(self._spans)

    def stats(self) -> dict[str, Any]:
        with self._lock:
            return {
                "enabled": self.enabled,
                "sample": self.sample,
                "finished": self.finished,
                "buffered": len(self._spans),
                "dropped": self.dropped,
                "slow_exemplars": len(self.slow_exemplars),
            }


def _valid_context(context: Any) -> bool:
    return (
        isinstance(context, dict)
        and isinstance(context.get("trace_id"), str)
        and isinstance(context.get("span_id"), str)
        and bool(context["trace_id"])
        and bool(context["span_id"])
    )


#: Shared disabled tracer: the default wherever a tracer is optional, so
#: call sites never need a None check.
NULL_TRACER = Tracer(enabled=False)


def load_spans(paths: "list[str]") -> list[dict[str, Any]]:
    """Read span records from JSONL files (or directories of them).

    Lines that fail to parse are skipped (a crashed process may leave a
    torn final line); the result is every span of every file, unsorted —
    grouping and ordering belong to the renderer.
    """
    span_files: list[str] = []
    for path in paths:
        if os.path.isdir(path):
            span_files.extend(
                os.path.join(path, name)
                for name in sorted(os.listdir(path))
                if name.endswith(".jsonl")
            )
        else:
            span_files.append(path)
    records: list[dict[str, Any]] = []
    for span_file in span_files:
        with open(span_file, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if isinstance(record, dict) and "span_id" in record:
                    records.append(record)
    return records
