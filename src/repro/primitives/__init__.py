"""Distributed primitives: the substrates the paper's algorithms cite.

* :mod:`repro.primitives.linial` — O(Δ²) coloring in O(log* n) rounds.
* :mod:`repro.primitives.mis` — Luby and Ghaffari MIS (+ power-graph and
  message-passing variants).
* :mod:`repro.primitives.ruling_sets` — the Lemma 20 ruling-set toolbox.
* :mod:`repro.primitives.list_coloring` — (deg+1)-list coloring engines
  (Theorems 18/19 substitutes).
* :mod:`repro.primitives.decomposition` — small-component finishers
  (Lemma 24 substitutes).
"""

from repro.primitives.decomposition import (
    Clustering,
    gather_component_cost,
    mpx_clustering,
    solve_component_by_clustering,
    solve_components_by_gathering,
)
from repro.primitives.linial import LinialResult, linial_coloring, reduction_schedule
from repro.primitives.list_coloring import (
    ListColoringStats,
    available_colors,
    greedy_color_sequential,
    list_coloring_deterministic,
    list_coloring_hybrid,
    list_coloring_random,
)
from repro.primitives.mis import (
    LubyProgram,
    MISResult,
    ghaffari_mis,
    greedy_mis_from_coloring,
    luby_mis,
    power_graph_mis,
)
from repro.primitives.numbers import ilog_star, int_to_digits, is_prime, next_prime
from repro.primitives.ruling_sets import (
    RulingSetResult,
    ruling_forest_aglp,
    ruling_set_from_coloring,
    ruling_set_random,
    verify_ruling_set,
)

__all__ = [
    "LinialResult",
    "linial_coloring",
    "reduction_schedule",
    "MISResult",
    "luby_mis",
    "ghaffari_mis",
    "power_graph_mis",
    "greedy_mis_from_coloring",
    "LubyProgram",
    "RulingSetResult",
    "ruling_forest_aglp",
    "ruling_set_random",
    "ruling_set_from_coloring",
    "verify_ruling_set",
    "ListColoringStats",
    "available_colors",
    "list_coloring_random",
    "list_coloring_hybrid",
    "list_coloring_deterministic",
    "greedy_color_sequential",
    "Clustering",
    "gather_component_cost",
    "mpx_clustering",
    "solve_component_by_clustering",
    "solve_components_by_gathering",
    "is_prime",
    "next_prime",
    "int_to_digits",
    "ilog_star",
]
