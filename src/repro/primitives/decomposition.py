"""Small-component solvers: gathering and low-diameter clustering.

Lemma 24 (the shattering lemma) finishes the small leftover components of
the randomized algorithms using network decompositions ((P3)/(P4)).  As
documented in DESIGN.md §4.4, we substitute two simpler tools with the
same LOCAL-model contract:

* **Leader gathering** — in LOCAL, a component of radius ρ can be solved
  exactly in 2ρ+1 rounds: flood the topology and the boundary colors to
  the min-id leader (ρ rounds), solve centrally, flood the answer back.
  For the poly(Δ)·log n-size components the shattering lemma produces this
  is already far below the main cost terms.
* **MPX low-diameter clustering** (Miller–Peng–Xu exponential delays) — a
  genuinely distributed (O(β)-round) partition into clusters of radius
  O(log n / β) w.h.p. with few inter-cluster edges; provided both as an
  alternative finisher (cluster-by-cluster solving ordered by a greedy
  cluster-graph coloring) and as a measurable artifact for experiment E8's
  decomposition table.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from heapq import heappop, heappush

from repro.graphs.bfs import bfs_distances
from repro.graphs.graph import Graph
from repro.local.rounds import RoundLedger
from repro.primitives.list_coloring import greedy_color_sequential

__all__ = [
    "Clustering",
    "gather_component_cost",
    "solve_components_by_gathering",
    "mpx_clustering",
    "solve_component_by_clustering",
]


@dataclass
class Clustering:
    """A partition of a node subset into low-diameter clusters.

    ``cluster_of[v]`` is the center id of v's cluster (or -1 outside the
    clustered set); ``centers`` lists cluster centers; ``max_radius`` is
    the largest observed center-to-member distance (the round-cost driver).
    """

    cluster_of: dict[int, int]
    centers: list[int]
    max_radius: int


def gather_component_cost(graph: Graph, component: list[int], member_set: set[int]) -> int:
    """LOCAL cost of solving ``component`` by gathering: 2·radius+1 rounds,
    where radius is the min-id leader's eccentricity inside the component."""
    leader = min(component)
    dist = bfs_distances(graph, [leader], allowed=member_set)
    radius = max(dist[v] for v in component)
    return 2 * radius + 1


def solve_components_by_gathering(
    graph: Graph,
    colors: list[int],
    components: list[list[int]],
    max_colors: int,
    ledger: RoundLedger | None = None,
) -> int:
    """Solve each (deg+1-feasible) component by gathering; charge the max.

    Components are node-disjoint and non-adjacent by construction (they
    are maximal connected uncolored sets), so they are solved concurrently
    and the charged LOCAL cost is the maximum over components.
    Returns that maximum.
    """
    ledger = ledger if ledger is not None else RoundLedger()
    costs = []
    for component in components:
        member_set = set(component)
        costs.append(gather_component_cost(graph, component, member_set))
        greedy_color_sequential(graph, colors, component, max_colors)
    ledger.charge_max(costs)
    return max(costs, default=0)


def mpx_clustering(
    graph: Graph,
    members: set[int],
    beta: float,
    rng: random.Random | None = None,
) -> Clustering:
    """Miller–Peng–Xu clustering of ``members`` with parameter β.

    Every member draws a delay δ_v ~ Exponential(β) (capped at
    2·ln(n+1)/β); node u joins the cluster of the center v minimising
    ``dist(v, u) - δ_v`` (ties by smaller center id).  Implemented as a
    multi-source Dijkstra with shifted start keys; distances are measured
    inside the member set.  Cluster radii are O(log n / β) w.h.p.
    """
    rng = rng if rng is not None else random.Random(0)
    cap = 2.0 * math.log(len(members) + 2) / beta
    delay = {v: min(rng.expovariate(beta), cap) for v in members}
    # Multi-source Dijkstra on keys (dist - delay, center, node).
    best_key: dict[int, tuple[float, int]] = {}
    origin: dict[int, int] = {}
    heap: list[tuple[float, int, int]] = []
    for v in members:
        key = (-delay[v], v)
        best_key[v] = key
        origin[v] = v
        heappush(heap, (key[0], key[1], v))
    while heap:
        key_value, center, u = heappop(heap)
        if best_key[u] != (key_value, center):
            continue
        origin[u] = center
        for w in graph.adj[u]:
            if w not in members:
                continue
            candidate = (key_value + 1.0, center)
            if candidate < best_key[w]:
                best_key[w] = candidate
                heappush(heap, (candidate[0], candidate[1], w))
    centers = sorted(set(origin.values()))
    # Radius = hop distance from center to farthest member of its cluster.
    max_radius = 0
    for center in centers:
        cluster_nodes = {v for v, c in origin.items() if c == center}
        dist = bfs_distances(graph, [center], allowed=cluster_nodes)
        radius = max((dist[v] for v in cluster_nodes if dist[v] != -1), default=0)
        max_radius = max(max_radius, radius)
    return Clustering(cluster_of=origin, centers=centers, max_radius=max_radius)


def solve_component_by_clustering(
    graph: Graph,
    colors: list[int],
    component: list[int],
    max_colors: int,
    beta: float = 0.4,
    rng: random.Random | None = None,
    ledger: RoundLedger | None = None,
) -> int:
    """Finish one uncolored component via MPX clusters.

    Clusters are solved greedily in cluster-graph coloring order: clusters
    whose cluster-color differs are non-adjacent and solve concurrently.
    Rounds charged: β-clustering cost (max radius) + (#cluster colors) ×
    (gather cost of the largest cluster).  Returns the charged rounds.
    """
    ledger = ledger if ledger is not None else RoundLedger()
    rng = rng if rng is not None else random.Random(0)
    member_set = set(component)
    clustering = mpx_clustering(graph, member_set, beta, rng)
    # Build the cluster graph and greedily color it (centralized is fine:
    # this models each cluster leader learning its neighbours' choices).
    cluster_neighbors: dict[int, set[int]] = {c: set() for c in clustering.centers}
    for u in component:
        cu = clustering.cluster_of[u]
        for w in graph.adj[u]:
            if w in member_set:
                cw = clustering.cluster_of[w]
                if cw != cu:
                    cluster_neighbors[cu].add(cw)
                    cluster_neighbors[cw].add(cu)
    cluster_color: dict[int, int] = {}
    for center in sorted(clustering.centers):
        used = {cluster_color.get(c) for c in cluster_neighbors[center]}
        color = 0
        while color in used:
            color += 1
        cluster_color[center] = color
    num_cluster_colors = max(cluster_color.values(), default=0) + 1
    # Solve clusters in color-class order.
    for color_class in range(num_cluster_colors):
        for center in clustering.centers:
            if cluster_color[center] != color_class:
                continue
            cluster_nodes = [v for v in component if clustering.cluster_of[v] == center]
            greedy_color_sequential(graph, colors, cluster_nodes, max_colors)
    rounds = clustering.max_radius + num_cluster_colors * (2 * clustering.max_radius + 1)
    ledger.charge(rounds)
    return rounds
