"""Linial's O(Δ²)-coloring in O(log* n) rounds [Lin92].

Both the deterministic Δ-coloring (Section 3) and the randomized algorithms
(Section 4) start by computing an O(Δ²) coloring "with Linial's algorithm",
used purely for symmetry breaking inside the list-coloring subroutines.

The implementation is the polynomial set-system reduction.  Given a proper
``k``-coloring, pick a degree ``d`` and prime ``q`` with

* ``q^(d+1) >= k``  (distinct colors map to distinct polynomials), and
* ``q >= d*Δ + 1``  (a conflict-free evaluation point always exists),

interpret each color as a polynomial ``p_v`` of degree <= d over GF(q)
(its base-q digits are the coefficients), exchange colors with neighbours
(one round), and let every node pick the smallest point ``x`` where its
polynomial differs from all neighbours' polynomials.  Two distinct
polynomials of degree <= d agree on at most d points, so at most ``d*Δ``
points are blocked and some ``x < q`` survives.  The new color is the pair
``(x, p_v(x))``, i.e. a palette of ``q²`` colors.

Each iteration costs one round and maps ``k -> q² ≈ max(d*Δ, k^{1/(d+1)})²``;
iterating reaches a fixed point of size O(Δ²) after O(log* k) rounds.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graphs.graph import Graph
from repro.local.rounds import RoundLedger
from repro.primitives.numbers import int_to_digits, next_prime

__all__ = ["LinialResult", "linial_coloring", "reduction_schedule"]


@dataclass
class LinialResult:
    """Output of :func:`linial_coloring`.

    ``colors[v]`` is a 0-based color < ``palette``; ``iterations`` is the
    number of reduction rounds executed (the O(log* n) quantity measured by
    experiment E9).
    """

    colors: list[int]
    palette: int
    iterations: int
    rounds: int


def _choose_parameters(k: int, delta: int, max_degree_d: int = 64) -> tuple[int, int]:
    """Pick ``(d, q)`` minimising the new palette ``q²`` for current size k."""
    best: tuple[int, int] | None = None
    for d in range(1, max_degree_d + 1):
        q = next_prime(d * delta + 1)
        # Raise q until polynomials can express all k colors.
        while q ** (d + 1) < k:
            q = next_prime(q + 1)
        if best is None or q < best[1]:
            best = (d, q)
        if q == d * delta + 1 or q <= delta + 2:
            # Larger d can no longer help: q is already at its floor.
            break
    assert best is not None
    return best


def reduction_schedule(n: int, delta: int) -> list[tuple[int, int, int]]:
    """The sequence of ``(k, d, q)`` reductions Linial performs from palette
    ``n`` down to its fixed point.  Exposed for tests and experiment E9
    (it determines the iteration count without touching a graph)."""
    schedule = []
    k = n
    while True:
        d, q = _choose_parameters(k, max(1, delta))
        if q * q >= k:
            break
        schedule.append((k, d, q))
        k = q * q
    return schedule


def linial_coloring(
    graph: Graph,
    ledger: RoundLedger | None = None,
    max_iterations: int = 200,
) -> LinialResult:
    """Compute an O(Δ²) coloring of ``graph`` in O(log* n) rounds.

    The initial coloring is the identity (node ids), palette ``n``; each
    iteration performs one synchronous exchange of colors and reduces the
    palette as described in the module docstring.  The returned palette is
    the fixed point q² for the smallest usable prime q (for Δ >= 2 this is
    at most ``(2Δ + O(1))² = O(Δ²)``).
    """
    ledger = ledger if ledger is not None else RoundLedger()
    n = graph.n
    delta = max(1, graph.max_degree())
    colors = list(range(n))
    k = max(n, 2)
    iterations = 0
    adj = graph.adj
    while iterations < max_iterations:
        d, q = _choose_parameters(k, delta)
        if q * q >= k:
            break
        iterations += 1
        ledger.charge(1)  # exchange current colors with all neighbours
        new_colors = [0] * n
        # Precompute digit vectors lazily per distinct color.
        digit_cache: dict[int, list[int]] = {}

        def digits_of(color: int) -> list[int]:
            cached = digit_cache.get(color)
            if cached is None:
                cached = int_to_digits(color, q, d + 1)
                digit_cache[color] = cached
            return cached

        eval_cache: dict[tuple[int, int], int] = {}

        def evaluate(color: int, x: int) -> int:
            key = (color, x)
            cached = eval_cache.get(key)
            if cached is None:
                acc = 0
                for coefficient in reversed(digits_of(color)):
                    acc = (acc * x + coefficient) % q
                eval_cache[key] = acc
                cached = acc
            return cached

        for v in range(n):
            own_color = colors[v]
            neighbor_colors = [colors[u] for u in adj[v]]
            chosen_x = -1
            chosen_value = -1
            for x in range(q):
                own_value = evaluate(own_color, x)
                if all(evaluate(c, x) != own_value for c in neighbor_colors):
                    chosen_x = x
                    chosen_value = own_value
                    break
            if chosen_x < 0:
                raise AssertionError("no free evaluation point; parameter bug")
            new_colors[v] = chosen_x * q + chosen_value
        colors = new_colors
        k = q * q
    return LinialResult(colors=colors, palette=k, iterations=iterations, rounds=iterations)
