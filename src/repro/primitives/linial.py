"""Linial's O(Δ²)-coloring in O(log* n) rounds [Lin92].

Both the deterministic Δ-coloring (Section 3) and the randomized algorithms
(Section 4) start by computing an O(Δ²) coloring "with Linial's algorithm",
used purely for symmetry breaking inside the list-coloring subroutines.

The implementation is the polynomial set-system reduction.  Given a proper
``k``-coloring, pick a degree ``d`` and prime ``q`` with

* ``q^(d+1) >= k``  (distinct colors map to distinct polynomials), and
* ``q >= d*Δ + 1``  (a conflict-free evaluation point always exists),

interpret each color as a polynomial ``p_v`` of degree <= d over GF(q)
(its base-q digits are the coefficients), exchange colors with neighbours
(one round), and let every node pick the smallest point ``x`` where its
polynomial differs from all neighbours' polynomials.  Two distinct
polynomials of degree <= d agree on at most d points, so at most ``d*Δ``
points are blocked and some ``x < q`` survives.  The new color is the pair
``(x, p_v(x))``, i.e. a palette of ``q²`` colors.

Each iteration costs one round and maps ``k -> q² ≈ max(d*Δ, k^{1/(d+1)})²``;
iterating reaches a fixed point of size O(Δ²) after O(log* k) rounds.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graphs.graph import Graph
from repro.local.rounds import RoundLedger
from repro.primitives.numbers import int_to_digits, next_prime

__all__ = ["LinialResult", "linial_coloring", "reduction_schedule"]


@dataclass
class LinialResult:
    """Output of :func:`linial_coloring`.

    ``colors[v]`` is a 0-based color < ``palette``; ``iterations`` is the
    number of reduction rounds executed (the O(log* n) quantity measured by
    experiment E9).
    """

    colors: list[int]
    palette: int
    iterations: int
    rounds: int


def _choose_parameters(k: int, delta: int, max_degree_d: int = 64) -> tuple[int, int]:
    """Pick ``(d, q)`` minimising the new palette ``q²`` for current size k."""
    best: tuple[int, int] | None = None
    for d in range(1, max_degree_d + 1):
        q = next_prime(d * delta + 1)
        # Raise q until polynomials can express all k colors.
        while q ** (d + 1) < k:
            q = next_prime(q + 1)
        if best is None or q < best[1]:
            best = (d, q)
        if q == d * delta + 1 or q <= delta + 2:
            # Larger d can no longer help: q is already at its floor.
            break
    assert best is not None
    return best


def reduction_schedule(n: int, delta: int) -> list[tuple[int, int, int]]:
    """The sequence of ``(k, d, q)`` reductions Linial performs from palette
    ``n`` down to its fixed point.  Exposed for tests and experiment E9
    (it determines the iteration count without touching a graph)."""
    schedule = []
    k = n
    while True:
        d, q = _choose_parameters(k, max(1, delta))
        if q * q >= k:
            break
        schedule.append((k, d, q))
        k = q * q
    return schedule


def _reduce_round_vectorized(graph: Graph, colors: list[int], d: int, q: int):
    """One Linial reduction round as numpy array arithmetic (or ``None``).

    Computes exactly what the scalar loop does — evaluate every node's
    degree-``d`` polynomial over GF(q) at all points, forbid points where a
    neighbour's polynomial agrees, pick the smallest free point — but as a
    handful of (n × q) array operations plus one CSR-aligned reduction over
    the edge endpoints, instead of ~n·q·Δ interpreted steps.  Falls back
    (returns ``None``) without numpy.
    """
    try:
        import numpy as np
    except Exception:  # pragma: no cover - numpy-free environments
        return None
    n = graph.n
    offsets, indices = graph.csr()
    indptr = np.frombuffer(offsets, dtype=np.int32).astype(np.int64)
    dst = np.frombuffer(indices, dtype=np.int32)
    color_arr = np.asarray(colors, dtype=np.int64)
    # Base-q digits are the polynomial coefficients; Horner at all points.
    coeffs = np.empty((d + 1, n), dtype=np.int64)
    tmp = color_arr.copy()
    for j in range(d + 1):
        coeffs[j] = tmp % q
        tmp //= q
    xs = np.arange(q, dtype=np.int64)
    values = np.zeros((n, q), dtype=np.int64)
    for j in range(d, -1, -1):
        values = (values * xs + coeffs[j][:, None]) % q
    # GF(q) values fit in 16 bits for every feasible q; the narrow dtype
    # keeps the (edges × q) comparison temporaries small.
    values = values.astype(np.int16)
    # conflict[v, x] = any neighbour whose polynomial agrees with v's at x.
    conflict = np.zeros((n, q), dtype=bool)
    m = len(dst)
    if m:
        # Chunk by node ranges so the (edges × q) comparison stays bounded;
        # the CSR layout makes each node's edges one contiguous segment, so
        # the per-node OR is a single reduceat over the comparison rows.
        rows_per_chunk = max(1, int(8_000_000 // max(1, q * max(1, m // n))))
        for start in range(0, n, rows_per_chunk):
            stop = min(n, start + rows_per_chunk)
            lo, hi = int(indptr[start]), int(indptr[stop])
            if lo == hi:
                continue
            counts = np.diff(indptr[start : stop + 1]).astype(np.int64)
            src_rel = np.repeat(np.arange(stop - start, dtype=np.int64), counts)
            equal = values[start + src_rel] == values[dst[lo:hi]]
            # reduceat over the nonempty rows only: their segment starts
            # are strictly increasing and < len(equal), so no clamping is
            # needed (clamping a trailing empty row's sentinel would steal
            # the previous row's last edge).  Empty rows keep the zero
            # (conflict-free) default.
            nonempty = np.flatnonzero(counts)
            seg_starts = (indptr[start:stop] - lo).astype(np.int64)[nonempty]
            reduced = np.logical_or.reduceat(equal, seg_starts, axis=0)
            conflict[start + nonempty] = reduced
    free = ~conflict
    chosen_x = free.argmax(axis=1)
    if not free[np.arange(n), chosen_x].all():
        raise AssertionError("no free evaluation point; parameter bug")
    chosen_value = values[np.arange(n), chosen_x]
    return (chosen_x * q + chosen_value).tolist()


def _reduce_round_python(graph: Graph, colors: list[int], d: int, q: int) -> list[int]:
    """One Linial reduction round, pure Python (reference semantics).

    The scalar twin of :func:`_reduce_round_vectorized`: same polynomial
    evaluation over GF(q), same smallest-free-point choice, bit-identical
    output — this is the path the numpy-free CI leg runs.
    """
    n = graph.n
    adj = graph.adj
    new_colors = [0] * n
    # Precompute digit vectors lazily per distinct color.
    digit_cache: dict[int, list[int]] = {}

    def digits_of(color: int) -> list[int]:
        cached = digit_cache.get(color)
        if cached is None:
            cached = int_to_digits(color, q, d + 1)
            digit_cache[color] = cached
        return cached

    eval_cache: dict[tuple[int, int], int] = {}

    def evaluate(color: int, x: int) -> int:
        key = (color, x)
        cached = eval_cache.get(key)
        if cached is None:
            acc = 0
            for coefficient in reversed(digits_of(color)):
                acc = (acc * x + coefficient) % q
            eval_cache[key] = acc
            cached = acc
        return cached

    for v in range(n):
        own_color = colors[v]
        # Distinct neighbour colors suffice (and shrink the inner
        # evaluation loop on graphs with repeated colors).
        neighbor_colors = {colors[u] for u in adj[v]}
        chosen_x = -1
        chosen_value = -1
        for x in range(q):
            own_value = evaluate(own_color, x)
            if all(evaluate(c, x) != own_value for c in neighbor_colors):
                chosen_x = x
                chosen_value = own_value
                break
        if chosen_x < 0:
            raise AssertionError("no free evaluation point; parameter bug")
        new_colors[v] = chosen_x * q + chosen_value
    return new_colors


def linial_coloring(
    graph: Graph,
    ledger: RoundLedger | None = None,
    max_iterations: int = 200,
) -> LinialResult:
    """Compute an O(Δ²) coloring of ``graph`` in O(log* n) rounds.

    The initial coloring is the identity (node ids), palette ``n``; each
    iteration performs one synchronous exchange of colors and reduces the
    palette as described in the module docstring.  The returned palette is
    the fixed point q² for the smallest usable prime q (for Δ >= 2 this is
    at most ``(2Δ + O(1))² = O(Δ²)``).  Rounds on graphs above a small size
    threshold run through the vectorized fast path (bit-identical output).
    """
    ledger = ledger if ledger is not None else RoundLedger()
    n = graph.n
    delta = max(1, graph.max_degree())
    colors = list(range(n))
    k = max(n, 2)
    iterations = 0
    while iterations < max_iterations:
        d, q = _choose_parameters(k, delta)
        if q * q >= k:
            break
        iterations += 1
        ledger.charge(1)  # exchange current colors with all neighbours
        if n >= 512:
            reduced = _reduce_round_vectorized(graph, colors, d, q)
            if reduced is not None:
                colors = reduced
                k = q * q
                continue
        colors = _reduce_round_python(graph, colors, d, q)
        k = q * q
    return LinialResult(colors=colors, palette=k, iterations=iterations, rounds=iterations)
