"""(deg+1)-list coloring engines (Theorems 18 and 19 of the paper).

Every layer-coloring step of the paper ("color layer B_i / C_i / D_i while
respecting already-colored neighbours") is a (deg+1)-list coloring
instance: each node's list is {1..Δ} minus the colors of its already
colored neighbours, and having an uncolored neighbour in the next layer
guarantees |L(v)| >= deg(v)+1 within the layer.

Lists are therefore *implicit* here: callers pass the global (partial)
color array and the target node set; available colors are recomputed from
the live neighbourhood each time.  Three engines:

* :func:`list_coloring_random` — iterated random trials; every uncolored
  node proposes a uniformly random available color, conflicting proposals
  are dropped.  O(log n) iterations w.h.p.  This is the engine inside the
  Panconesi–Srinivasan baseline (its O(log n)-per-layer cost is what the
  paper improves on).
* :func:`list_coloring_hybrid` — the [Gha16] / Theorem 19 shape: O(log Δ)
  + O(1) trial rounds, then the (w.h.p. tiny) leftover components are
  finished by gathering, charging the max component cost (components are
  disjoint and finish concurrently in LOCAL).
* :func:`list_coloring_deterministic` — the Theorem 18 substitute: iterate
  the color classes of a proper O(Δ²) base coloring; each class is an
  independent set, so all its nodes can greedily commit simultaneously.
  Exactly ``palette`` rounds, independent of n.  (The paper's
  O(√Δ log Δ log*Δ) algorithm [FHK16+BEG17] is a major standalone project;
  DESIGN.md §4.1 documents why this substitution preserves the properties
  the layering technique needs.)

All engines mutate ``colors`` in place and validate the deg+1 precondition
in ``strict`` mode.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.errors import AlgorithmContractError, InfeasibleListColoringError
from repro.graphs.bfs import bfs_distances
from repro.graphs.graph import Graph
from repro.graphs.validation import UNCOLORED
from repro.local.rounds import RoundLedger

__all__ = [
    "ListColoringStats",
    "available_colors",
    "list_coloring_random",
    "list_coloring_hybrid",
    "list_coloring_deterministic",
    "greedy_color_sequential",
]


@dataclass
class ListColoringStats:
    """Execution statistics of a list-coloring call.

    ``iterations`` counts trial/class rounds; ``gather_rounds`` is the cost
    of the component-gathering finisher (hybrid engine only);
    ``leftover_after_trials`` is how many nodes the trials left uncolored.
    """

    iterations: int = 0
    gather_rounds: int = 0
    leftover_after_trials: int = 0


def available_colors(
    graph: Graph, colors: list[int], v: int, max_colors: int
) -> list[int]:
    """Colors in 1..max_colors not used by any colored neighbour of v."""
    taken = {colors[u] for u in graph.adj[v]}
    return [c for c in range(1, max_colors + 1) if c not in taken]


def _check_deg_plus_one(
    graph: Graph, colors: list[int], targets: set[int], max_colors: int
) -> None:
    """Strict-mode precondition: every target has more available colors
    than uncolored target neighbours (the deg+1 property on the induced
    instance)."""
    for v in targets:
        if colors[v] != UNCOLORED:
            continue
        uncolored_neighbors = sum(
            1 for u in graph.adj[v] if u in targets and colors[u] == UNCOLORED
        )
        if len(available_colors(graph, colors, v, max_colors)) < uncolored_neighbors + 1:
            raise AlgorithmContractError(
                f"node {v} violates the deg+1 list property: "
                f"{len(available_colors(graph, colors, v, max_colors))} colors for "
                f"{uncolored_neighbors} uncolored neighbours"
            )


def list_coloring_random(
    graph: Graph,
    colors: list[int],
    targets: set[int],
    max_colors: int,
    ledger: RoundLedger | None = None,
    rng: random.Random | None = None,
    max_iterations: int | None = None,
    strict: bool = False,
) -> ListColoringStats:
    """Randomized trials until every target is colored (or the cap hits).

    One iteration = one synchronous round: propose, compare with
    neighbours, commit conflict-free proposals.  All of a round's
    randomness comes from a single ``rng.randbytes`` draw (one 64-bit key
    per live node, in ascending node order); node ``v`` proposes its
    ``key % |options|``-th smallest available color.  The round itself
    runs vectorized over the CSR buffers when numpy is available, with a
    bit-identical pure-Python fallback — both consume the same entropy
    and commit the same colors.  Returns statistics; any nodes still
    uncolored after ``max_iterations`` are simply left uncolored for the
    caller (used by the hybrid engine).
    """
    ledger = ledger if ledger is not None else RoundLedger()
    rng = rng if rng is not None else random.Random(0)
    if strict:
        _check_deg_plus_one(graph, colors, targets, max_colors)
    stats = ListColoringStats()
    uncolored = sorted(v for v in targets if colors[v] == UNCOLORED)
    try:
        import numpy as np
    except Exception:  # pragma: no cover - numpy-free environments
        np = None
    state = None
    while uncolored:
        if max_iterations is not None and stats.iterations >= max_iterations:
            break
        stats.iterations += 1
        ledger.charge(1)
        buf = rng.randbytes(8 * len(uncolored))
        if np is not None and len(uncolored) >= 64:
            if state is None:
                state = _VectorRoundState(graph, colors, np)
            uncolored = state.run_round(uncolored, buf, max_colors)
        else:
            uncolored = _python_trial_round(
                graph, colors, uncolored, buf, max_colors
            )
    stats.leftover_after_trials = len(uncolored)
    return stats


def _python_trial_round(
    graph: Graph,
    colors: list[int],
    uncolored: list[int],
    buf: bytes,
    max_colors: int,
) -> list[int]:
    """One propose/compare/commit round, pure Python.

    Returns the still-uncolored nodes (ascending).  Must stay
    bit-identical to :meth:`_VectorRoundState.run_round`.
    """
    adj = graph.adj
    proposals: dict[int, int] = {}
    for pos, v in enumerate(uncolored):
        # Inline available_colors: this is the innermost loop of every
        # randomized layer-coloring phase.
        taken = {colors[u] for u in adj[v]}
        options = [c for c in range(1, max_colors + 1) if c not in taken]
        if not options:
            raise InfeasibleListColoringError(
                f"node {v} has no available color (caller violated deg+1)"
            )
        key = int.from_bytes(buf[8 * pos : 8 * pos + 8], "little")
        proposals[v] = options[key % len(options)]
    leftover = []
    for v in uncolored:
        mine = proposals[v]
        if all(proposals.get(u) != mine for u in adj[v]):
            colors[v] = mine
        else:
            leftover.append(v)
    return leftover


class _VectorRoundState:
    """Per-call scratch of the vectorized trial rounds.

    Keeps a numpy mirror of the color array (updated incrementally as
    rounds commit) and a full-length proposal array, so each round only
    does O(volume of the live set) work.
    """

    __slots__ = ("np", "graph", "colors", "offsets", "indices", "colors_np", "props")

    def __init__(self, graph: Graph, colors: list[int], np):
        self.np = np
        self.graph = graph
        self.colors = colors
        offsets, indices = graph.csr()
        self.offsets = np.frombuffer(offsets, dtype=np.int32)
        self.indices = np.frombuffer(indices, dtype=np.int32)
        self.colors_np = np.array(colors, dtype=np.int64)
        self.props = np.zeros(graph.n, dtype=np.int64)

    def run_round(
        self, uncolored: list[int], buf: bytes, max_colors: int
    ) -> list[int]:
        """Numpy twin of :func:`_python_trial_round` (bit-identical).

        The proposal phase works on the (live × palette) availability
        matrix in row chunks bounded by a cell budget, so peak scratch
        stays O(budget) however large the palette — the per-node Python
        loop this replaces only ever needed O(Δ) scratch, and a huge-Δ
        layer must not trade that for gigabyte temporaries.
        """
        np = self.np
        live = np.asarray(uncolored, dtype=np.int64)
        keys = np.frombuffer(buf, dtype="<u8")
        chosen = np.empty(len(live), dtype=np.int64)
        chunk = max(1, 4_000_000 // (max_colors + 1))
        for lo in range(0, len(live), chunk):
            hi = min(len(live), lo + chunk)
            self._propose(live[lo:hi], keys[lo:hi], max_colors, chosen[lo:hi])
        self.props[live] = chosen
        # Conflict: any neighbour proposing the same color (non-proposers
        # hold 0, which never equals a 1-based proposal).
        nbrs, lens, bounds = self._neighbour_rows(live)
        same = np.concatenate(
            ([0], np.cumsum(self.props[nbrs] == np.repeat(chosen, lens)))
        )
        conflicted = (same[bounds[1:]] - same[bounds[:-1]]) > 0
        committed = live[~conflicted]
        committed_colors = chosen[~conflicted]
        self.props[live] = 0
        self.colors_np[committed] = committed_colors
        colors = self.colors
        for v, c in zip(committed.tolist(), committed_colors.tolist()):
            colors[v] = c
        return live[conflicted].tolist()

    def _neighbour_rows(self, live):
        """Concatenated CSR neighbour rows of ``live`` plus row geometry."""
        np = self.np
        starts = self.offsets[live]
        lens = (self.offsets[live + 1] - starts).astype(np.int64)
        bounds = np.concatenate(([0], np.cumsum(lens)))
        flat = (
            np.arange(int(bounds[-1]), dtype=np.int64)
            - np.repeat(bounds[:-1], lens)
            + np.repeat(starts.astype(np.int64), lens)
        )
        return self.indices[flat].astype(np.int64), lens, bounds

    def _propose(self, live, keys, max_colors: int, out) -> None:
        """Fill ``out`` with each live node's proposed color."""
        np = self.np
        nbrs, lens, _ = self._neighbour_rows(live)
        rows = np.repeat(np.arange(len(live), dtype=np.int64), lens)
        # forbidden[i, c]: some neighbour of live[i] wears color c
        # (column 0 soaks up UNCOLORED and out-of-palette neighbours —
        # colors beyond max_colors exclude nothing, as in the fallback).
        forbidden = np.zeros((len(live), max_colors + 1), dtype=bool)
        ncolors = self.colors_np[nbrs]
        forbidden[rows, np.where(ncolors > max_colors, 0, ncolors)] = True
        avail = ~forbidden[:, 1:]
        counts = avail.sum(axis=1)
        if not counts.all():
            v = int(live[int(np.argmin(counts != 0))])
            raise InfeasibleListColoringError(
                f"node {v} has no available color (caller violated deg+1)"
            )
        picks = (keys % counts.astype(np.uint64)).astype(np.int32)
        # Proposal = the picks[i]-th smallest available color: the column
        # where the running count of available colors first hits picks+1.
        rank = np.cumsum(avail, axis=1, dtype=np.int32)
        out[:] = np.argmax(avail & (rank == (picks + 1)[:, None]), axis=1) + 1


def list_coloring_hybrid(
    graph: Graph,
    colors: list[int],
    targets: set[int],
    max_colors: int,
    ledger: RoundLedger | None = None,
    rng: random.Random | None = None,
    trial_budget: int | None = None,
    strict: bool = False,
) -> ListColoringStats:
    """Theorem 19-shaped engine: O(log Δ) trials, then gather the leftovers.

    After ``trial_budget = 2·⌈log₂(Δ+1)⌉ + 4`` trial rounds (default) the
    uncolored remainder shatters into small components w.h.p.; each
    component is finished by leader-gathering (greedy works in any order
    thanks to deg+1 lists).  Components are disjoint, so their finishing
    costs are charged as a max, not a sum.
    """
    ledger = ledger if ledger is not None else RoundLedger()
    rng = rng if rng is not None else random.Random(0)
    delta = max(1, graph.max_degree())
    if trial_budget is None:
        trial_budget = 2 * math.ceil(math.log2(delta + 1)) + 4
    stats = list_coloring_random(
        graph, colors, targets, max_colors, ledger, rng,
        max_iterations=trial_budget, strict=strict,
    )
    leftovers = [v for v in targets if colors[v] == UNCOLORED]
    stats.leftover_after_trials = len(leftovers)
    if leftovers:
        stats.gather_rounds = _finish_by_gathering(
            graph, colors, leftovers, max_colors, ledger
        )
    return stats


def _finish_by_gathering(
    graph: Graph,
    colors: list[int],
    leftovers: list[int],
    max_colors: int,
    ledger: RoundLedger,
) -> int:
    """Solve each uncolored component by gathering it at its min-id leader.

    Rounds: 2·(component radius) + 1 per component, charged as the max over
    components (they run concurrently).  Greedy in any order is always
    feasible because the instance is deg+1 (see module docstring).
    """
    leftover_set = set(leftovers)
    components = _uncolored_components(graph, leftover_set)
    costs = []
    for component in components:
        radius = _component_radius(graph, component, leftover_set)
        costs.append(2 * radius + 1)
        greedy_color_sequential(graph, colors, component, max_colors)
    ledger.charge_max(costs)
    return max(costs, default=0)


def _uncolored_components(graph: Graph, member_set: set[int]) -> list[list[int]]:
    """Connected components of the subgraph induced by ``member_set``."""
    seen: set[int] = set()
    components = []
    for start in member_set:
        if start in seen:
            continue
        seen.add(start)
        stack = [start]
        component = [start]
        while stack:
            u = stack.pop()
            for w in graph.adj[u]:
                if w in member_set and w not in seen:
                    seen.add(w)
                    stack.append(w)
                    component.append(w)
        components.append(component)
    return components


def _component_radius(graph: Graph, component: list[int], member_set: set[int]) -> int:
    """Eccentricity of the min-id leader within the component."""
    leader = min(component)
    dist = bfs_distances(graph, [leader], allowed=member_set)
    return max(dist[v] for v in component)


def list_coloring_deterministic(
    graph: Graph,
    colors: list[int],
    targets: set[int],
    max_colors: int,
    base_colors: list[int],
    palette: int,
    ledger: RoundLedger | None = None,
    strict: bool = False,
) -> ListColoringStats:
    """Deterministic engine: iterate base-coloring color classes.

    Round j: every uncolored target whose base color is j picks its
    smallest available color; base color classes are independent sets, so
    simultaneous commits never conflict.  Exactly ``palette`` rounds.
    """
    ledger = ledger if ledger is not None else RoundLedger()
    if strict:
        _check_deg_plus_one(graph, colors, targets, max_colors)
    stats = ListColoringStats()
    pending = [v for v in targets if colors[v] == UNCOLORED]
    by_class: dict[int, list[int]] = {}
    for v in pending:
        by_class.setdefault(base_colors[v], []).append(v)
    for color_class in range(palette):
        stats.iterations += 1
        ledger.charge(1)
        for v in by_class.get(color_class, ()):
            options = available_colors(graph, colors, v, max_colors)
            if not options:
                raise InfeasibleListColoringError(
                    f"node {v} has no available color (caller violated deg+1)"
                )
            colors[v] = options[0]
    return stats


def greedy_color_sequential(
    graph: Graph,
    colors: list[int],
    nodes: list[int],
    max_colors: int,
    order: list[int] | None = None,
) -> None:
    """Centralized greedy over ``nodes`` (any order is feasible for deg+1
    instances); the work-horse inside every gathering-based finisher."""
    sequence = order if order is not None else sorted(nodes)
    for v in sequence:
        if colors[v] != UNCOLORED:
            continue
        options = available_colors(graph, colors, v, max_colors)
        if not options:
            raise InfeasibleListColoringError(
                f"node {v} has no available color in greedy finisher"
            )
        colors[v] = options[0]
