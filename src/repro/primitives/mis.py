"""Maximal independent set algorithms: Luby [Lub86] and Ghaffari [Gha16].

MIS is the engine behind every ruling-set computation in the paper
(Lemma 20): an MIS of the power graph G^k is exactly a (k+1, k)-ruling set.
Two randomized algorithms are provided:

* **Luby's algorithm** — per iteration every undecided node draws a random
  priority; local maxima join the MIS, their neighbours drop out.
  O(log n) iterations w.h.p.; this is the baseline engine and also the
  per-layer engine inside the Panconesi–Srinivasan baseline.
* **Ghaffari's algorithm** — per-node *desire levels* p_t(v) that halve
  when the neighbourhood is too eager (effective degree >= 2) and double
  otherwise; marked nodes with no marked neighbour join.  Gives the
  per-node O(log Δ + log 1/ε) guarantee that Lemma 20(4) cites, which is
  what makes the large-Δ randomized algorithm's ruling-set phase cost
  O(log Δ)-ish instead of O(log n).

Both run on an ``active`` node subset (induced subgraph semantics) and both
have *power-graph* variants that simulate one virtual round on G^k by k
real rounds of limited flooding — this is how the paper's algorithms
compute ruling sets of G_DCC and of component power graphs without ever
materialising the power graph.

A straggler cutoff is exposed: after ``max_iterations`` the few undecided
nodes (w.h.p. none for Luby run to its natural end) are returned so the
caller can finish them deterministically — the paper does the same via its
shattering arguments.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.graphs.graph import Graph
from repro.local.network import NodeContext
from repro.local.rounds import RoundLedger

__all__ = [
    "MISResult",
    "luby_mis",
    "ghaffari_mis",
    "power_graph_mis",
    "LubyProgram",
    "greedy_mis_from_coloring",
]

UNDECIDED, IN_MIS, OUT = 0, 1, 2


@dataclass
class MISResult:
    """Result of an MIS computation.

    ``in_set`` is the independent set; ``undecided`` lists stragglers that
    hit the iteration cap (empty when run to completion); ``iterations`` is
    the number of engine iterations executed.
    """

    in_set: set[int]
    undecided: set[int]
    iterations: int


def _validate_active(graph: Graph, active: set[int] | None) -> set[int]:
    return set(range(graph.n)) if active is None else set(active)


def luby_mis(
    graph: Graph,
    ledger: RoundLedger | None = None,
    rng: random.Random | None = None,
    active: set[int] | None = None,
    max_iterations: int | None = None,
) -> MISResult:
    """Luby's MIS on the subgraph induced by ``active``.

    Charges 2 rounds per iteration (priority exchange + join notification).
    Runs to completion unless ``max_iterations`` is given.
    """
    ledger = ledger if ledger is not None else RoundLedger()
    rng = rng if rng is not None else random.Random(0)
    live = _validate_active(graph, active)
    in_set: set[int] = set()
    adj = graph.adj
    iterations = 0
    while live and (max_iterations is None or iterations < max_iterations):
        iterations += 1
        ledger.charge(2)
        priority = {v: (rng.random(), v) for v in live}
        joiners = [
            v
            for v in live
            if all(priority[v] > priority[u] for u in adj[v] if u in live)
        ]
        for v in joiners:
            in_set.add(v)
        removed = set(joiners)
        for v in joiners:
            for u in adj[v]:
                if u in live:
                    removed.add(u)
        live -= removed
    return MISResult(in_set=in_set, undecided=live, iterations=iterations)


def ghaffari_mis(
    graph: Graph,
    ledger: RoundLedger | None = None,
    rng: random.Random | None = None,
    active: set[int] | None = None,
    max_iterations: int | None = None,
) -> MISResult:
    """Ghaffari's MIS (desire levels) on the subgraph induced by ``active``.

    Per iteration: node v marks itself with probability p_t(v); a marked
    node with no marked (undecided) neighbour joins the MIS and its
    neighbours drop out.  Desire update: p_{t+1}(v) = p_t(v)/2 if the
    *effective degree* d_t(v) = Σ_{u∈N(v)} p_t(u) is >= 2, else
    min(2·p_t(v), 1/2).  Charges 2 rounds per iteration.

    With ``max_iterations = O(log Δ + log 1/ε)`` each node is decided with
    probability 1-ε; stragglers are returned in ``undecided`` for the
    caller's deterministic finisher, mirroring the shattering structure of
    [Gha16] that Lemma 20(4) relies on.
    """
    ledger = ledger if ledger is not None else RoundLedger()
    rng = rng if rng is not None else random.Random(0)
    live = _validate_active(graph, active)
    desire = {v: 0.5 for v in live}
    in_set: set[int] = set()
    adj = graph.adj
    iterations = 0
    while live and (max_iterations is None or iterations < max_iterations):
        iterations += 1
        ledger.charge(2)
        marked = {v for v in live if rng.random() < desire[v]}
        joiners = [v for v in marked if not any(u in marked for u in adj[v] if u in live)]
        effective = {
            v: sum(desire[u] for u in adj[v] if u in live) for v in live
        }
        for v in live:
            if effective[v] >= 2.0:
                desire[v] = desire[v] / 2
            else:
                desire[v] = min(2 * desire[v], 0.5)
        for v in joiners:
            in_set.add(v)
        removed = set(joiners)
        for v in joiners:
            for u in adj[v]:
                if u in live:
                    removed.add(u)
        live -= removed
        for v in removed:
            desire.pop(v, None)
    return MISResult(in_set=in_set, undecided=live, iterations=iterations)


def power_graph_mis(
    graph: Graph,
    k: int,
    ledger: RoundLedger | None = None,
    rng: random.Random | None = None,
    active: set[int] | None = None,
    max_iterations: int | None = None,
    method: str = "luby",
) -> MISResult:
    """MIS of the power graph G^k restricted to ``active`` — i.e. a
    (k+1, k)-ruling set of the active set, Lemma 20's randomized engine.

    One virtual iteration = one priority draw + a depth-k flood computing,
    for every active node, the maximum priority among active nodes within
    distance k (k real rounds), plus a depth-k removal flood (k rounds):
    2k rounds per iteration are charged.

    Distances are measured **in G itself** (through inactive relay nodes),
    matching how the paper's virtual graphs are simulated ("one round of a
    distributed algorithm in G_DCC can be simulated in O(r) rounds in G").
    ``method`` selects Luby priorities (default) or Ghaffari desire levels.
    """
    if k == 1:
        engine = luby_mis if method == "luby" else ghaffari_mis
        return engine(graph, ledger, rng, active, max_iterations)
    ledger = ledger if ledger is not None else RoundLedger()
    rng = rng if rng is not None else random.Random(0)
    live = _validate_active(graph, active)
    in_set: set[int] = set()
    adj = graph.adj
    n = graph.n
    iterations = 0
    desire = {v: 0.5 for v in live} if method == "ghaffari" else None
    while live and (max_iterations is None or iterations < max_iterations):
        iterations += 1
        ledger.charge(2 * k)
        if desire is None:
            contenders = live
            priority = {v: (rng.random(), v) for v in live}
        else:
            contenders = {v for v in live if rng.random() < desire[v]}
            priority = {v: (rng.random(), v) for v in contenders}
        # Depth-k relaxation of max priority (relays through any node of G).
        best: list[tuple[float, int] | None] = [None] * n
        for v in contenders:
            best[v] = priority[v]
        for _ in range(k):
            new_best = list(best)
            for u in range(n):
                bu = new_best[u]
                for w in adj[u]:
                    bw = best[w]
                    if bw is not None and (bu is None or bw > bu):
                        bu = bw
                new_best[u] = bu
            best = new_best
        joiners = [v for v in contenders if best[v] == priority[v]]
        if desire is not None:
            # Effective degree in the virtual graph: sum of desires within k.
            load = [0.0] * n
            for v in live:
                load[v] = desire[v]
            for _ in range(k):
                new_load = list(load)
                for u in range(n):
                    acc = new_load[u]
                    for w in adj[u]:
                        acc = max(acc, load[w])
                    new_load[u] = acc
                load = new_load
            # A coarse proxy: treat the max desire within k as the
            # congestion signal.  (The exact Σ over the k-ball is costlier
            # to simulate; max-based backoff preserves the doubling/halving
            # dynamics and the O(log Δ)-type convergence in practice.)
            for v in live:
                if load[v] >= 1.0 and load[v] != desire[v]:
                    desire[v] = desire[v] / 2
                else:
                    desire[v] = min(2 * desire[v], 0.5)
        removed = set(joiners)
        if joiners:
            frontier = set(joiners)
            for _ in range(k):
                nxt = set()
                for u in frontier:
                    for w in adj[u]:
                        if w not in removed:
                            removed.add(w)
                            nxt.add(w)
                frontier = nxt
        in_set.update(joiners)
        live -= removed
        if desire is not None:
            for v in removed:
                desire.pop(v, None)
    return MISResult(in_set=in_set, undecided=live, iterations=iterations)


def greedy_mis_from_coloring(
    graph: Graph,
    base_colors: list[int],
    palette: int,
    ledger: RoundLedger | None = None,
    active: set[int] | None = None,
) -> MISResult:
    """Deterministic MIS by iterating over the color classes of a proper
    base coloring: class by class, every node with no MIS neighbour joins.

    Takes exactly ``palette`` rounds — the classic
    "coloring -> MIS in palette rounds" reduction, used where the paper
    wants deterministic symmetry breaking after Linial.
    """
    ledger = ledger if ledger is not None else RoundLedger()
    live = _validate_active(graph, active)
    in_set: set[int] = set()
    blocked: set[int] = set()
    adj = graph.adj
    # Bucket the active nodes by class once: a color class is an
    # independent set, so join decisions within one class are
    # order-independent and the per-class scan need not revisit all of
    # ``live`` (palette is O(Δ²) — the historical palette × live scan
    # dominated this finisher on large graphs).
    by_class: dict[int, list[int]] = {}
    for v in live:
        by_class.setdefault(base_colors[v], []).append(v)
    for color_class in range(palette):
        ledger.charge(1)
        for v in by_class.get(color_class, ()):
            if v not in blocked:
                in_set.add(v)
                blocked.add(v)
                for u in adj[v]:
                    blocked.add(u)
    return MISResult(in_set=in_set, undecided=set(), iterations=palette)


class LubyProgram:
    """Luby's MIS as a :class:`NodeProgram` for the message-passing engine.

    Functionally identical to :func:`luby_mis`; exists to exercise the
    faithful synchronous engine and to pin (in tests) that the vectorised
    implementation charges the same number of rounds per iteration.
    State protocol: phase alternates between "bid" (send priority) and
    "resolve" (send join/out decision).
    """

    def __init__(self, seed: int = 0):
        self.seed = seed

    def start(self, ctx: NodeContext) -> None:
        ctx.state["rng"] = random.Random((self.seed << 20) ^ ctx.node)
        ctx.state["status"] = UNDECIDED
        ctx.state["phase"] = "bid"
        ctx.state["live_neighbors"] = set(ctx.neighbors)

    def message(self, ctx: NodeContext, round_index: int):
        if ctx.state["phase"] == "bid":
            ctx.state["priority"] = (ctx.state["rng"].random(), ctx.node)
            return ("bid", ctx.state["priority"])
        return ("decision", ctx.state["status"])

    def receive(self, ctx: NodeContext, round_index: int, inbox) -> bool:
        if ctx.state["phase"] == "bid":
            mine = ctx.state["priority"]
            bids = [
                payload
                for sender, (kind, payload) in inbox.items()
                if kind == "bid" and sender in ctx.state["live_neighbors"]
            ]
            if all(mine > bid for bid in bids):
                ctx.state["status"] = IN_MIS
            ctx.state["phase"] = "resolve"
            return False
        # Resolve phase: a neighbour joining knocks this node out.
        for sender, (kind, payload) in inbox.items():
            if kind == "decision" and payload == IN_MIS:
                if ctx.state["status"] != IN_MIS:
                    ctx.state["status"] = OUT
            if kind == "decision" and payload in (IN_MIS, OUT):
                ctx.state["live_neighbors"].discard(sender)
        ctx.state["phase"] = "bid"
        return ctx.state["status"] != UNDECIDED

    @staticmethod
    def extract(contexts: dict[int, NodeContext]) -> set[int]:
        """Nodes that joined the MIS after a run."""
        return {v for v, ctx in contexts.items() if ctx.state["status"] == IN_MIS}
