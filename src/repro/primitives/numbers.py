"""Small number-theoretic helpers for Linial's color-reduction step.

Linial's algorithm evaluates polynomials over GF(q) for a prime q; the
primes involved are tiny (O(Δ log n)), so trial division is plenty.
"""

from __future__ import annotations

__all__ = ["is_prime", "next_prime", "int_to_digits", "ilog_star"]


def is_prime(x: int) -> bool:
    """Primality by trial division (inputs here are O(Δ log n))."""
    if x < 2:
        return False
    if x < 4:
        return True
    if x % 2 == 0:
        return False
    f = 3
    while f * f <= x:
        if x % f == 0:
            return False
        f += 2
    return True


def next_prime(x: int) -> int:
    """Smallest prime >= x."""
    candidate = max(2, x)
    while not is_prime(candidate):
        candidate += 1
    return candidate


def int_to_digits(value: int, base: int, length: int) -> list[int]:
    """Base-``base`` digits of ``value``, least significant first, padded to
    ``length`` digits.  These are the polynomial coefficients in Linial's
    reduction (a color c < q^(d+1) becomes a degree-<=d polynomial)."""
    digits = []
    for _ in range(length):
        digits.append(value % base)
        value //= base
    if value:
        raise ValueError("value does not fit in the requested digit count")
    return digits


def ilog_star(x: float) -> int:
    """Iterated logarithm log* (base 2); used only in benchmark reporting."""
    count = 0
    while x > 1.0:
        import math

        x = math.log2(x)
        count += 1
    return count
