"""Additional node programs for the faithful message-passing engine.

The vectorised primitives in this package simulate synchronous rounds
with global data structures for speed; these :class:`NodeProgram`
implementations run the same logic through the real per-node engine
(:class:`repro.local.network.SyncNetwork`).  The test suite pins the two
styles against each other — same outputs under the same randomness
discipline, same rounds-per-iteration accounting — which is the evidence
that the fast path is a faithful LOCAL simulation.
"""

from __future__ import annotations

import random
from typing import Any

from repro.local.network import NodeContext

__all__ = ["TrialColoringProgram", "LayerDiscoveryProgram"]


class TrialColoringProgram:
    """Randomized (deg+1)-list coloring as a genuine node program.

    Protocol per iteration (two engine rounds):
    ``propose``: every uncolored node broadcasts a uniformly random color
    from {1..max_colors} minus its neighbours' committed colors;
    ``resolve``: nodes whose proposal conflicts with no neighbour's
    proposal commit and broadcast the commitment.

    ``extract`` returns the committed colors; the engine's round count is
    2 × iterations, matching ``list_coloring_random``'s 1-round-per-trial
    accounting up to the constant the two protocols genuinely differ by
    (the vectorised engine piggybacks commitment on the next proposal).
    """

    def __init__(self, max_colors: int, seed: int = 0):
        self.max_colors = max_colors
        self.seed = seed

    def start(self, ctx: NodeContext) -> None:
        ctx.state["rng"] = random.Random((self.seed << 24) ^ (ctx.node * 2654435761 % (1 << 31)))
        ctx.state["color"] = 0
        ctx.state["neighbor_colors"] = {}
        ctx.state["phase"] = "propose"

    def message(self, ctx: NodeContext, round_index: int) -> Any:
        if ctx.state["phase"] == "propose":
            taken = set(ctx.state["neighbor_colors"].values())
            options = [c for c in range(1, self.max_colors + 1) if c not in taken]
            ctx.state["proposal"] = ctx.state["rng"].choice(options)
            return ("propose", ctx.state["proposal"])
        return ("commit", ctx.state["color"])

    def receive(self, ctx: NodeContext, round_index: int, inbox: dict[int, Any]) -> bool:
        if ctx.state["phase"] == "propose":
            mine = ctx.state["proposal"]
            conflict = any(
                kind == "propose" and value == mine for kind, value in inbox.values()
            )
            if not conflict:
                ctx.state["color"] = mine
            ctx.state["phase"] = "resolve"
            return False
        for sender, (kind, value) in inbox.items():
            if kind == "commit" and value:
                ctx.state["neighbor_colors"][sender] = value
        ctx.state["phase"] = "propose"
        return ctx.state["color"] != 0

    @staticmethod
    def extract(contexts: dict[int, NodeContext]) -> dict[int, int]:
        """Committed colors after a run."""
        return {v: ctx.state["color"] for v, ctx in contexts.items()}


class LayerDiscoveryProgram:
    """Distributed distance-layer computation (the layering technique's
    BFS, phase (3)/(5), as an actual flood).

    Base nodes start at distance 0; every node adopts 1 + min neighbour
    distance heard so far and halts once its value is stable for one
    round after its first assignment (BFS floods assign final values on
    first receipt in unweighted graphs).
    """

    def __init__(self, base: set[int]):
        self.base = base

    def start(self, ctx: NodeContext) -> None:
        ctx.state["dist"] = 0 if ctx.node in self.base else None
        ctx.state["announced"] = False

    def message(self, ctx: NodeContext, round_index: int) -> Any:
        if ctx.state["dist"] is not None and not ctx.state["announced"]:
            ctx.state["announced"] = True
            return ("dist", ctx.state["dist"])
        return None

    def receive(self, ctx: NodeContext, round_index: int, inbox: dict[int, Any]) -> bool:
        if ctx.state["dist"] is None:
            incoming = [value for kind, value in inbox.values() if kind == "dist"]
            if incoming:
                ctx.state["dist"] = min(incoming) + 1
            return False
        return ctx.state["announced"]

    @staticmethod
    def extract(contexts: dict[int, NodeContext]) -> dict[int, int | None]:
        """Distances after a run (None = unreached)."""
        return {v: ctx.state["dist"] for v, ctx in contexts.items()}
