"""Ruling sets (Lemma 20): the paper's base-layer selection machinery.

An (α, β)-ruling set of a node set W in G is M ⊆ W with every two nodes of
M at distance >= α and every node of W within distance β of M.  The paper
uses four variants (Lemma 20); this module provides the engines we
substitute for them (see DESIGN.md §4 for the substitution table):

* :func:`ruling_forest_aglp` — deterministic (k, (k-1)·⌈log₂ n⌉) ruling set
  in (k-1)·⌈log₂ n⌉ rounds by the classic Awerbuch–Goldberg–Luby–Plotkin
  bit recursion over identifiers (substitute for Lemma 20(2) [SEW13]).
* :func:`ruling_set_random` — randomized (k+1, k)-ruling set via MIS of the
  power graph G^k (Luby or Ghaffari engine; substitute for Lemma 20(3)/(4)).
* :func:`ruling_set_from_coloring` — deterministic (2, 1) ruling set (an
  MIS) in ``palette`` rounds from a base coloring (substitute for
  Lemma 20(1) on bounded-degree graphs).

All results are checked by :func:`verify_ruling_set` in tests and strict
mode.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.graphs.bfs import bfs_distances
from repro.graphs.graph import Graph
from repro.local.rounds import RoundLedger
from repro.primitives.mis import greedy_mis_from_coloring, power_graph_mis

__all__ = [
    "RulingSetResult",
    "ruling_forest_aglp",
    "ruling_set_random",
    "ruling_set_from_coloring",
    "verify_ruling_set",
]


@dataclass
class RulingSetResult:
    """A ruling set together with its guaranteed parameters.

    ``alpha``/``beta`` are the *guaranteed* independence/domination bounds;
    the measured values (often better) are what experiment E8 tabulates.
    """

    nodes: set[int]
    alpha: int
    beta: int
    rounds: int


def ruling_forest_aglp(
    graph: Graph,
    k: int,
    ledger: RoundLedger | None = None,
    members: set[int] | None = None,
) -> RulingSetResult:
    """Deterministic (k, (k-1)·⌈log₂ n⌉) ruling set by AGLP bit recursion.

    Recursion on identifier bits: split the member set by the current bit,
    compute ruling sets of both halves in parallel, then keep from the
    1-half only nodes at distance >= k (in G) from the 0-half's set.
    Each merge level costs k-1 rounds (a depth-(k-1) BFS flood from the
    0-half ruling set); sibling merges at the same level run concurrently
    in LOCAL, so the total is (k-1)·⌈log₂ n⌉ rounds.

    Distances are measured in G (floods may relay through non-member
    nodes), which matches the paper's usage: the ruling *forest* of
    Theorem 4 spans the whole graph, and the ruling sets of virtual graphs
    (G_DCC) measure distance through the underlying network.
    """
    ledger = ledger if ledger is not None else RoundLedger()
    member_set = set(range(graph.n)) if members is None else set(members)
    if not member_set:
        return RulingSetResult(nodes=set(), alpha=k, beta=0, rounds=0)
    bits = max(1, (max(member_set)).bit_length())
    merge_rounds_per_level = max(0, k - 1)
    ledger.charge(merge_rounds_per_level * bits)

    def recurse(nodes: list[int], bit: int) -> set[int]:
        if len(nodes) <= 1:
            return set(nodes)
        if bit < 0:
            # Identifiers are unique, so this is unreachable for bit >= 0
            # recursion from the full id width; guard anyway.
            return {min(nodes)}
        zeros = [v for v in nodes if not (v >> bit) & 1]
        ones = [v for v in nodes if (v >> bit) & 1]
        r_zero = recurse(zeros, bit - 1)
        r_one = recurse(ones, bit - 1)
        if not r_zero:
            return r_one
        if not r_one:
            return r_zero
        dist = bfs_distances(graph, r_zero, max_depth=k - 1)
        kept = {v for v in r_one if dist[v] == -1}
        return r_zero | kept

    nodes = recurse(sorted(member_set), bits - 1)
    beta = merge_rounds_per_level * bits
    return RulingSetResult(nodes=nodes, alpha=k, beta=beta, rounds=merge_rounds_per_level * bits)


def ruling_set_random(
    graph: Graph,
    k: int,
    ledger: RoundLedger | None = None,
    rng: random.Random | None = None,
    members: set[int] | None = None,
    method: str = "luby",
    max_iterations: int | None = None,
) -> RulingSetResult:
    """Randomized (k+1, k)-ruling set: MIS of G^k on the member set.

    ``method='ghaffari'`` gives the O(log Δ)-type per-node convergence of
    Lemma 20(4); stragglers past ``max_iterations`` are resolved by a
    greedy pass (distance-k dominating completion), whose extra rounds are
    charged as a depth-k flood per straggler batch — the deterministic
    fallback mirroring the paper's shattering finisher.
    """
    ledger = ledger if ledger is not None else RoundLedger()
    rng = rng if rng is not None else random.Random(0)
    member_set = set(range(graph.n)) if members is None else set(members)
    before = ledger.total_rounds
    result = power_graph_mis(
        graph, k, ledger, rng, active=member_set, max_iterations=max_iterations, method=method
    )
    nodes = set(result.in_set)
    if result.undecided:
        # Deterministic finisher: repeatedly admit the smallest-id
        # undecided node and knock out its distance-k ball.  Sequential in
        # the worst case; in practice undecided sets are tiny (shattering).
        remaining = set(result.undecided)
        while remaining:
            ledger.charge(k)
            v = min(remaining)
            nodes.add(v)
            dist = bfs_distances(graph, [v], max_depth=k)
            remaining = {u for u in remaining if dist[u] == -1}
    return RulingSetResult(
        nodes=nodes, alpha=k + 1, beta=k, rounds=ledger.total_rounds - before
    )


def ruling_set_from_coloring(
    graph: Graph,
    base_colors: list[int],
    palette: int,
    ledger: RoundLedger | None = None,
    members: set[int] | None = None,
) -> RulingSetResult:
    """Deterministic (2, 1)-ruling set (an MIS) in ``palette`` rounds.

    Substitute for Lemma 20(1): given the Linial coloring, iterate color
    classes.  A (2, β) guarantee with β=1 is stronger domination than the
    lemma needs, at the price of palette = O(Δ²) rounds instead of
    O(β·Δ^{2/β} + log* n).
    """
    ledger = ledger if ledger is not None else RoundLedger()
    before = ledger.total_rounds
    result = greedy_mis_from_coloring(graph, base_colors, palette, ledger, active=members)
    return RulingSetResult(
        nodes=result.in_set, alpha=2, beta=1, rounds=ledger.total_rounds - before
    )


def verify_ruling_set(
    graph: Graph,
    ruling: set[int],
    alpha: int,
    beta: int,
    members: set[int] | None = None,
) -> tuple[bool, str]:
    """Check the (α, β) guarantees; returns ``(ok, reason)``.

    Independence: every pair of ruling nodes at distance >= α (checked via
    a depth-(α-1) BFS from each ruling node).  Domination: every member
    within β of the ruling set.
    """
    member_set = set(range(graph.n)) if members is None else set(members)
    if not member_set:
        return (len(ruling) == 0, "empty member set")
    if not ruling:
        return (False, "empty ruling set for non-empty members")
    if not ruling <= member_set:
        return (False, "ruling set contains non-members")
    for v in ruling:
        dist = bfs_distances(graph, [v], max_depth=alpha - 1)
        for u in ruling:
            if u != v and dist[u] != -1:
                return (False, f"ruling nodes {v},{u} at distance {dist[u]} < {alpha}")
    dist = bfs_distances(graph, ruling, max_depth=beta)
    for v in member_set:
        if dist[v] == -1:
            return (False, f"member {v} farther than beta={beta} from ruling set")
    return (True, "ok")
