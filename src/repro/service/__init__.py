"""repro.service — the production coloring service layer.

Turns the PR 2 solver facade into a *served* system: requests per second,
tail latency, and cache hit rate become first-class measured quantities.

* :mod:`repro.service.fingerprint` — content-addressed request hashes
  (canonical CSR + result-affecting config fields);
* :mod:`repro.service.cache` — LRU+TTL :class:`ResultCache` of frozen
  :class:`repro.api.ColoringResult` objects with hit/miss/eviction and
  byte accounting;
* :mod:`repro.service.batcher` — :class:`BatchingGateway`, the asyncio
  admission/coalescing/micro-batching front over a warmed
  :class:`repro.api.SolverPool`, with bounded queue depth and explicit
  load shedding (:class:`repro.errors.ServiceOverloadedError`);
* :mod:`repro.service.graphstore` — :class:`GraphStore`, the LRU of
  served instances that backs the ``update`` verb (edge-stream deltas
  repaired from a cached parent via :func:`repro.api.solve_incremental`
  instead of re-solved — see docs/INCREMENTAL.md);
* :mod:`repro.service.metrics` — :class:`ServiceMetrics` latency
  histograms (p50/p95/p99), QPS and queue depth, one JSON snapshot;
* :mod:`repro.service.server` / :mod:`repro.service.client` — the
  newline-delimited-JSON TCP protocol (:class:`ColoringServer`,
  :class:`ColoringClient`, :class:`AsyncColoringClient`);
* :mod:`repro.service.sharding` — horizontal scale-out: a consistent-
  hash :class:`HashRing` over the digest keyspace, supervised
  :class:`ShardWorker` child processes, and the :class:`ShardRouter`
  NDJSON front tier (``repro serve --shards N``);
* :mod:`repro.service.storage` — the pluggable storage API:
  :class:`ResultStore`/:class:`WriteAheadLog` protocols, the in-memory
  and durable (:class:`DurableStore` + update WAL) backends, one
  :class:`StorageConfig` of knobs, and warm-restart replay
  (``repro serve --store-dir`` — see docs/STORAGE.md).

Quick start::

    # terminal 1
    $ python -m repro serve --port 8512 --workers 2

    # terminal 2 (or any script)
    from repro.service import ColoringClient
    with ColoringClient(port=8512) as client:
        reply = client.solve(graph, algorithm="auto", seed=1)
        print(reply.result.palette, reply.cached)

See docs/SERVICE.md for the protocol, cache semantics and the
determinism guarantee (a cached result is bit-identical to a fresh
solve).
"""

from repro.service.batcher import BatchingGateway, GatewayReply, UpdateReply
from repro.service.cache import CacheStats, ResultCache
from repro.service.client import AsyncColoringClient, ColoringClient, SolveReply
from repro.service.fingerprint import (
    config_fingerprint,
    graph_fingerprint,
    request_fingerprint,
    update_fingerprint,
)
from repro.service.graphstore import GraphStore
from repro.service.metrics import LatencyWindow, ServiceMetrics
from repro.service.server import ColoringServer, NdjsonEndpoint
from repro.service.sharding import (
    HashRing,
    ShardRouter,
    ShardSupervisor,
    ShardWorker,
)
from repro.service.storage import (
    DurableStore,
    ResultStore,
    StorageBundle,
    StorageConfig,
    TieredResultStore,
    UpdateWAL,
    WriteAheadLog,
)

__all__ = [
    "BatchingGateway",
    "GatewayReply",
    "UpdateReply",
    "GraphStore",
    "ResultCache",
    "CacheStats",
    "ServiceMetrics",
    "LatencyWindow",
    "ColoringServer",
    "NdjsonEndpoint",
    "ColoringClient",
    "AsyncColoringClient",
    "SolveReply",
    "HashRing",
    "ShardRouter",
    "ShardSupervisor",
    "ShardWorker",
    "ResultStore",
    "WriteAheadLog",
    "StorageConfig",
    "StorageBundle",
    "DurableStore",
    "TieredResultStore",
    "UpdateWAL",
    "graph_fingerprint",
    "config_fingerprint",
    "request_fingerprint",
    "update_fingerprint",
]
