"""The asyncio request gateway: admission, coalescing, micro-batching.

Request lifecycle (``await gateway.submit(graph, config)``):

1. **Fingerprint** the request (:mod:`repro.service.fingerprint`).
2. **Cache probe** — a hit returns the frozen cached result immediately
   (bit-identical to a fresh solve; the cache stores pure-function
   outputs).
3. **Coalesce** — if the same fingerprint is already being solved, the
   request attaches to the in-flight future instead of solving twice.
4. **Admission** — if the number of outstanding (admitted, uncompleted)
   requests has reached ``max_queue`` — or, with ``max_cost`` set, if
   their summed :func:`request_cost` (``n + m``) would exceed it — the
   request is rejected *now* with
   :class:`repro.errors.ServiceOverloadedError`.  Load shedding is
   explicit; nothing queues unboundedly and nothing hangs.
5. **Micro-batch** — a dispatcher task drains the queue into batches of
   up to ``max_batch`` requests, waiting at most ``max_wait_s`` for
   stragglers once the first request of a batch arrives, and runs each
   batch through :func:`repro.api.solve_many` on the gateway's warmed
   :class:`repro.api.SolverPool` (in a worker thread, so the event loop
   keeps accepting requests while engines run).

Failure isolation: a request whose engine raises (e.g. a clique sent to
an algorithm that needs a *nice* graph) fails only its own future — the
batch it rode in falls back to per-request solves, and the pool and
dispatcher keep serving (see ``tests/test_service.py``).

Graph streams: :meth:`BatchingGateway.submit_update` serves the
``update`` verb — an edge delta against a previously served instance,
addressed by the digest its reply carried.  The first update against a
parent builds a chain-head :class:`repro.core.incremental.
IncrementalColoring` engine from the stored graph + cached coloring;
every further update **moves** that engine along the version chain
(popped at the parent digest, delta applied in place via
:func:`repro.api.apply_incremental`, re-stored at the child digest), so
a long-lived stream pays the dynamic backend's in-place price instead
of re-materializing an immutable child per op.  Child results are
cached under version-chained digests exactly as before — the digests,
colors, and stats are pinned bit-identical to the old path.
"""

from __future__ import annotations

import asyncio
import time
import warnings
from collections import deque
from dataclasses import dataclass

from repro.api.config import SolverConfig
from repro.api.result import ColoringResult
from repro.api.solver import SolverPool, apply_incremental, solve_many
from repro.errors import ServiceOverloadedError, StaleParentError
from repro.graphs.graph import Graph
from repro.service.cache import ResultCache
from repro.service.fingerprint import (
    config_fingerprint,
    request_fingerprint,
    update_fingerprint,
)
from repro.service.graphstore import GraphStore
from repro.service.metrics import ServiceMetrics, error_kind
from repro.service.storage import (
    StorageBundle,
    StorageConfig,
    replay_chains,
    update_record,
)
from repro.obs.trace import NOOP_SPAN, NULL_TRACER, Tracer

__all__ = ["BatchingGateway", "GatewayReply", "UpdateReply", "request_cost"]


@dataclass(frozen=True)
class GatewayReply:
    """What one admitted request resolves to."""

    result: ColoringResult
    cached: bool
    fingerprint: str


@dataclass(frozen=True)
class UpdateReply:
    """What one ``update`` request resolves to.

    ``fingerprint`` is the *child* digest (usable as the next
    ``parent_digest`` — the cache chains versions); ``update`` is the
    repair-statistics dict of the op that produced the child (also
    embedded in ``result.stats["incremental"]``, which is where it comes
    from when the reply is served from the cache).
    """

    result: ColoringResult
    cached: bool
    fingerprint: str
    parent_digest: str
    update: dict


def request_cost(n: int, m: int) -> int:
    """The admission cost of one request: its instance volume ``n + m``.

    Every stage a request pays for downstream — graph construction,
    solving, validation, serialisation — is Ω(n + m), so queued work is
    metered in these units rather than request counts (a queue of
    million-node instances and a queue of toy graphs are not the same
    backlog).
    """
    return n + m


class _Pending:
    __slots__ = (
        "fingerprint", "graph", "config", "config_key", "future", "cost",
        "span",
    )

    def __init__(
        self, fingerprint, graph, config, config_key, future, cost,
        span=NOOP_SPAN,
    ):
        self.fingerprint = fingerprint
        self.graph = graph
        self.config = config
        self.config_key = config_key
        self.future = future
        self.cost = cost
        self.span = span


class BatchingGateway:
    """Coalescing micro-batch dispatcher over a warmed solver pool.

    Parameters
    ----------
    workers:
        Process-pool width for :func:`repro.api.solve_many`; ``1`` keeps
        solves in the dispatcher's worker thread (no process hop), which
        is the right default on single-CPU containers.
    storage:
        The gateway's stores, as a declarative
        :class:`~repro.service.storage.StorageConfig` (built here, with
        the ``repro_store_*`` instruments wired to this gateway's metrics
        registry, and closed by :meth:`close`) or a prebuilt
        :class:`~repro.service.storage.StorageBundle` (lifecycle stays
        with the caller).  Omitted = the default in-memory config —
        bit-identical to the pre-storage-API gateway.
    metrics:
        Injectable for tests and for sharing with the TCP server's stats
        endpoint; a fresh instance is created when omitted.
    max_batch:
        Micro-batch size cap.
    max_wait_s:
        How long a batch holds the door open for stragglers after its
        first request arrives.  Zero disables coalescing-by-time (each
        drain takes whatever is queued right then).
    max_queue:
        Bound on outstanding admitted requests; admission beyond it
        raises :class:`ServiceOverloadedError`.
    max_followers:
        Bound on concurrently *coalesced* waiters (duplicate-fingerprint
        requests attached to an in-flight solve).  Followers cost no
        solve work but each holds its request payload, so they are
        bounded too; default ``8 * max_queue``.
    max_cost:
        Cost-aware admission bound: the summed :func:`request_cost`
        (``n + m``) of outstanding requests may not exceed this.  An
        oversize request is still admitted when the gateway is otherwise
        idle (otherwise it could never be served at all), so the bound
        sheds *backlog*, proportionally to the work actually queued.
        ``None`` (the default) disables cost metering and admission is
        by request count alone.
    cache / graph_store:
        **Deprecated** since the storage API: pass ``storage=`` (a
        config or a bundle) instead — see the migration table in
        docs/API.md.  Still honoured, with a :class:`DeprecationWarning`:
        the given instances are wrapped into an in-memory bundle, so
        behavior is unchanged.
    tracer:
        The :class:`repro.obs.Tracer` child spans are recorded on
        (``gateway.cache_probe`` / ``gateway.coalesce_wait`` /
        ``gateway.admission`` / ``gateway.batch_execute`` plus the
        synthesized per-solver-phase and per-repair-rung spans).  Spans
        are emitted only under a sampled ``parent_span`` — an untraced
        request costs nothing here.  Defaults to the disabled
        :data:`repro.obs.NULL_TRACER`.
    """

    def __init__(
        self,
        workers: int = 1,
        *,
        cache: ResultCache | None = None,
        metrics: ServiceMetrics | None = None,
        max_batch: int = 8,
        max_wait_s: float = 0.002,
        max_queue: int = 64,
        max_followers: int | None = None,
        max_cost: int | None = None,
        graph_store: GraphStore | None = None,
        storage: "StorageConfig | StorageBundle | None" = None,
        tracer: Tracer | None = None,
    ):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        if max_followers is not None and max_followers < 1:
            raise ValueError(f"max_followers must be >= 1, got {max_followers}")
        if max_cost is not None and max_cost < 1:
            raise ValueError(f"max_cost must be >= 1, got {max_cost}")
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        if cache is not None or graph_store is not None:
            if storage is not None:
                raise ValueError(
                    "pass either storage= or the deprecated cache=/graph_store= "
                    "kwargs, not both"
                )
            warnings.warn(
                "BatchingGateway(cache=..., graph_store=...) is deprecated; "
                "pass storage=StorageBundle(cache=..., graph_store=...) or a "
                "StorageConfig (see docs/API.md)",
                DeprecationWarning,
                stacklevel=2,
            )
            storage = StorageBundle(
                cache=cache if cache is not None else ResultCache(),
                graph_store=graph_store if graph_store is not None else GraphStore(),
            )
        if storage is None:
            storage = StorageConfig()
        if isinstance(storage, StorageConfig):
            # The gateway built these stores, so it owns their lifecycle
            # (close() closes the durable journals); injected bundles
            # stay the caller's to close.
            storage = storage.build(registry=self.metrics.registry)
            self._owns_storage = True
        else:
            self._owns_storage = False
        self.storage = storage
        self.cache = storage.cache
        self.graph_store = storage.graph_store
        self.last_replay: dict | None = None
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.max_batch = max_batch
        self.max_wait_s = max(0.0, max_wait_s)
        self.max_queue = max_queue
        self.max_followers = (
            max_followers if max_followers is not None else 8 * max_queue
        )
        self.max_cost = max_cost
        self.workers = workers
        self._pool = SolverPool(workers) if workers > 1 else None
        self._queue: deque[_Pending] = deque()
        self._inflight: dict[str, asyncio.Future] = {}
        self._outstanding = 0
        self._outstanding_cost = 0
        self._followers = 0
        self.coalesced = 0
        self._wake = asyncio.Event()
        self._running = True
        self._dispatcher: asyncio.Task | None = None

    # -- lifecycle ---------------------------------------------------------

    def warm(self) -> "BatchingGateway":
        """Spawn and warm the process pool outside any timed region, and
        replay durable state (chain heads from the WAL) when there is
        any — the warm-restart path."""
        if self._pool is not None:
            self._pool.warm()
        self.replay()
        return self

    def replay(self) -> dict | None:
        """Rebuild chain-head engines from the update WAL (idempotent).

        Returns the replay report, or None on a memory-only gateway.
        Recorded under ``storage.replay`` in :meth:`stats` and emitted as
        a ``store.replay`` root span plus ``repro_store_*`` replay
        metrics.
        """
        if self.storage.durable is None:
            return None
        with self.tracer.start_span("store.replay") as span:
            report = replay_chains(
                self.storage.wal,
                self.storage.durable,
                self.graph_store,
                cache=self.cache,
                meters=self.storage.meters,
            )
            if span:
                span.set_attr("chains_replayed", report["chains_replayed"])
                span.set_attr("deltas_replayed", report["deltas_replayed"])
                span.set_attr("results_indexed", report["results_indexed"])
        self.last_replay = report
        return report

    def _ensure_dispatcher(self) -> None:
        if self._dispatcher is None or self._dispatcher.done():
            self._dispatcher = asyncio.get_running_loop().create_task(
                self._dispatch_loop()
            )

    async def close(self) -> None:
        """Drain the queue, stop the dispatcher, shut the pool down."""
        self._running = False
        self._wake.set()
        if self._dispatcher is not None:
            await self._dispatcher
            self._dispatcher = None
        if self._pool is not None:
            self._pool.close()
        if self._owns_storage:
            self.storage.close()

    async def __aenter__(self) -> "BatchingGateway":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # -- request path ------------------------------------------------------

    async def submit(
        self,
        graph: "Graph | Callable[[], Graph]",
        config: SolverConfig | None = None,
        *,
        fingerprint: str | None = None,
        cost: int | None = None,
        parent_span=None,
    ) -> GatewayReply:
        """Resolve one request through cache / coalescing / batched solve.

        ``graph`` may be a :class:`Graph` or a zero-arg callable building
        one; a callable requires an explicit ``fingerprint`` and is only
        invoked — off the event loop — when the request actually needs a
        solve.  The TCP server uses this to answer cache hits without
        paying graph construction and validation
        (:func:`repro.service.fingerprint.edge_keys_fingerprint` hashes
        the raw payload).  ``cost`` is the request's admission weight
        (:func:`request_cost`); it is computed from the graph when
        omitted, but lazy factories should pass it explicitly (the
        payload's ``n`` and edge count are known before construction).

        Raises :class:`ServiceOverloadedError` immediately when the
        outstanding-request bound (or, with ``max_cost`` set, the
        outstanding-cost bound) is hit, and re-raises the engine's own
        error (or the factory's construction error) if the solve fails.

        ``parent_span`` (a sampled :class:`repro.obs.Span`) attaches the
        gateway's child spans to the server's request span; with the
        default ``None`` the request is untraced here.
        """
        config = (config or SolverConfig()).without_observer()
        started = time.perf_counter()
        parent_span = parent_span if parent_span is not None else NOOP_SPAN
        if cost is None:
            cost = (
                request_cost(graph.n, graph.num_edges)
                if isinstance(graph, Graph)
                else 0
            )
        if fingerprint is None:
            if callable(graph):
                raise ValueError("a lazy graph factory needs an explicit fingerprint")
            if graph.num_edges > 100_000:
                # the canonical hash is an O(m) pure-Python walk — keep
                # million-edge in-process submissions off the event loop
                fingerprint = await asyncio.get_running_loop().run_in_executor(
                    None, request_fingerprint, graph, config
                )
            else:
                fingerprint = request_fingerprint(graph, config)
        probe = self.tracer.start_span("gateway.cache_probe", parent=parent_span)
        hit = self.cache.get(fingerprint)
        if probe:
            probe.set_attr("hit", hit is not None).end()
        if hit is not None:
            self.metrics.record_request(time.perf_counter() - started, cached=True)
            return GatewayReply(result=hit, cached=True, fingerprint=fingerprint)

        shared = self._inflight.get(fingerprint)
        if shared is not None:
            if self._followers >= self.max_followers:
                self.metrics.record_rejected()
                raise ServiceOverloadedError(
                    f"too many requests waiting on in-flight duplicates "
                    f"({self._followers}/{self.max_followers}); retry with backoff"
                )
            self.coalesced += 1
            self._followers += 1
            wait_span = self.tracer.start_span(
                "gateway.coalesce_wait", parent=parent_span
            )
            try:
                with wait_span:
                    result = await asyncio.shield(shared)
            except asyncio.CancelledError:
                raise  # this follower itself was cancelled, not failed
            except BaseException as exc:
                # every follower saw the failure
                self.metrics.record_failed(error_kind(exc))
                raise
            finally:
                self._followers -= 1
            self.metrics.record_request(
                time.perf_counter() - started, cached=False, coalesced=True
            )
            return GatewayReply(result=result, cached=False, fingerprint=fingerprint)

        with self.tracer.start_span(
            "gateway.admission", parent=parent_span,
        ) as admission:
            if admission:
                admission.set_attr("outstanding", self._outstanding)
                admission.set_attr("cost", cost)
            self._admit(cost)

        # One future carries the request from here on: registered before
        # any await so concurrent duplicates coalesce onto it, reserved
        # against the queue bound before construction begins.
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._inflight[fingerprint] = future
        self._outstanding += 1
        self._outstanding_cost += cost
        self.metrics.set_queue_depth(self._outstanding)

        if callable(graph):
            # Build + validate off the event loop (only misses pay this).
            # BaseException matters: a CancelledError here (caller timeout,
            # server shutdown) must release the queue slot and resolve the
            # in-flight future, or followers hang and capacity leaks.
            try:
                graph = await asyncio.get_running_loop().run_in_executor(None, graph)
            except BaseException as exc:
                self._outstanding -= 1
                self._outstanding_cost -= cost
                self._inflight.pop(fingerprint, None)
                self.metrics.record_failed(error_kind(exc))
                self.metrics.set_queue_depth(self._outstanding)
                if not future.done():
                    # followers get a retryable error, not the leader's
                    # CancelledError (they were not cancelled themselves)
                    future.set_exception(
                        ServiceOverloadedError(
                            "in-flight request was cancelled; retry"
                        )
                        if isinstance(exc, asyncio.CancelledError)
                        else exc
                    )
                    future.exception()  # coalesced followers still see it;
                    # retrieving here silences the never-retrieved warning
                raise

        pending = _Pending(
            fingerprint, graph, config, config_fingerprint(config), future, cost,
            span=parent_span,
        )
        self._queue.append(pending)
        self.metrics.set_queue_depth(self._outstanding)
        self._ensure_dispatcher()
        self._wake.set()
        try:
            result = await asyncio.shield(future)
        finally:
            if future.done() and self._inflight.get(fingerprint) is future:
                del self._inflight[fingerprint]
        self.metrics.record_request(time.perf_counter() - started, cached=False)
        return GatewayReply(result=result, cached=False, fingerprint=fingerprint)

    def _admit(self, cost: int) -> None:
        """Admission control: request-count bound plus (optionally) the
        cost bound.  Raises :class:`ServiceOverloadedError` on rejection."""
        if self._outstanding >= self.max_queue:
            self.metrics.record_rejected()
            raise ServiceOverloadedError(
                f"request queue full ({self._outstanding}/{self.max_queue} "
                "outstanding); retry with backoff"
            )
        if (
            self.max_cost is not None
            and self._outstanding > 0
            and self._outstanding_cost + cost > self.max_cost
        ):
            self.metrics.record_rejected()
            raise ServiceOverloadedError(
                f"queued work too large (outstanding cost "
                f"{self._outstanding_cost} + {cost} > {self.max_cost}); "
                "retry with backoff"
            )

    # -- update path -------------------------------------------------------

    async def submit_update(
        self,
        parent_digest: str,
        edges_added: "list[tuple[int, int]]" = (),
        edges_removed: "list[tuple[int, int]]" = (),
        config: SolverConfig | None = None,
        *,
        backend: str = "auto",
        parent_span=None,
    ) -> UpdateReply:
        """Resolve one edge-stream update against a cached parent.

        The parent is addressed by the digest a previous ``solve`` (or
        ``update``) reply carried.  If the graph store holds a live
        chain-head engine there, the delta applies **in place** (the
        engine moves to the child digest); otherwise a fresh engine is
        seeded from the stored parent graph + cached coloring — so a
        known parent pays *no* graph upload, construction, or fresh
        solve, and a sustained chain additionally skips per-op child
        materialization (:func:`repro.api.apply_incremental`).  The
        child result is cached under a version-chained digest
        (:func:`repro.service.fingerprint.update_fingerprint`) that is
        itself a valid ``parent_digest``.

        ``backend`` picks the chain engine's delta-application mode when
        one has to be *created* (``"auto"``, ``"dynamic"``,
        ``"immutable"`` — see :class:`repro.core.incremental.
        IncrementalColoring`); long-lived streaming clients pass
        ``"dynamic"`` to skip the auto path's warm-up ops.  It never
        enters the child digest: results are backend-equivalent by the
        engine's pinned contract.

        Raises :class:`StaleParentError` when the parent is unknown
        (evicted, never solved here, or a chain head that already
        advanced past this digest) — the caller should fall back to a
        full ``solve`` — and :class:`ServiceOverloadedError` under the
        same admission bounds as ``submit``.  Rejected deltas re-raise
        the engine's typed errors with the gateway state unchanged (the
        chain head, exact by the engine's rollback contract, goes back
        under the parent digest).
        """
        config = (config or SolverConfig()).without_observer()
        started = time.perf_counter()
        parent_span = parent_span if parent_span is not None else NOOP_SPAN
        edges_added = list(edges_added)
        edges_removed = list(edges_removed)
        child_digest = update_fingerprint(
            parent_digest, edges_added, edges_removed, config_fingerprint(config)
        )
        probe = self.tracer.start_span("gateway.cache_probe", parent=parent_span)
        hit = self.cache.get(child_digest)
        if probe:
            probe.set_attr("hit", hit is not None).end()
        if hit is not None:
            self.metrics.record_request(time.perf_counter() - started, cached=True)
            return UpdateReply(
                result=hit,
                cached=True,
                fingerprint=child_digest,
                parent_digest=parent_digest,
                update=dict(hit.stats.get("incremental", {})),
            )

        shared = self._inflight.get(child_digest)
        if shared is not None:
            if self._followers >= self.max_followers:
                self.metrics.record_rejected()
                raise ServiceOverloadedError(
                    f"too many requests waiting on in-flight duplicates "
                    f"({self._followers}/{self.max_followers}); retry with backoff"
                )
            self.coalesced += 1
            self._followers += 1
            wait_span = self.tracer.start_span(
                "gateway.coalesce_wait", parent=parent_span
            )
            try:
                with wait_span:
                    result = await asyncio.shield(shared)
            except asyncio.CancelledError:
                raise
            except BaseException as exc:
                self.metrics.record_failed(error_kind(exc))
                raise
            finally:
                self._followers -= 1
            self.metrics.record_request(
                time.perf_counter() - started, cached=False, coalesced=True
            )
            return UpdateReply(
                result=result,
                cached=False,
                fingerprint=child_digest,
                parent_digest=parent_digest,
                update=dict(result.stats.get("incremental", {})),
            )

        # Take ownership of the chain head if one lives at the parent
        # digest; otherwise fall back to seeding a fresh engine from the
        # stored graph + cached result.  Ownership (pop, not get) is what
        # makes the in-place mutation safe: a concurrent update on the
        # same parent loses the race and sees a stale parent — retriable.
        engine = self.graph_store.pop_engine(parent_digest)
        parent_graph = parent_result = None
        if engine is None:
            parent_graph = self.graph_store.get(parent_digest)
            parent_result = self.cache.get(parent_digest)
            if parent_graph is None or parent_result is None:
                self.metrics.record_failed("stale_parent")
                raise StaleParentError(
                    f"unknown parent {parent_digest[:16]}…: not in the graph "
                    "store / result cache (evicted, never solved here, or a "
                    "chain that moved on); fall back to a full solve of the "
                    "child graph"
                )
            cost = request_cost(parent_graph.n, parent_graph.num_edges)
        else:
            cost = request_cost(engine.n, engine.num_edges)
        try:
            with self.tracer.start_span(
                "gateway.admission", parent=parent_span,
            ) as admission:
                if admission:
                    admission.set_attr("outstanding", self._outstanding)
                    admission.set_attr("cost", cost)
                self._admit(cost)
        except BaseException:
            if engine is not None:
                self.graph_store.put_engine(parent_digest, engine)
            raise

        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._inflight[child_digest] = future
        self._outstanding += 1
        self._outstanding_cost += cost
        self.metrics.set_queue_depth(self._outstanding)

        def _apply() -> "Any":
            nonlocal engine
            if engine is None:
                from repro.core.incremental import IncrementalColoring

                engine = IncrementalColoring.from_result(
                    parent_graph, parent_result, config=config, backend=backend
                )
            return apply_incremental(
                engine, edges_added, edges_removed, config,
                materialize_graph=False,
            )

        apply_span = self.tracer.start_span(
            "gateway.update_apply", parent=parent_span
        )
        try:
            updated = await asyncio.get_running_loop().run_in_executor(
                None, _apply
            )
            if apply_span:
                apply_span.set_attr(
                    "full_resolve", bool(updated.update.get("full_resolve"))
                )
                apply_span.end()
                # Repair-rung children synthesized from the engine's own
                # wall breakdown, laid end-to-end under the apply span.
                offset = 0.0
                for rung, wall in updated.update.get("rung_wall_s", {}).items():
                    self.tracer.emit(
                        f"repair.{rung}", apply_span, wall, offset_s=offset
                    )
                    offset += wall
        except BaseException as exc:
            if apply_span:
                apply_span.set_attr("error", type(exc).__name__)
                apply_span.end()
            # Rejected deltas leave the engine state exactly unchanged
            # (the engine's rollback contract), so the chain head goes
            # back where it was and the caller may correct and retry.
            if engine is not None:
                self.graph_store.put_engine(parent_digest, engine)
            self.metrics.record_failed(error_kind(exc))
            if not future.done():
                future.set_exception(
                    ServiceOverloadedError("in-flight update was cancelled; retry")
                    if isinstance(exc, asyncio.CancelledError)
                    else exc
                )
                future.exception()  # silence the never-retrieved warning
            raise
        else:
            if self.storage.wal is not None:
                # Logged after the apply succeeded (facts, not intents):
                # replay reapplies exactly the deltas that once worked.
                self.storage.wal.append(
                    update_record(
                        parent_digest, child_digest, edges_added, edges_removed,
                        config, backend,
                    )
                )
            self.cache.put(child_digest, updated.result)
            self.graph_store.put_engine(child_digest, engine)
            if not future.done():
                future.set_result(updated.result)
            self.metrics.record_request(time.perf_counter() - started, cached=False)
            return UpdateReply(
                result=updated.result,
                cached=False,
                fingerprint=child_digest,
                parent_digest=parent_digest,
                update=updated.update,
            )
        finally:
            self._outstanding -= 1
            self._outstanding_cost -= cost
            if self._inflight.get(child_digest) is future:
                del self._inflight[child_digest]
            self.metrics.set_queue_depth(self._outstanding)

    # -- dispatcher --------------------------------------------------------

    async def _dispatch_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            while not self._queue:
                if not self._running:
                    return
                self._wake.clear()
                await self._wake.wait()
            batch = [self._queue.popleft()]
            deadline = loop.time() + self.max_wait_s
            while len(batch) < self.max_batch:
                if self._queue:
                    batch.append(self._queue.popleft())
                    continue
                remaining = deadline - loop.time()
                if remaining <= 0 or not self._running:
                    break
                self._wake.clear()
                try:
                    await asyncio.wait_for(self._wake.wait(), remaining)
                except asyncio.TimeoutError:
                    break
            self.metrics.record_batch(len(batch))
            batch_started = time.perf_counter()
            outcomes = await loop.run_in_executor(None, self._solve_batch, batch)
            batch_elapsed = time.perf_counter() - batch_started
            for pending, outcome in outcomes:
                self._outstanding -= 1
                self._outstanding_cost -= pending.cost
                self._inflight.pop(pending.fingerprint, None)
                if isinstance(outcome, BaseException):
                    self.metrics.record_failed(error_kind(outcome))
                    if not pending.future.done():
                        pending.future.set_exception(outcome)
                else:
                    self._emit_solve_spans(pending, outcome, batch_elapsed, len(batch))
                    self.cache.put(pending.fingerprint, outcome)
                    # Retained under the same digest so a later `update`
                    # can use this instance as its repair parent.
                    self.graph_store.put(pending.fingerprint, pending.graph)
                    if not pending.future.done():
                        pending.future.set_result(outcome)
            self.metrics.set_queue_depth(self._outstanding)

    def _solve_batch(self, batch: list[_Pending]) -> list[tuple[_Pending, object]]:
        """Runs in a worker thread: one ``solve_many`` per config group.

        ``solve_many`` takes a single config for the whole batch, so the
        micro-batch is grouped by config fingerprint (in practice service
        traffic is config-uniform and this is one group).  A group whose
        batched solve raises falls back to per-request solves so one bad
        request cannot fail its batchmates.
        """
        groups: dict[str, list[_Pending]] = {}
        for pending in batch:
            groups.setdefault(pending.config_key, []).append(pending)
        outcomes: list[tuple[_Pending, object]] = []
        for group in groups.values():
            graphs = [p.graph for p in group]
            config = group[0].config
            try:
                results = solve_many(graphs, config, pool=self._pool)
                outcomes.extend(zip(group, results))
            except Exception:
                # executor.map loses the group's completed results when one
                # task raises, so the whole group re-solves one-by-one —
                # still through the pool, so process isolation (and any
                # already-warm workers) is kept.  Rare path: only batches
                # containing a failing request pay it.
                for pending in group:
                    try:
                        result = solve_many(
                            [pending.graph], pending.config, pool=self._pool
                        )[0]
                        outcomes.append((pending, result))
                    except Exception as exc:
                        outcomes.append((pending, exc))
        return outcomes

    def _emit_solve_spans(
        self,
        pending: _Pending,
        result: ColoringResult,
        batch_elapsed: float,
        batch_size: int,
    ) -> None:
        """Synthesize the batch-execute span plus one child per solver
        phase (from the engine's recorded ``wall_s`` breakdown) under a
        sampled request's span.  Untraced requests skip out in one check."""
        if not pending.span:
            return
        exec_span = self.tracer.emit(
            "gateway.batch_execute",
            pending.span,
            batch_elapsed,
            attrs={"batch_size": batch_size, "algorithm": result.algorithm},
        )
        offset = 0.0
        for phase in result.phase_rounds:
            stats = result.phase_stats.get(phase, {})
            wall = stats.get("wall_s")
            if not isinstance(wall, (int, float)):
                continue
            self.tracer.emit(
                f"solver.{phase}", exec_span, wall, offset_s=offset,
                attrs={"rounds": result.phase_rounds.get(phase)},
            )
            offset += wall
        # nested ledger phases ("a/b") ride along, anchored after the
        # top-level phases rather than interleaved — their parent entry
        # already contains their time
        for phase, stats in result.phase_stats.items():
            if phase in result.phase_rounds or "/" not in phase:
                continue
            wall = stats.get("wall_s")
            if isinstance(wall, (int, float)):
                self.tracer.emit(f"solver.{phase}", exec_span, wall)

    # -- reporting ---------------------------------------------------------

    def stats(self) -> dict:
        """Gateway-level counters merged with cache and metrics snapshots."""
        cache_stats = self.cache.stats()
        if hasattr(cache_stats, "as_dict"):
            cache_stats = cache_stats.as_dict()
        out = {
            "workers": self.workers,
            "max_batch": self.max_batch,
            "max_wait_ms": round(1000 * self.max_wait_s, 3),
            "max_queue": self.max_queue,
            "max_followers": self.max_followers,
            "max_cost": self.max_cost,
            "outstanding": self._outstanding,
            "outstanding_cost": self._outstanding_cost,
            "followers": self._followers,
            "coalesced": self.coalesced,
            "cache": cache_stats,
            "graph_store": self.graph_store.stats(),
            "metrics": self.metrics.snapshot(),
        }
        if self.storage.durable is not None:
            storage = self.storage.stats()
            if self.last_replay is not None:
                storage["replay"] = self.last_replay
            out["storage"] = storage
        return out
