"""LRU + TTL result cache keyed by request fingerprint.

Stores frozen :class:`repro.api.ColoringResult` objects under the
content-addressed keys of :mod:`repro.service.fingerprint`.  Because a
solve is a pure function of ``(graph, config)``, a cached result is
bit-identical to what a fresh solve would return (the serve-smoke suite
asserts this via :meth:`ColoringResult.content_digest`), so hits are
semantically invisible — they only remove latency.

Eviction is two-policy:

* **LRU by capacity** — both an entry count bound and a byte bound
  (results carry an O(n) color vector; byte accounting is what actually
  protects a serving process from a few million-node results evicting
  nothing).  Insertion evicts least-recently-used entries until both
  bounds hold.
* **TTL** — entries older than ``ttl_s`` are dropped on access or
  insertion sweep.  ``ttl_s=None`` disables expiry (results never go
  stale — the instance is content-addressed — but operators may want
  bounded staleness anyway when engines are re-registered in place).

Thread-safe: the gateway reads from the event loop while solves complete
in worker threads, so every public method takes the internal lock.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any

from repro.api.result import ColoringResult

__all__ = ["CacheStats", "ResultCache"]


def estimate_result_nbytes(result: ColoringResult) -> int:
    """Approximate in-memory footprint of one cached result.

    Dominated by the color tuple (one boxed int per node); the flat/phase
    stats dicts are bounded per algorithm, so a fixed overhead plus a
    small per-key charge is accurate enough for eviction accounting.
    """
    stats_keys = len(result.stats) + sum(
        1 + len(v) for v in result.phase_stats.values()
    )
    return 256 + 32 * len(result.colors) + 96 * (stats_keys + len(result.phase_rounds))


@dataclass
class CacheStats:
    """Monotonic counters plus current occupancy, snapshot-able to JSON."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions_lru: int = 0
    evictions_ttl: int = 0
    entries: int = 0
    bytes: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict[str, Any]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "evictions_lru": self.evictions_lru,
            "evictions_ttl": self.evictions_ttl,
            "entries": self.entries,
            "bytes": self.bytes,
            "hit_rate": round(self.hit_rate, 4),
        }


class _Entry:
    __slots__ = ("result", "expires_at", "nbytes")

    def __init__(self, result: ColoringResult, expires_at: float | None, nbytes: int):
        self.result = result
        self.expires_at = expires_at
        self.nbytes = nbytes


class ResultCache:
    """An LRU+TTL map ``fingerprint -> ColoringResult`` with accounting.

    Parameters
    ----------
    max_entries:
        Entry-count bound (≥ 1).
    max_bytes:
        Byte bound on the summed :func:`estimate_result_nbytes` of all
        entries; ``None`` disables byte-based eviction.
    ttl_s:
        Per-entry time-to-live in seconds; ``None`` disables expiry.
    clock:
        Injectable monotonic clock (tests freeze time through this).
    """

    def __init__(
        self,
        max_entries: int = 1024,
        max_bytes: int | None = 256 * 1024 * 1024,
        ttl_s: float | None = None,
        clock=time.monotonic,
    ):
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.ttl_s = ttl_s
        self._clock = clock
        self._lock = threading.Lock()
        self._entries: OrderedDict[str, _Entry] = OrderedDict()
        self._stats = CacheStats()

    def get(self, key: str) -> ColoringResult | None:
        """The cached result for ``key``, or None (miss or expired)."""
        now = self._clock()
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and entry.expires_at is not None and now >= entry.expires_at:
                self._drop(key, entry, "ttl")
                entry = None
            if entry is None:
                self._stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self._stats.hits += 1
            return entry.result

    def put(self, key: str, result: ColoringResult) -> None:
        """Insert (or refresh) ``key``, evicting until both bounds hold."""
        now = self._clock()
        expires_at = now + self.ttl_s if self.ttl_s is not None else None
        entry = _Entry(result, expires_at, estimate_result_nbytes(result))
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._stats.bytes -= old.nbytes
            self._entries[key] = entry
            self._stats.puts += 1
            self._stats.bytes += entry.nbytes
            self._stats.entries = len(self._entries)
            self._expire_locked(now)
            while len(self._entries) > self.max_entries or (
                self.max_bytes is not None
                and self._stats.bytes > self.max_bytes
                and len(self._entries) > 1
            ):
                victim_key, victim = next(iter(self._entries.items()))
                self._drop(victim_key, victim, "lru")

    def _expire_locked(self, now: float) -> None:
        if self.ttl_s is None:
            return
        expired = [
            (k, e) for k, e in self._entries.items()
            if e.expires_at is not None and now >= e.expires_at
        ]
        for key, entry in expired:
            self._drop(key, entry, "ttl")

    def evict(self, key: str) -> bool:
        """Drop ``key`` if present; True when an entry was removed.

        Counted as an LRU eviction (the operator-initiated kind shares
        the capacity-pressure counter rather than growing a third)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return False
            self._drop(key, entry, "lru")
            return True

    def _drop(self, key: str, entry: _Entry, reason: str) -> None:
        self._entries.pop(key, None)
        self._stats.bytes -= entry.nbytes
        self._stats.entries = len(self._entries)
        if reason == "ttl":
            self._stats.evictions_ttl += 1
        else:
            self._stats.evictions_lru += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return False
            if entry.expires_at is not None and self._clock() >= entry.expires_at:
                return False
            return True

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._stats.entries = 0
            self._stats.bytes = 0

    def stats(self) -> CacheStats:
        """A snapshot copy of the counters (safe to mutate)."""
        with self._lock:
            self._stats.entries = len(self._entries)
            return CacheStats(**vars(self._stats))
