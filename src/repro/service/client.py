"""Clients for the NDJSON coloring service.

Two flavours over the same wire protocol (see
:mod:`repro.service.server`):

* :class:`ColoringClient` — synchronous, one blocking socket, strict
  request→reply alternation.  The ergonomic choice for scripts, the CLI
  and the serve-smoke check.
* :class:`AsyncColoringClient` — asyncio streams with pipelining: many
  ``solve`` coroutines may be in flight on one connection, replies are
  matched by request id.  This is what the open-loop load generator
  (``benchmarks/bench_s1_service.py``) drives, and what actually
  exercises the gateway's micro-batching.

Both round-trip the PR 2 result schema: a successful solve returns a
:class:`SolveReply` whose ``result`` is a real
:class:`repro.api.ColoringResult` rebuilt via ``from_dict``, digest-equal
to the server's object.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import socket
from dataclasses import dataclass
from typing import Any

from repro.api.config import SolverConfig
from repro.api.result import ColoringResult
from repro.errors import (
    EdgeAlreadyPresentError,
    EdgeNotPresentError,
    GraphError,
    IncrementalUpdateError,
    ReproError,
    ServiceOverloadedError,
    ServiceProtocolError,
    StaleParentError,
)
from repro.graphs.graph import Graph

__all__ = ["SolveReply", "ColoringClient", "AsyncColoringClient", "RemoteEngineError"]


class RemoteEngineError(ReproError):
    """The server's engine rejected the instance (``error.type == "engine"``)."""


@dataclass(frozen=True)
class SolveReply:
    """One successful solve (or update) round-trip.

    For ``update`` replies, ``fingerprint`` is the *child* digest —
    pass it as the next ``parent_digest`` to chain further updates —
    and ``update``/``parent_digest`` carry the repair statistics and
    lineage; both are None for plain solves.
    """

    result: ColoringResult
    cached: bool
    fingerprint: str
    node_ids: list[int] | None = None
    parent_digest: str | None = None
    update: dict[str, Any] | None = None


def graph_payload(graph: Any) -> dict[str, Any]:
    """Coerce a :class:`Graph` / ``(n, edges)`` / raw dict into the wire shape."""
    if isinstance(graph, Graph):
        return {"n": graph.n, "edges": [list(e) for e in graph.edges()]}
    if isinstance(graph, dict):
        return graph
    if isinstance(graph, tuple) and len(graph) == 2:
        n, edges = graph
        return {"n": n, "edges": [list(e) for e in edges]}
    raise ServiceProtocolError(
        f"cannot build a graph payload from {type(graph).__name__}"
    )


def config_payload(config: SolverConfig | dict | None, overrides: dict) -> Any:
    if isinstance(config, SolverConfig):
        if overrides:
            config = config.replace(**overrides)
        payload = config.as_dict()
        return payload
    if config is None:
        return overrides or None
    if isinstance(config, dict):
        return {**config, **overrides}
    raise ServiceProtocolError(
        f"config must be SolverConfig, dict, or None, got {type(config).__name__}"
    )


def _raise_for_error(reply: dict[str, Any]) -> None:
    error = reply.get("error") or {}
    kind = error.get("type")
    message = f"{error.get('name', 'error')}: {error.get('message', '')}"
    if kind == "overloaded":
        raise ServiceOverloadedError(message)
    if kind == "engine":
        raise RemoteEngineError(message)
    if kind == "stale_parent":
        raise StaleParentError(message)
    if kind == "update":
        raise IncrementalUpdateError(message)
    raise ServiceProtocolError(message)


def _parse_solve_reply(reply: dict[str, Any]) -> SolveReply:
    if not reply.get("ok"):
        _raise_for_error(reply)
    return SolveReply(
        result=ColoringResult.from_dict(reply["result"]),
        cached=bool(reply["cached"]),
        fingerprint=reply["fingerprint"],
        node_ids=reply.get("node_ids"),
        parent_digest=reply.get("parent_digest"),
        update=reply.get("update"),
    )


def _fallback_child_graph(
    fallback_graph: Any, edges_added: Any, edges_removed: Any
) -> Graph:
    """The post-delta graph for the stale-parent re-solve fallback.

    ``fallback_graph`` is the *parent* instance in any shape
    :func:`graph_payload` accepts; the delta is applied locally (same
    validation as the server's engine would run) to produce the child
    the fallback ``solve`` uploads.  Presence/absence rejections keep
    the update API's typed errors (the server path raises
    :class:`EdgeAlreadyPresentError` / :class:`EdgeNotPresentError` for
    the same deltas; the exception type must not depend on whether the
    parent was still cached); range and self-loop errors keep their
    :class:`GraphError` identity, exactly like the engine.
    """
    if not isinstance(fallback_graph, Graph):
        payload = graph_payload(fallback_graph)
        fallback_graph = Graph(
            payload["n"], [tuple(e) for e in payload["edges"]]
        )
    try:
        return fallback_graph.apply_updates(
            added=[tuple(e) for e in edges_added],
            removed=[tuple(e) for e in edges_removed],
        )
    except GraphError as exc:
        message = str(exc)
        if "already present" in message or "added and removed" in message:
            raise EdgeAlreadyPresentError(message) from exc
        if "not present" in message or "removed twice" in message:
            raise EdgeNotPresentError(message) from exc
        raise


def _update_request(
    parent_digest: str,
    edges_added: Any,
    edges_removed: Any,
    config: SolverConfig | dict | None,
    overrides: dict,
    backend: str | None = None,
) -> dict[str, Any]:
    request: dict[str, Any] = {
        "op": "update",
        "parent_digest": parent_digest,
        "edges_added": [list(e) for e in edges_added],
        "edges_removed": [list(e) for e in edges_removed],
    }
    if backend is not None:
        request["backend"] = backend
    cfg = config_payload(config, overrides)
    if cfg is not None:
        request["config"] = cfg
    return request


class ColoringClient:
    """Blocking NDJSON client (one request in flight at a time).

    Usage::

        with ColoringClient("127.0.0.1", 8512) as client:
            reply = client.solve(graph, algorithm="auto", seed=1)
            print(reply.result.palette, reply.cached)
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8512, timeout: float | None = 60.0):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._reader = self._sock.makefile("r", encoding="utf-8", newline="\n")
        self._ids = itertools.count(1)

    def _roundtrip(self, request: dict[str, Any]) -> dict[str, Any]:
        request_id = next(self._ids)
        request["id"] = request_id
        self._sock.sendall(
            (json.dumps(request, separators=(",", ":")) + "\n").encode("utf-8")
        )
        while True:
            line = self._reader.readline()
            if not line:
                raise ServiceProtocolError("server closed the connection")
            reply = json.loads(line)
            if reply.get("id") == request_id:
                return reply

    def solve(
        self,
        graph: Any,
        config: SolverConfig | dict | None = None,
        **overrides: Any,
    ) -> SolveReply:
        """Solve remotely; mirrors :func:`repro.api.solve`'s signature."""
        request = {"op": "solve", "graph": graph_payload(graph)}
        cfg = config_payload(config, overrides)
        if cfg is not None:
            request["config"] = cfg
        return _parse_solve_reply(self._roundtrip(request))

    def update(
        self,
        parent_digest: str,
        edges_added: Any = (),
        edges_removed: Any = (),
        config: SolverConfig | dict | None = None,
        *,
        fallback_graph: Any = None,
        backend: str | None = None,
        **overrides: Any,
    ) -> SolveReply:
        """Apply an edge delta to a previously served instance.

        ``parent_digest`` is the ``fingerprint`` of an earlier solve (or
        update) reply; the returned reply's ``fingerprint`` is the child
        digest for chaining.

        ``backend`` (``"auto"`` / ``"dynamic"`` / ``"immutable"``, None =
        server default) picks the server-side chain engine's delta mode
        when this update creates one — long-lived streaming clients pass
        ``"dynamic"`` to get the in-place sustained-ops price from the
        first op.  Results are backend-equivalent; the digest chain does
        not depend on it.

        When the server evicted the parent it answers ``stale_parent``;
        passing the parent instance as ``fallback_graph`` (any shape
        :meth:`solve` accepts) turns that error into an automatic
        re-solve: the delta is applied locally and the *child* graph is
        solved fresh — one round trip that re-seeds the server's graph
        store, so the reply's ``fingerprint`` is again a valid parent
        for further updates (``update`` and ``parent_digest`` are None
        on such a re-seeded reply, distinguishing it from a repair).
        Without ``fallback_graph``,
        :class:`repro.errors.StaleParentError` propagates for the caller
        to handle.
        """
        # Materialize once: the wire request and the fallback both read
        # the deltas, and a generator argument must not arrive drained.
        edges_added = [tuple(e) for e in edges_added]
        edges_removed = [tuple(e) for e in edges_removed]
        try:
            return _parse_solve_reply(
                self._roundtrip(
                    _update_request(
                        parent_digest, edges_added, edges_removed, config,
                        overrides, backend,
                    )
                )
            )
        except StaleParentError:
            if fallback_graph is None:
                raise
            child = _fallback_child_graph(fallback_graph, edges_added, edges_removed)
            return self.solve(child, config, **overrides)

    def stats(self) -> dict[str, Any]:
        reply = self._roundtrip({"op": "stats"})
        if not reply.get("ok"):
            _raise_for_error(reply)
        return reply["stats"]

    def metrics(self, *, format: str = "json") -> dict[str, Any] | str:
        """The server's instrument registry snapshot.

        ``format="json"`` returns the snapshot dict
        (:meth:`repro.obs.meters.MetricsRegistry.as_dict` shape — against
        a router, the merged fleet view); ``format="prometheus"`` returns
        the text exposition as a string.
        """
        reply = self._roundtrip({"op": "metrics", "format": format})
        if not reply.get("ok"):
            _raise_for_error(reply)
        return reply["metrics_text" if format == "prometheus" else "metrics"]

    def ping(self) -> bool:
        reply = self._roundtrip({"op": "ping"})
        return bool(reply.get("ok")) and bool(reply.get("pong"))

    def close(self) -> None:
        try:
            self._reader.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ColoringClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class AsyncColoringClient:
    """Pipelined asyncio client: many solves in flight on one connection."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8512):
        self.host = host
        self.port = port
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._pending: dict[int, asyncio.Future] = {}
        self._ids = itertools.count(1)
        self._reader_task: asyncio.Task | None = None

    async def connect(self) -> "AsyncColoringClient":
        from repro.service.server import MAX_LINE_BYTES

        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port, limit=MAX_LINE_BYTES
        )
        self._reader_task = asyncio.get_running_loop().create_task(self._read_loop())
        return self

    async def _read_loop(self) -> None:
        assert self._reader is not None
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                reply = json.loads(line)
                future = self._pending.pop(reply.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(reply)
        except (ConnectionResetError, asyncio.CancelledError):
            pass
        finally:
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(
                        ServiceProtocolError("server closed the connection")
                    )
            self._pending.clear()

    async def _roundtrip(self, request: dict[str, Any]) -> dict[str, Any]:
        if self._writer is None:
            raise ServiceProtocolError("client is not connected; call connect()")
        request_id = next(self._ids)
        request["id"] = request_id
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        self._writer.write(
            (json.dumps(request, separators=(",", ":")) + "\n").encode("utf-8")
        )
        await self._writer.drain()
        return await future

    async def solve(
        self,
        graph: Any,
        config: SolverConfig | dict | None = None,
        **overrides: Any,
    ) -> SolveReply:
        request = {"op": "solve", "graph": graph_payload(graph)}
        cfg = config_payload(config, overrides)
        if cfg is not None:
            request["config"] = cfg
        return _parse_solve_reply(await self._roundtrip(request))

    async def update(
        self,
        parent_digest: str,
        edges_added: Any = (),
        edges_removed: Any = (),
        config: SolverConfig | dict | None = None,
        *,
        fallback_graph: Any = None,
        backend: str | None = None,
        **overrides: Any,
    ) -> SolveReply:
        """Async counterpart of :meth:`ColoringClient.update` (including
        the ``fallback_graph`` stale-parent auto re-solve and the
        ``backend`` chain-engine selector)."""
        edges_added = [tuple(e) for e in edges_added]
        edges_removed = [tuple(e) for e in edges_removed]
        try:
            return _parse_solve_reply(
                await self._roundtrip(
                    _update_request(
                        parent_digest, edges_added, edges_removed, config,
                        overrides, backend,
                    )
                )
            )
        except StaleParentError:
            if fallback_graph is None:
                raise
            child = _fallback_child_graph(fallback_graph, edges_added, edges_removed)
            return await self.solve(child, config, **overrides)

    async def stats(self) -> dict[str, Any]:
        reply = await self._roundtrip({"op": "stats"})
        if not reply.get("ok"):
            _raise_for_error(reply)
        return reply["stats"]

    async def metrics(self, *, format: str = "json") -> dict[str, Any] | str:
        """Async counterpart of :meth:`ColoringClient.metrics`."""
        reply = await self._roundtrip({"op": "metrics", "format": format})
        if not reply.get("ok"):
            _raise_for_error(reply)
        return reply["metrics_text" if format == "prometheus" else "metrics"]

    async def ping(self) -> bool:
        reply = await self._roundtrip({"op": "ping"})
        return bool(reply.get("ok")) and bool(reply.get("pong"))

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            self._writer = None
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except asyncio.CancelledError:
                pass
            self._reader_task = None

    async def __aenter__(self) -> "AsyncColoringClient":
        return await self.connect()

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.close()
