"""Content-addressed request fingerprints for the coloring service.

A *request* is a pair ``(graph, config)``.  The service recognises a
repeated request — and serves it from the result cache — by hashing a
canonical byte encoding of both halves:

* **Graph half** — the sorted multiset of packed edge keys
  ``(min(u,v) << 32) | max(u,v)`` plus the node count, so the
  fingerprint is invariant under edge order and edge orientation in the
  request payload.  Payload node ids are compacted to ``0..n-1`` in
  ascending id order before hashing (the same normalisation
  :func:`repro.cli.load_edge_list` applies), so any *order-preserving*
  relabeling of the ids — shifting, scaling, sparse ids — maps to the
  same fingerprint.  Arbitrary isomorphism is **not** attempted
  (canonical labeling is graph-isomorphism-hard); a permutation that
  reorders nodes is a different instance and solves fresh.

  The encoding is computable from a raw request payload *without*
  constructing a :class:`Graph` — that is what lets the server answer
  cache hits without paying graph construction and validation
  (:func:`edge_keys_fingerprint` is the shared core; payloads with
  self-loops or duplicate edges hash to keys no valid graph can
  produce, so they can never collide with a cached result).
* **Config half** — :meth:`repro.api.SolverConfig.fingerprint_payload`,
  the result-affecting fields only (``validate``/``on_phase``/``strict``
  never change the colors and are excluded, so observability settings
  don't fragment the cache).

Determinism contract: every registered solve is a pure function of
``(graph, config)`` (see docs/API.md), so equal fingerprints imply
bit-identical :class:`repro.api.ColoringResult` contents — which is what
makes serving from the cache semantically invisible.
"""

from __future__ import annotations

import hashlib
import json
from array import array
from collections.abc import Iterable

from repro.api.config import SolverConfig
from repro.errors import ServiceProtocolError
from repro.graphs.graph import Graph

# Ids must pack into (u << 32) | v edge keys (and 'i' CSR buffers); the
# same bound the server enforces on solve payloads (_MAX_NODE there).
_MAX_PACKED_ID = 2**31

__all__ = [
    "graph_fingerprint",
    "edge_keys_fingerprint",
    "config_fingerprint",
    "request_fingerprint",
    "combine_fingerprints",
    "update_fingerprint",
]


def edge_keys_fingerprint(n: int, edge_keys: Iterable[int]) -> str:
    """SHA-256 of ``n`` plus the sorted packed-edge-key multiset.

    ``edge_keys`` are ``(min(u,v) << 32) | max(u,v)`` packed ints with
    ``0 <= u, v < 2**31``.  Sorting happens here, so callers may pass
    keys in any order; duplicates are hashed as-is (a payload with a
    duplicate edge therefore cannot collide with any simple graph).
    """
    keys = sorted(edge_keys)
    hasher = hashlib.sha256()
    hasher.update(b"g2:")  # encoding version tag
    hasher.update(n.to_bytes(8, "little"))
    hasher.update(array("q", keys).tobytes())
    return hasher.hexdigest()


def graph_fingerprint(graph: Graph) -> str:
    """Canonical content hash of a constructed :class:`Graph`.

    Identical to what :func:`edge_keys_fingerprint` produces for the
    graph's edge multiset — the server relies on this equivalence to
    hash raw payloads without building the graph first.
    """
    offsets, indices = graph.csr()
    flat = indices.tolist()
    keys = []
    for u in range(graph.n):
        for pos in range(offsets[u], offsets[u + 1]):
            w = flat[pos]
            if w > u:
                keys.append((u << 32) | w)
    return edge_keys_fingerprint(graph.n, keys)


def config_fingerprint(config: SolverConfig) -> str:
    """SHA-256 of the canonical JSON of the result-affecting config fields."""
    payload = config.fingerprint_payload()
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(b"c1:" + canonical.encode("utf-8")).hexdigest()


def combine_fingerprints(graph_digest: str, config_digest: str) -> str:
    """The cache key built from the two halves' digests."""
    combined = f"r1:{graph_digest}:{config_digest}"
    return hashlib.sha256(combined.encode("ascii")).hexdigest()


def request_fingerprint(graph: Graph, config: SolverConfig) -> str:
    """The cache key for one solve request: hash of both halves."""
    return combine_fingerprints(
        graph_fingerprint(graph), config_fingerprint(config)
    )


def update_fingerprint(
    parent_digest: str,
    added: Iterable[tuple[int, int]],
    removed: Iterable[tuple[int, int]],
    config_digest: str,
) -> str:
    """The version-chained cache key for one ``update`` request.

    A hash chain over the lineage: ``H(parent_digest, sorted added keys,
    sorted removed keys, config_digest)``.  Replaying the same delta on
    the same parent therefore hits the cache, and the returned digest is
    itself a valid ``parent_digest`` for the next update — the cache
    chains versions.

    This keyspace (version tag ``u1:``) is deliberately disjoint from
    the content-addressed ``r1:`` solve keys: an incrementally repaired
    coloring is *valid* but not bit-identical to what a fresh solve of
    the child graph would produce, so it must never be served for a
    plain ``solve`` of that graph.  Within ``u1:`` the determinism
    contract is: equal keys imply the same parent, delta, and re-solve
    config — and the repair engine is deterministic in those — so equal
    keys still imply bit-identical cached results.

    Endpoints outside ``0 <= id < 2**31`` raise
    :class:`repro.errors.ServiceProtocolError` *before* hashing: the
    packed key ``(u << 32) | v`` is only injective inside that range, so
    unvalidated larger ids could collide with — and wrongly serve — a
    different delta's cached child (and ids ≥ 2³¹ would overflow the
    key array outright).  No valid parent can contain such nodes anyway
    (the solve path enforces the same bound on payloads).
    """
    def pack(pairs: Iterable[tuple[int, int]]) -> array:
        keys = []
        for u, v in pairs:
            if not (0 <= u < _MAX_PACKED_ID and 0 <= v < _MAX_PACKED_ID):
                raise ServiceProtocolError(
                    f"edge endpoint out of range in update delta: ({u}, {v})"
                )
            keys.append((u << 32) | v if u < v else (v << 32) | u)
        keys.sort()
        return array("q", keys)

    hasher = hashlib.sha256()
    hasher.update(b"u1:")
    hasher.update(parent_digest.encode("ascii"))
    added_keys = pack(added)
    hasher.update(len(added_keys).to_bytes(8, "little"))
    hasher.update(added_keys.tobytes())
    removed_keys = pack(removed)
    hasher.update(len(removed_keys).to_bytes(8, "little"))
    hasher.update(removed_keys.tobytes())
    hasher.update(config_digest.encode("ascii"))
    return hasher.hexdigest()
