"""LRU graph store keyed by request fingerprint — the update verb's memory.

The result cache (:mod:`repro.service.cache`) holds colorings, which is
all a repeated ``solve`` needs; an ``update`` additionally needs the
parent *graph* to apply the delta and run the repair machinery against.
:class:`GraphStore` retains recently solved instances under the same
digests the cache uses, bounded by entry count and (estimated) bytes —
a CSR graph is two native-int buffers, so the accounting is tight.

Two entry kinds share the LRU:

* **graphs** — immutable :class:`repro.graphs.Graph` instances, seeded
  by ``solve`` replies (any of them can parent an update).
* **chain heads** — live :class:`repro.core.incremental.
  IncrementalColoring` engines owning a
  :class:`repro.graphs.dynamic.DynamicGraph`.  An ``update`` *moves*
  the engine from the parent digest to the child digest
  (:meth:`pop_engine` → apply delta in place → :meth:`put_engine`), so
  a chain of k updates mutates one slack-padded CSR instead of
  re-materializing k immutable children — the sustained-ops price from
  docs/INCREMENTAL.md, now behind the ``update`` verb.

Moving the engine means only the chain *head* stays updatable: an
update addressing a digest the chain has advanced past finds a plain
graph (if a solve seeded one) or nothing.  Losing an entry is never
incorrect: an ``update`` whose parent was evicted — or whose chain
moved on — fails with :class:`repro.errors.StaleParentError` and the
client falls back to a full ``solve`` of the child graph, which
re-seeds the store.  Evictions are typed in the stats
(``evictions_graphs`` vs ``evictions_chains``) because the two losses
cost differently: a graph re-enters on the next solve, an evicted live
chain head is unrecoverable in memory — only WAL replay
(:mod:`repro.service.storage.replay`) brings it back, and only across a
restart.  Thread-safe for the same reason the cache is — the gateway
reads on the event loop while solves complete in worker threads.

With a :class:`~repro.service.storage.durable.DurableStore` attached,
graph puts write through to disk and graph misses read through (and
promote), so update-verb repair parents survive restarts alongside the
results they colored.  Engines never write through — they are exactly
what the WAL replays.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any

from repro.graphs.graph import Graph

__all__ = ["GraphStore", "estimate_graph_nbytes", "estimate_engine_nbytes"]

_KIND_GRAPH = "graph"
_KIND_ENGINE = "engine"


def estimate_graph_nbytes(graph: Graph) -> int:
    """In-memory footprint of one stored graph: the two CSR buffers plus
    a fixed object overhead (lazy ``adj``/set views are not retained at
    store time and are not charged)."""
    offsets, indices = graph.csr()
    return 256 + offsets.itemsize * len(offsets) + indices.itemsize * len(indices)


def estimate_engine_nbytes(engine: Any) -> int:
    """Footprint of one chain-head engine: the slack-padded dynamic CSR
    (offsets + padded indices, charged at 2× the live edges to cover the
    slack), the color store, and the undo/journal machinery overhead."""
    return 512 + 16 * engine.n + 32 * engine.num_edges


class GraphStore:
    """An LRU map ``fingerprint -> Graph | chain-head engine`` with byte
    accounting.

    Parameters
    ----------
    max_entries:
        Entry-count bound (≥ 1).
    max_bytes:
        Bound on the summed byte estimates; ``None`` disables byte-based
        eviction.
    durable:
        Optional :class:`~repro.service.storage.durable.DurableStore`;
        graph puts write through and graph misses read through.
    """

    def __init__(
        self,
        max_entries: int = 128,
        max_bytes: int | None = 512 * 1024 * 1024,
        durable: Any | None = None,
    ):
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.durable = durable
        self._lock = threading.Lock()
        self._entries: OrderedDict[str, tuple[str, Any, int]] = OrderedDict()
        self._bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.evictions_graphs = 0
        self.evictions_chains = 0
        self.durable_hits = 0

    def get(self, key: str) -> Graph | None:
        """The stored graph for ``key``, or None.

        A chain-head entry answers with an immutable snapshot of its
        engine's graph — O(n + m) on first read after a mutation, cached
        by the :class:`~repro.graphs.dynamic.DynamicGraph` until the next
        one — so callers that only need the instance (the stale-parent
        fallback, tests) never see engine internals.  A memory miss with
        a durable tier attached falls through to disk and promotes.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
            else:
                self._entries.move_to_end(key)
                self.hits += 1
                kind, payload, _ = entry
        if entry is not None:
            if kind == _KIND_ENGINE:
                return payload.graph
            return payload
        if self.durable is None:
            return None
        graph = self.durable.get_graph(key)
        if graph is not None:
            self.durable_hits += 1
            self._put(key, _KIND_GRAPH, graph, estimate_graph_nbytes(graph))
        return graph

    def put(self, key: str, graph: Graph) -> None:
        """Insert (or refresh) ``key``, evicting LRU entries past the bounds.

        Writes through to the durable tier when one is attached (an
        idempotent no-op for a digest already on disk)."""
        self._put(key, _KIND_GRAPH, graph, estimate_graph_nbytes(graph))
        if self.durable is not None:
            self.durable.put_graph(key, graph)

    # -- chain heads -------------------------------------------------------

    def put_engine(self, key: str, engine: Any) -> None:
        """Store a live chain-head engine under the digest of the version
        its state currently reflects."""
        self._put(key, _KIND_ENGINE, engine, estimate_engine_nbytes(engine))

    def pop_engine(self, key: str) -> Any | None:
        """Remove and return the chain-head engine at ``key``, or None.

        Only engine entries are popped — a plain graph under the same
        digest stays put (the caller then takes the build-an-engine
        path).  Popping transfers ownership: exactly one update can hold
        a given chain head at a time, which is what keeps in-place
        mutation safe under concurrent requests (the loser sees a stale
        parent, a retriable condition clients already recover from).
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None or entry[0] != _KIND_ENGINE:
                return None
            del self._entries[key]
            self._bytes -= entry[2]
            return entry[1]

    def _put(self, key: str, kind: str, payload: Any, nbytes: int) -> None:
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= old[2]
            self._entries[key] = (kind, payload, nbytes)
            self._bytes += nbytes
            while len(self._entries) > self.max_entries or (
                self.max_bytes is not None
                and self._bytes > self.max_bytes
                and len(self._entries) > 1
            ):
                _, (victim_kind, _, victim_bytes) = self._entries.popitem(last=False)
                self._bytes -= victim_bytes
                self.evictions += 1
                if victim_kind == _KIND_ENGINE:
                    self.evictions_chains += 1
                else:
                    self.evictions_graphs += 1

    def evict(self, key: str) -> bool:
        """Drop ``key`` from the memory tier if present (typed-counted
        like an LRU eviction); the durable tier is untouched."""
        with self._lock:
            entry = self._entries.pop(key, None)
            if entry is None:
                return False
            kind, _, nbytes = entry
            self._bytes -= nbytes
            self.evictions += 1
            if kind == _KIND_ENGINE:
                self.evictions_chains += 1
            else:
                self.evictions_graphs += 1
            return True

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._bytes = 0

    def stats(self) -> dict[str, Any]:
        with self._lock:
            chains = sum(
                1 for kind, _, _ in self._entries.values() if kind == _KIND_ENGINE
            )
            return {
                "entries": len(self._entries),
                "chains": chains,
                "bytes": self._bytes,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "evictions_graphs": self.evictions_graphs,
                "evictions_chains": self.evictions_chains,
                "durable_hits": self.durable_hits,
            }
