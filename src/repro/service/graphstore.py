"""LRU graph store keyed by request fingerprint — the update verb's memory.

The result cache (:mod:`repro.service.cache`) holds colorings, which is
all a repeated ``solve`` needs; an ``update`` additionally needs the
parent *graph* to apply the delta and run the repair machinery against.
:class:`GraphStore` retains recently solved instances under the same
digests the cache uses, bounded by entry count and (estimated) bytes —
a CSR graph is two native-int buffers, so the accounting is tight.

Losing an entry is never incorrect: an ``update`` whose parent was
evicted fails with :class:`repro.errors.StaleParentError` and the client
falls back to a full ``solve`` of the child graph, which re-seeds the
store.  Thread-safe for the same reason the cache is — the gateway reads
on the event loop while solves complete in worker threads.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any

from repro.graphs.graph import Graph

__all__ = ["GraphStore", "estimate_graph_nbytes"]


def estimate_graph_nbytes(graph: Graph) -> int:
    """In-memory footprint of one stored graph: the two CSR buffers plus
    a fixed object overhead (lazy ``adj``/set views are not retained at
    store time and are not charged)."""
    offsets, indices = graph.csr()
    return 256 + offsets.itemsize * len(offsets) + indices.itemsize * len(indices)


class GraphStore:
    """An LRU map ``fingerprint -> Graph`` with byte accounting.

    Parameters
    ----------
    max_entries:
        Entry-count bound (≥ 1).
    max_bytes:
        Bound on the summed :func:`estimate_graph_nbytes`; ``None``
        disables byte-based eviction.
    """

    def __init__(
        self,
        max_entries: int = 128,
        max_bytes: int | None = 512 * 1024 * 1024,
    ):
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self._lock = threading.Lock()
        self._entries: OrderedDict[str, tuple[Graph, int]] = OrderedDict()
        self._bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: str) -> Graph | None:
        """The stored graph for ``key``, or None."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry[0]

    def put(self, key: str, graph: Graph) -> None:
        """Insert (or refresh) ``key``, evicting LRU entries past the bounds."""
        nbytes = estimate_graph_nbytes(graph)
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= old[1]
            self._entries[key] = (graph, nbytes)
            self._bytes += nbytes
            while len(self._entries) > self.max_entries or (
                self.max_bytes is not None
                and self._bytes > self.max_bytes
                and len(self._entries) > 1
            ):
                _, (_, victim_bytes) = self._entries.popitem(last=False)
                self._bytes -= victim_bytes
                self.evictions += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._bytes = 0

    def stats(self) -> dict[str, Any]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "bytes": self._bytes,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }
