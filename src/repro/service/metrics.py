"""Service-side request metrics: latency percentiles, QPS, queue depth.

The first subsystem in this repo for which *requests per second* is a
first-class measured quantity.  Kept dependency-free and cheap on the
hot path: recording a request is an append to a bounded ring plus a few
counter increments; percentile math happens only when a snapshot is
asked for — and only when samples arrived since the last one (the
sorted view is cached, so a tight metrics-poll loop costs O(1) per
scrape instead of re-sorting the full window).

Counters live on a :class:`repro.obs.meters.MetricsRegistry` — the same
instruments behind the server's ``metrics`` verb and its Prometheus
exposition — with the legacy attribute names (``completed``,
``rejected``, ...) preserved as read-through properties.  Shed and
failed requests are labelled by typed error kind
(:func:`error_kind`: ``overloaded``, ``shard_unavailable``,
``stale_parent``, ``update``, ``engine``, ``protocol``, ``cancelled``),
so a router shed and an engine rejection are distinguishable in stats.

Latencies feed a bounded reservoir (the most recent ``window`` samples),
so long-running servers report the *current* tail, not the all-time
mix.  Percentiles use the nearest-rank method on a sorted copy of the
window — exact for the window.
"""

from __future__ import annotations

import asyncio
import math
import threading
import time
from collections import deque
from typing import Any

from repro.errors import (
    IncrementalUpdateError,
    ServiceOverloadedError,
    ServiceProtocolError,
    ShardUnavailableError,
    StaleParentError,
)
from repro.obs.meters import MetricsRegistry

__all__ = ["LatencyWindow", "ServiceMetrics", "percentile", "error_kind"]


#: Error kinds that are *sheds* (admission refused; retriable) — they
#: count into the legacy ``rejected`` total.  Everything else counts as
#: ``failed``.
SHED_KINDS = frozenset({"overloaded", "shard_unavailable"})


def error_kind(exc: BaseException) -> str:
    """Map an exception to its wire/metrics error kind.

    Mirrors the server's reply taxonomy (docs/SERVICE.md): the string
    returned here is both the counter label and, for reply-layer errors,
    the ``error.type`` the client sees.
    """
    if isinstance(exc, ShardUnavailableError):
        return "shard_unavailable"
    if isinstance(exc, ServiceOverloadedError):
        return "overloaded"
    if isinstance(exc, StaleParentError):
        return "stale_parent"
    if isinstance(exc, IncrementalUpdateError):
        return "update"
    if isinstance(exc, ServiceProtocolError):
        return "protocol"
    if isinstance(exc, asyncio.CancelledError):
        return "cancelled"
    return "engine"


def percentile(sorted_samples: list[float], q: float) -> float:
    """Nearest-rank percentile of an ascending-sorted, non-empty list."""
    if not sorted_samples:
        raise ValueError("percentile of an empty sample set")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    # Nearest-rank uses ceil, not round: round()'s banker's rounding would
    # bias exact half-ranks one rank low (p50 of 5 samples must be the 3rd).
    rank = max(1, math.ceil(q / 100.0 * len(sorted_samples)))
    return sorted_samples[min(rank, len(sorted_samples)) - 1]


class LatencyWindow:
    """Bounded reservoir of recent latency samples with percentile queries.

    The ascending-sorted view is computed lazily and cached: ``record``
    marks it dirty, ``snapshot`` re-sorts only when samples arrived since
    the previous snapshot.  Metrics scrapes between requests are O(1).
    """

    def __init__(self, window: int = 8192):
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self._samples: deque[float] = deque(maxlen=window)
        self._sorted: list[float] | None = []
        self.count = 0  # all-time, beyond the window

    def record(self, latency_s: float) -> None:
        self._samples.append(latency_s)
        self.count += 1
        self._sorted = None

    def _sorted_view(self) -> list[float]:
        if self._sorted is None:
            self._sorted = sorted(self._samples)
        return self._sorted

    def snapshot(self) -> dict[str, float]:
        """``{count, p50_ms, p95_ms, p99_ms, max_ms}`` over the window."""
        ordered = self._sorted_view()
        if not ordered:
            return {"count": 0}
        return {
            "count": self.count,
            "window": len(ordered),
            "p50_ms": round(1000 * percentile(ordered, 50), 3),
            "p95_ms": round(1000 * percentile(ordered, 95), 3),
            "p99_ms": round(1000 * percentile(ordered, 99), 3),
            "max_ms": round(1000 * ordered[-1], 3),
        }


class ServiceMetrics:
    """Aggregated gateway metrics, exported as one JSON snapshot.

    Tracked per class of outcome: completed solves (split cached /
    coalesced / solved), rejections (load shedding), failures (engine
    errors) — the latter two labelled by :func:`error_kind` on the
    shared :class:`~repro.obs.meters.MetricsRegistry`.  ``queue_depth``
    is a gauge the batcher updates as requests enter and leave the
    dispatch queue; ``batches``/``batched_requests`` describe
    micro-batch shape.  Thread-safe for the same reason the cache is:
    completions are recorded from worker threads.
    """

    def __init__(
        self,
        latency_window: int = 8192,
        clock=time.monotonic,
        registry: MetricsRegistry | None = None,
    ):
        self._clock = clock
        self._lock = threading.Lock()
        self.started_at = clock()
        self.registry = registry if registry is not None else MetricsRegistry()
        self.registry.install_process_gauges()
        self._requests = self.registry.counter(
            "repro_requests_total",
            "Completed requests by outcome",
            labelnames=("outcome",),
        )
        self._errors = self.registry.counter(
            "repro_errors_total",
            "Shed and failed requests by typed error kind",
            labelnames=("kind",),
        )
        self._batches = self.registry.counter(
            "repro_batches_total", "Micro-batches dispatched"
        )
        self._batched_requests = self.registry.counter(
            "repro_batched_requests_total", "Requests carried by micro-batches"
        )
        self._latency_hist = self.registry.histogram(
            "repro_request_latency_seconds",
            "End-to-end gateway latency by outcome",
            labelnames=("outcome",),
        )
        self._queue_gauge = self.registry.gauge(
            "repro_queue_depth", "Outstanding admitted requests"
        )
        self._queue_peak_gauge = self.registry.gauge(
            "repro_queue_depth_peak", "High-water mark of the request queue"
        )
        self.latency = LatencyWindow(latency_window)
        self.cached_latency = LatencyWindow(latency_window)
        self.solved_latency = LatencyWindow(latency_window)
        self.coalesced_latency = LatencyWindow(latency_window)
        self.queue_depth = 0
        self.queue_depth_peak = 0

    # -- legacy attribute names (read-through to the registry) -------------

    @property
    def completed(self) -> int:
        return int(self._requests.total())

    @property
    def cached(self) -> int:
        return int(self._requests.value(outcome="cached"))

    @property
    def coalesced(self) -> int:
        return int(self._requests.value(outcome="coalesced"))

    @property
    def rejected(self) -> int:
        return int(
            sum(self._errors.value(kind=kind) for kind in SHED_KINDS)
        )

    @property
    def failed(self) -> int:
        return int(self._errors.total()) - self.rejected

    @property
    def batches(self) -> int:
        return int(self._batches.total())

    @property
    def batched_requests(self) -> int:
        return int(self._batched_requests.total())

    # -- recording (hot path) ---------------------------------------------

    def record_request(
        self, latency_s: float, cached: bool, coalesced: bool = False
    ) -> None:
        """One completed request.  ``coalesced`` marks a duplicate served
        by someone else's in-flight solve — kept out of the solved-path
        window so duplicate-heavy traffic doesn't distort the reported
        solve latency distribution."""
        outcome = "cached" if cached else ("coalesced" if coalesced else "solved")
        self._requests.inc(outcome=outcome)
        self._latency_hist.observe(latency_s, outcome=outcome)
        with self._lock:
            self.latency.record(latency_s)
            if cached:
                self.cached_latency.record(latency_s)
            elif coalesced:
                self.coalesced_latency.record(latency_s)
            else:
                self.solved_latency.record(latency_s)

    def record_rejected(self, kind: str = "overloaded") -> None:
        self._errors.inc(kind=kind)

    def record_failed(self, kind: str = "engine") -> None:
        self._errors.inc(kind=kind)

    def record_error(self, kind: str) -> None:
        """Count a reply-layer error (e.g. a malformed request) that never
        reached the gateway's shed/failed paths."""
        self._errors.inc(kind=kind)

    def record_batch(self, size: int) -> None:
        self._batches.inc()
        self._batched_requests.inc(size)

    def set_queue_depth(self, depth: int) -> None:
        with self._lock:
            self.queue_depth = depth
            self.queue_depth_peak = max(self.queue_depth_peak, depth)
        self._queue_gauge.set(depth)
        self._queue_peak_gauge.set(self.queue_depth_peak)

    # -- reporting ---------------------------------------------------------

    def errors_by_kind(self) -> dict[str, int]:
        snapshot = self._errors._snapshot()
        return {
            series["labels"][0]: int(series["value"])
            for series in snapshot["values"]
        }

    def snapshot(self) -> dict[str, Any]:
        """One JSON-serialisable view of everything above.

        ``qps`` is completed requests over total uptime — the long-run
        service rate, which open-loop load tests compare against their
        offered rate.
        """
        completed = self.completed
        cached = self.cached
        batches = self.batches
        batched_requests = self.batched_requests
        with self._lock:
            elapsed = max(1e-9, self._clock() - self.started_at)
            return {
                "uptime_s": round(elapsed, 3),
                "completed": completed,
                "cached": cached,
                "rejected": self.rejected,
                "failed": self.failed,
                "errors": self.errors_by_kind(),
                "qps": round(completed / elapsed, 2),
                "cache_hit_rate": round(
                    cached / completed if completed else 0.0, 4
                ),
                "coalesced": self.coalesced,
                "latency": self.latency.snapshot(),
                "latency_cached": self.cached_latency.snapshot(),
                "latency_solved": self.solved_latency.snapshot(),
                "latency_coalesced": self.coalesced_latency.snapshot(),
                "batches": batches,
                "mean_batch_size": round(
                    batched_requests / batches if batches else 0.0, 2
                ),
                "queue_depth": self.queue_depth,
                "queue_depth_peak": self.queue_depth_peak,
            }
