"""Service-side request metrics: latency percentiles, QPS, queue depth.

The first subsystem in this repo for which *requests per second* is a
first-class measured quantity.  Kept dependency-free and cheap on the
hot path: recording a request is an append to a bounded ring plus a few
counter increments; percentile math happens only when a snapshot is
asked for.

Latencies feed a bounded reservoir (the most recent ``window`` samples),
so long-running servers report the *current* tail, not the all-time
mix.  Percentiles use the nearest-rank method on a sorted copy of the
window — exact for the window, O(window log window) per snapshot.
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque
from typing import Any

__all__ = ["LatencyWindow", "ServiceMetrics", "percentile"]


def percentile(sorted_samples: list[float], q: float) -> float:
    """Nearest-rank percentile of an ascending-sorted, non-empty list."""
    if not sorted_samples:
        raise ValueError("percentile of an empty sample set")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    # Nearest-rank uses ceil, not round: round()'s banker's rounding would
    # bias exact half-ranks one rank low (p50 of 5 samples must be the 3rd).
    rank = max(1, math.ceil(q / 100.0 * len(sorted_samples)))
    return sorted_samples[min(rank, len(sorted_samples)) - 1]


class LatencyWindow:
    """Bounded reservoir of recent latency samples with percentile queries."""

    def __init__(self, window: int = 8192):
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self._samples: deque[float] = deque(maxlen=window)
        self.count = 0  # all-time, beyond the window

    def record(self, latency_s: float) -> None:
        self._samples.append(latency_s)
        self.count += 1

    def snapshot(self) -> dict[str, float]:
        """``{count, p50_ms, p95_ms, p99_ms, max_ms}`` over the window."""
        ordered = sorted(self._samples)
        if not ordered:
            return {"count": 0}
        return {
            "count": self.count,
            "window": len(ordered),
            "p50_ms": round(1000 * percentile(ordered, 50), 3),
            "p95_ms": round(1000 * percentile(ordered, 95), 3),
            "p99_ms": round(1000 * percentile(ordered, 99), 3),
            "max_ms": round(1000 * ordered[-1], 3),
        }


class ServiceMetrics:
    """Aggregated gateway metrics, exported as one JSON snapshot.

    Tracked per class of outcome: completed solves (split cached /
    solved), rejections (load shedding), failures (engine errors).
    ``queue_depth`` is a gauge the batcher updates as requests enter and
    leave the dispatch queue; ``batches``/``batched_requests`` describe
    micro-batch shape.  Thread-safe for the same reason the cache is:
    completions are recorded from worker threads.
    """

    def __init__(self, latency_window: int = 8192, clock=time.monotonic):
        self._clock = clock
        self._lock = threading.Lock()
        self.started_at = clock()
        self.latency = LatencyWindow(latency_window)
        self.cached_latency = LatencyWindow(latency_window)
        self.solved_latency = LatencyWindow(latency_window)
        self.coalesced_latency = LatencyWindow(latency_window)
        self.completed = 0
        self.cached = 0
        self.coalesced = 0
        self.rejected = 0
        self.failed = 0
        self.batches = 0
        self.batched_requests = 0
        self.queue_depth = 0
        self.queue_depth_peak = 0

    # -- recording (hot path) ---------------------------------------------

    def record_request(
        self, latency_s: float, cached: bool, coalesced: bool = False
    ) -> None:
        """One completed request.  ``coalesced`` marks a duplicate served
        by someone else's in-flight solve — kept out of the solved-path
        window so duplicate-heavy traffic doesn't distort the reported
        solve latency distribution."""
        with self._lock:
            self.completed += 1
            self.latency.record(latency_s)
            if cached:
                self.cached += 1
                self.cached_latency.record(latency_s)
            elif coalesced:
                self.coalesced += 1
                self.coalesced_latency.record(latency_s)
            else:
                self.solved_latency.record(latency_s)

    def record_rejected(self) -> None:
        with self._lock:
            self.rejected += 1

    def record_failed(self) -> None:
        with self._lock:
            self.failed += 1

    def record_batch(self, size: int) -> None:
        with self._lock:
            self.batches += 1
            self.batched_requests += size

    def set_queue_depth(self, depth: int) -> None:
        with self._lock:
            self.queue_depth = depth
            self.queue_depth_peak = max(self.queue_depth_peak, depth)

    # -- reporting ---------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """One JSON-serialisable view of everything above.

        ``qps`` is completed requests over total uptime — the long-run
        service rate, which open-loop load tests compare against their
        offered rate.
        """
        with self._lock:
            elapsed = max(1e-9, self._clock() - self.started_at)
            return {
                "uptime_s": round(elapsed, 3),
                "completed": self.completed,
                "cached": self.cached,
                "rejected": self.rejected,
                "failed": self.failed,
                "qps": round(self.completed / elapsed, 2),
                "cache_hit_rate": round(
                    self.cached / self.completed if self.completed else 0.0, 4
                ),
                "coalesced": self.coalesced,
                "latency": self.latency.snapshot(),
                "latency_cached": self.cached_latency.snapshot(),
                "latency_solved": self.solved_latency.snapshot(),
                "latency_coalesced": self.coalesced_latency.snapshot(),
                "batches": self.batches,
                "mean_batch_size": round(
                    self.batched_requests / self.batches if self.batches else 0.0, 2
                ),
                "queue_depth": self.queue_depth,
                "queue_depth_peak": self.queue_depth_peak,
            }
