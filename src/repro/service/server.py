"""Newline-delimited-JSON coloring server over TCP (stdlib asyncio only).

Protocol (one JSON object per line, UTF-8):

Request::

    {"id": 7, "op": "solve",
     "graph": {"n": 5, "edges": [[0, 1], [1, 2], ...]},
     "config": {"algorithm": "auto", "seed": 0}}

* ``op`` — ``"solve"``, ``"update"`` (edge delta against a served
  instance, addressed by ``parent_digest``; see
  :meth:`ColoringServer._reply_for_update` and docs/INCREMENTAL.md),
  ``"stats"`` (gateway/cache/metrics snapshot), ``"metrics"`` (the
  instrument registry, JSON or Prometheus text — see
  docs/OBSERVABILITY.md) or ``"ping"``.
* ``trace`` (optional) — a ``{"trace_id", "span_id"}`` context from an
  upstream tier; the server continues that trace instead of rooting its
  own (unknown extra fields, this one included, never break old servers).
* ``graph.edges`` — undirected edge pairs.  With ``graph.n`` present the
  ids must be ``0..n-1`` (isolated nodes allowed); without it, arbitrary
  integer ids are compacted ascending — the same normalisation as
  :func:`repro.cli.load_edge_list` — and the reply carries ``node_ids``
  mapping color index back to payload id.
* ``config`` — any subset of the :class:`repro.api.SolverConfig` fields
  (``params`` as a ``RandomizedParams`` field dict).

Reply (order may interleave across a connection's pipelined requests —
match on ``id``)::

    {"id": 7, "ok": true, "cached": false, "fingerprint": "…",
     "result": { …ColoringResult.as_dict()… }}

    {"id": 7, "ok": false,
     "error": {"type": "overloaded", "name": "ServiceOverloadedError",
               "message": "…"}}

``error.type`` is ``"overloaded"`` (shed load, retry with backoff),
``"protocol"`` (malformed request — don't retry), ``"engine"`` (the
solver rejected the instance, e.g. a non-nice graph sent to a
``needs_nice`` algorithm), ``"stale_parent"`` (an ``update`` named a
parent digest the server no longer holds — fall back to a full solve)
or ``"update"`` (a rejected delta: edge already present / not present).
Each request line is handled in its own task, so one slow solve never
blocks the connection — that concurrency is what feeds the gateway's
micro-batches.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
from array import array
from typing import Any

from repro.api.config import SolverConfig
from repro.core.randomized import RandomizedParams
from repro.errors import (
    GraphError,
    IncrementalUpdateError,
    ReproError,
    ServiceOverloadedError,
    ServiceProtocolError,
    StaleParentError,
)
from repro.graphs.graph import Graph
from repro.obs.meters import render_prometheus
from repro.obs.trace import Tracer
from repro.service.batcher import BatchingGateway, request_cost
from repro.service.fingerprint import (
    combine_fingerprints,
    config_fingerprint,
    edge_keys_fingerprint,
)

__all__ = [
    "ColoringServer",
    "NdjsonEndpoint",
    "ParsedGraphPayload",
    "parse_graph_payload",
    "parse_edge_pairs",
    "graph_from_payload",
    "config_from_payload",
    "MAX_LINE_BYTES",
]

_CONFIG_FIELDS = {f.name for f in dataclasses.fields(SolverConfig)} - {"on_phase"}
_PARAMS_FIELDS = {f.name for f in dataclasses.fields(RandomizedParams)}

# Stream-reader line limit.  asyncio's 64 KiB default caps requests at a
# few thousand edges; a million-edge graph payload is ~14 MB of JSON, so
# both the server and the async client raise the limit to this bound
# (it is also the hard cap on accepted request size — one more layer of
# admission control).
MAX_LINE_BYTES = 64 * 1024 * 1024


_MAX_NODE = 2**31  # ids must pack into (u << 32) | v edge keys and 'i' CSR buffers


class ParsedGraphPayload:
    """A request's graph half, normalised but *not yet constructed*.

    Carries everything the cache probe needs (``n`` plus the packed edge
    keys that :func:`repro.service.fingerprint.edge_keys_fingerprint`
    hashes) and a :meth:`build` that performs the full checked
    :class:`Graph` construction — which the server only invokes on a
    cache miss, keeping hits free of construction and validation cost.
    Endpoints are kept as two flat ``array`` columns; Python-level
    per-edge work on the hit path is the single packed-key comprehension.
    """

    __slots__ = ("n", "_us", "_vs", "edge_keys", "node_ids")

    def __init__(self, n: int, us: array, vs: array, node_ids: list[int] | None):
        self.n = n
        self._us = us
        self._vs = vs
        self.node_ids = node_ids
        self.edge_keys = [
            (u << 32) | v if u < v else (v << 32) | u for u, v in zip(us, vs)
        ]

    @property
    def pairs(self) -> list[tuple[int, int]]:
        return list(zip(self._us, self._vs))

    def build(self) -> Graph:
        """The checked construction (raises ``GraphError`` on self-loops,
        duplicate edges, out-of-range endpoints)."""
        return Graph(self.n, self.pairs)


def _flat_int_pairs(edges_raw: Any, what: str) -> array:
    """Shape-check a JSON list of ``[u, v]`` pairs into one flat int64
    column (the shared core of the ``solve`` graph payload and the
    ``update`` verb's deltas).  Raises :class:`ServiceProtocolError` on
    anything that is not a list of integer pairs."""
    if not isinstance(edges_raw, list):
        raise ServiceProtocolError(f"{what} must be a list of [u, v] pairs")
    try:
        # Per-pair arity first (C-speed via map): a total-length check
        # alone would let [[0,1,2],[3]] re-pair silently into edges the
        # client never sent.  Then array('q') rejects non-int items.
        if edges_raw and set(map(len, edges_raw)) != {2}:
            raise ServiceProtocolError(f"{what} must contain [u, v] pairs")
        return array("q", (x for pair in edges_raw for x in pair))
    except (TypeError, OverflowError):
        raise ServiceProtocolError(
            f"{what} must contain [u, v] integer pairs"
        ) from None


def parse_edge_pairs(edges_raw: Any, what: str) -> list[tuple[int, int]]:
    """Normalise an ``update`` delta: :func:`_flat_int_pairs` plus the
    packed-id range check (delta endpoints name parent nodes, which are
    always ``0 <= id < 2**31`` — see ``_MAX_NODE``)."""
    flat = _flat_int_pairs(edges_raw, what)
    if len(flat) and not (0 <= min(flat) and max(flat) < _MAX_NODE):
        raise ServiceProtocolError(
            f"{what} endpoints must lie in 0..{_MAX_NODE - 1}"
        )
    return list(zip(flat[0::2], flat[1::2]))


def parse_graph_payload(payload: Any) -> ParsedGraphPayload:
    """Normalise a request's ``graph`` object without building the graph.

    With ``n`` present the ids must be ``0..n-1``; without it, arbitrary
    integer ids are compacted ascending (``node_ids`` records the
    mapping when it isn't the identity).  Malformed payloads raise
    :class:`ServiceProtocolError`; *structural* problems (self-loops,
    duplicate edges) are deliberately left to :meth:`ParsedGraphPayload.
    build` — their edge keys can never match a valid cached instance.
    """
    if not isinstance(payload, dict):
        raise ServiceProtocolError("graph must be an object with 'edges'")
    flat = _flat_int_pairs(payload.get("edges"), "graph.edges")
    if "n" in payload:
        n = payload["n"]
        if not isinstance(n, int) or isinstance(n, bool) or n < 0:
            raise ServiceProtocolError(f"graph.n must be a non-negative int, got {n!r}")
        if n > _MAX_NODE:
            raise ServiceProtocolError(f"graph.n must be <= {_MAX_NODE}")
        if len(flat) and not (0 <= min(flat) and max(flat) < n):
            raise ServiceProtocolError(
                f"edge endpoints must lie in 0..{n - 1} when graph.n is given"
            )
        return ParsedGraphPayload(n, flat[0::2], flat[1::2], None)
    ids = sorted(set(flat))
    if len(ids) > _MAX_NODE:
        raise ServiceProtocolError(f"too many distinct node ids (> {_MAX_NODE})")
    index = {node: i for i, node in enumerate(ids)}
    us = array("q", (index[u] for u in flat[0::2]))
    vs = array("q", (index[v] for v in flat[1::2]))
    identity = ids == list(range(len(ids)))
    return ParsedGraphPayload(len(ids), us, vs, None if identity else list(ids))


def graph_from_payload(payload: Any) -> tuple[Graph, list[int] | None]:
    """Eager parse: :func:`parse_graph_payload` + checked construction.

    ``node_ids`` is None when the payload ids were already ``0..n-1``
    (no relabeling happened); otherwise ``node_ids[i]`` is the payload id
    of internal node ``i``.  Malformed payloads raise
    :class:`ServiceProtocolError`; structural problems (self-loops,
    duplicate edges) surface as :class:`repro.errors.GraphError` from the
    checked :class:`Graph` constructor.
    """
    parsed = parse_graph_payload(payload)
    return parsed.build(), parsed.node_ids


def config_from_payload(payload: Any) -> SolverConfig:
    """Parse a request's ``config`` object (missing/None = defaults)."""
    if payload is None:
        return SolverConfig()
    if not isinstance(payload, dict):
        raise ServiceProtocolError("config must be an object")
    unknown = set(payload) - _CONFIG_FIELDS
    if unknown:
        raise ServiceProtocolError(
            f"unknown config fields {sorted(unknown)}; allowed: "
            f"{sorted(_CONFIG_FIELDS)}"
        )
    fields = dict(payload)
    params = fields.get("params")
    if params is not None:
        if not isinstance(params, dict) or set(params) - _PARAMS_FIELDS:
            raise ServiceProtocolError(
                f"config.params must be an object with fields from "
                f"{sorted(_PARAMS_FIELDS)}"
            )
        fields["params"] = RandomizedParams(**params)
    try:
        return SolverConfig(**fields)
    except TypeError as exc:
        raise ServiceProtocolError(f"bad config: {exc}") from None


def _error_reply(request_id: Any, kind: str, exc: BaseException) -> dict[str, Any]:
    return {
        "id": request_id,
        "ok": False,
        "error": {
            "type": kind,
            "name": type(exc).__name__,
            "message": str(exc),
        },
    }


class NdjsonEndpoint:
    """Shared scaffolding for NDJSON-over-TCP endpoints.

    Owns the asyncio listener, the per-connection read loop, the
    per-line request tasks (one slow request never blocks its
    connection), the write lock, the off-loop encoding of oversized
    replies — and the two shutdown flavours: :meth:`close` (immediate,
    for tests and in-process harnesses whose traffic has finished) and
    :meth:`shutdown` (graceful: stop accepting, drain in-flight request
    tasks up to a bounded deadline, cancel stragglers, then close
    connections — what ``repro serve`` runs on SIGTERM/SIGINT).

    Subclasses implement :meth:`_reply_for` (bytes in, reply dict out)
    plus the optional :meth:`_on_start` / :meth:`_on_close` lifecycle
    hooks.  :class:`ColoringServer` is the solving endpoint; the shard
    router (:mod:`repro.service.sharding.router`) is a forwarding one.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8512):
        self.host = host
        self.port = port
        self._server: asyncio.base_events.Server | None = None
        self._conn_writers: set[asyncio.StreamWriter] = set()
        self._request_tasks: set[asyncio.Task] = set()

    # lifecycle hooks -----------------------------------------------------

    def _on_start(self) -> None:
        """Called before binding (warm pools here)."""

    async def _on_close(self) -> None:
        """Called after the listener and connections are gone."""

    async def _reply_for(self, line: bytes) -> dict[str, Any]:
        raise NotImplementedError

    # lifecycle -----------------------------------------------------------

    async def start(self) -> tuple[str, int]:
        """Bind and start accepting; returns the bound ``(host, port)``."""
        self._on_start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port, limit=MAX_LINE_BYTES
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self.host, self.port

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def close(self) -> None:
        """Immediate close: stop the listener, then run :meth:`_on_close`.

        In-flight request tasks are left to finish on their own (callers
        of this flavour have already drained their traffic); use
        :meth:`shutdown` for the bounded-drain variant.
        """
        if self._server is not None:
            self._server.close()
            await self._wait_listener_closed()
            self._server = None
        await self._on_close()

    async def shutdown(self, drain_s: float = 5.0) -> None:
        """Graceful close: drain in-flight requests, bounded by ``drain_s``.

        New connections are refused immediately; requests already being
        served get up to ``drain_s`` seconds to complete and write their
        replies, then are cancelled.  Either way every connection is
        closed and :meth:`_on_close` runs, so the call is also the
        idempotent teardown path.
        """
        if self._server is not None:
            self._server.close()
        pending = {t for t in self._request_tasks if not t.done()}
        if pending:
            done, late = await asyncio.wait(pending, timeout=max(0.0, drain_s))
            for task in late:
                task.cancel()
            if late:
                await asyncio.gather(*late, return_exceptions=True)
        for writer in list(self._conn_writers):
            writer.close()
        if self._server is not None:
            await self._wait_listener_closed()
            self._server = None
        await self._on_close()

    async def _wait_listener_closed(self) -> None:
        # Python 3.12's wait_closed also waits on connection handlers;
        # ours exit when their writers close, but a misbehaving peer must
        # not be able to wedge shutdown — bound the wait.
        assert self._server is not None
        try:
            await asyncio.wait_for(self._server.wait_closed(), timeout=5.0)
        except asyncio.TimeoutError:  # pragma: no cover - defensive
            pass

    # -- connection handling ----------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        write_lock = asyncio.Lock()
        request_tasks: set[asyncio.Task] = set()
        self._conn_writers.add(writer)
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                if not line.strip():
                    continue
                task = asyncio.get_running_loop().create_task(
                    self._handle_line(line, writer, write_lock)
                )
                request_tasks.add(task)
                task.add_done_callback(request_tasks.discard)
                self._request_tasks.add(task)
                task.add_done_callback(self._request_tasks.discard)
        except (
            ConnectionResetError,
            asyncio.IncompleteReadError,
            asyncio.LimitOverrunError,
            ValueError,  # line past MAX_LINE_BYTES: drop the connection
        ):
            pass
        finally:
            self._conn_writers.discard(writer)
            if request_tasks:
                await asyncio.gather(*request_tasks, return_exceptions=True)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    # Results with color vectors past this length have their reply JSON
    # encoded off the event loop: serialising a multi-megabyte reply
    # inline would stall every connection (the same head-of-line blocking
    # the lazy request-side build avoids).  Small replies stay inline —
    # an executor hop costs more than encoding them.
    _INLINE_ENCODE_MAX_COLORS = 100_000

    async def _handle_line(
        self, line: bytes, writer: asyncio.StreamWriter, write_lock: asyncio.Lock
    ) -> None:
        reply = await self._reply_for(line)
        result = reply.get("result")

        def encode() -> bytes:
            return (json.dumps(reply, separators=(",", ":")) + "\n").encode("utf-8")

        if result and len(result.get("colors", ())) > self._INLINE_ENCODE_MAX_COLORS:
            payload = await asyncio.get_running_loop().run_in_executor(None, encode)
        else:
            payload = encode()
        async with write_lock:
            try:
                writer.write(payload)
                await writer.drain()
            except (ConnectionResetError, BrokenPipeError):
                pass


class ColoringServer(NdjsonEndpoint):
    """The asyncio TCP front end over one :class:`BatchingGateway`.

    Usage::

        server = ColoringServer(port=0, workers=2, max_queue=128)
        await server.start()          # binds; server.port is the real port
        await server.serve_forever()  # or keep doing other loop work

    ``port=0`` binds an ephemeral port (tests and the in-process load
    harness use this).  All gateway knobs pass through as kwargs.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8512,
        gateway: BatchingGateway | None = None,
        tracer: Tracer | None = None,
        **gateway_kwargs: Any,
    ):
        super().__init__(host, port)
        if gateway is None:
            gateway = BatchingGateway(tracer=tracer, **gateway_kwargs)
        self.gateway = gateway
        # One tracer per tier: the server's request spans and the
        # gateway's child spans share it (a remote router context on the
        # request forces sampling on for the whole tier).
        self.tracer = tracer if tracer is not None else gateway.tracer

    def _on_start(self) -> None:
        self.gateway.warm()

    async def _on_close(self) -> None:
        await self.gateway.close()

    def _reply_for_metrics(self, request_id: Any, request: dict[str, Any]) -> dict[str, Any]:
        """The ``metrics`` op: the registry snapshot (JSON or Prometheus).

        ``{"op": "metrics"}`` returns ``{"metrics": {…registry
        snapshot…}}``; ``{"op": "metrics", "format": "prometheus"}``
        returns ``{"metrics_text": "…exposition…"}``.  The router
        aggregates these per shard into one fleet view.
        """
        fmt = request.get("format", "json")
        snapshot = self.gateway.metrics.registry.as_dict()
        if fmt == "prometheus":
            return {
                "id": request_id, "ok": True,
                "metrics_text": render_prometheus(snapshot),
            }
        if fmt != "json":
            return _error_reply(
                request_id,
                "protocol",
                ServiceProtocolError(
                    f"unknown metrics format {fmt!r}; expected 'json' or "
                    "'prometheus'"
                ),
            )
        return {"id": request_id, "ok": True, "metrics": snapshot}

    async def _reply_for(self, line: bytes) -> dict[str, Any]:
        request_id: Any = None
        try:
            request = json.loads(line)
            if not isinstance(request, dict):
                raise ServiceProtocolError("request must be a JSON object")
            request_id = request.get("id")
            op = request.get("op", "solve")
            if op == "ping":
                return {"id": request_id, "ok": True, "pong": True}
            if op == "stats":
                return {"id": request_id, "ok": True, "stats": self.gateway.stats()}
            if op == "metrics":
                return self._reply_for_metrics(request_id, request)
            if op == "update":
                return await self._reply_for_update(request_id, request)
            if op != "solve":
                raise ServiceProtocolError(f"unknown op {op!r}")
            parsed = parse_graph_payload(request.get("graph"))
            config = config_from_payload(request.get("config"))
        except ServiceProtocolError as exc:
            self.gateway.metrics.record_error("protocol")
            return _error_reply(request_id, "protocol", exc)
        except (json.JSONDecodeError, ReproError) as exc:
            self.gateway.metrics.record_error("protocol")
            return _error_reply(request_id, "protocol", exc)

        # Hash the payload directly (edge_keys_fingerprint) so cache hits
        # never pay graph construction + validation; the checked build
        # runs lazily, off the event loop, only for requests that solve.
        fingerprint = combine_fingerprints(
            edge_keys_fingerprint(parsed.n, parsed.edge_keys),
            config_fingerprint(config.without_observer()),
        )
        cost = request_cost(parsed.n, len(parsed.edge_keys))
        node_ids = parsed.node_ids
        # Root here when untraced upstream; a router's wire context
        # (request["trace"]) continues the fleet-wide trace instead.
        span = self.tracer.start_span(
            "server.request",
            remote_parent=request.get("trace"),
            attrs={"op": "solve", "cost": cost},
        )
        try:
            reply = await self.gateway.submit(
                parsed.build, config, fingerprint=fingerprint, cost=cost,
                parent_span=span,
            )
        except ServiceOverloadedError as exc:
            span.set_attr("error", "overloaded").end()
            return _error_reply(request_id, "overloaded", exc)
        except GraphError as exc:
            # deferred structural validation (self-loops, duplicate edges)
            span.set_attr("error", "protocol").end()
            return _error_reply(request_id, "protocol", exc)
        except ReproError as exc:
            span.set_attr("error", "engine").end()
            return _error_reply(request_id, "engine", exc)
        span.set_attr("cached", reply.cached).end()
        body: dict[str, Any] = {
            "id": request_id,
            "ok": True,
            "cached": reply.cached,
            "fingerprint": reply.fingerprint,
            "result": reply.result.as_dict(),
        }
        if node_ids is not None:
            body["node_ids"] = node_ids
        return body

    async def _reply_for_update(
        self, request_id: Any, request: dict[str, Any]
    ) -> dict[str, Any]:
        """The ``update`` op: an edge delta against a served instance.

        Request shape (see docs/SERVICE.md and docs/INCREMENTAL.md)::

            {"id": 9, "op": "update", "parent_digest": "…",
             "edges_added": [[u, v], ...], "edges_removed": [[u, v], ...],
             "backend": "auto" | "dynamic" | "immutable",
             "config": { … SolverConfig fields for the re-solve fallback … }}

        ``backend`` (optional, default ``"auto"``) picks the chain
        engine's delta-application mode when this update has to create
        one; long-lived streaming clients send ``"dynamic"`` for the
        in-place sustained-ops price from the first op.  It never enters
        the child digest — results are backend-equivalent.

        The reply mirrors ``solve`` plus ``parent_digest`` and an
        ``update`` block with the repair statistics; ``fingerprint`` is
        the child digest — pass it as the next ``parent_digest`` to
        chain further updates.
        """
        parent_digest = request.get("parent_digest")
        if not isinstance(parent_digest, str) or not parent_digest:
            return _error_reply(
                request_id,
                "protocol",
                ServiceProtocolError("update needs a string parent_digest"),
            )
        backend = request.get("backend", "auto")
        if backend not in ("auto", "dynamic", "immutable"):
            return _error_reply(
                request_id,
                "protocol",
                ServiceProtocolError(
                    f"unknown update backend {backend!r}; expected "
                    "'auto', 'dynamic' or 'immutable'"
                ),
            )
        try:
            added = parse_edge_pairs(request.get("edges_added", []), "edges_added")
            removed = parse_edge_pairs(
                request.get("edges_removed", []), "edges_removed"
            )
            config = config_from_payload(request.get("config"))
        except ServiceProtocolError as exc:
            self.gateway.metrics.record_error("protocol")
            return _error_reply(request_id, "protocol", exc)
        span = self.tracer.start_span(
            "server.request",
            remote_parent=request.get("trace"),
            attrs={"op": "update"},
        )
        try:
            reply = await self.gateway.submit_update(
                parent_digest, added, removed, config, backend=backend,
                parent_span=span,
            )
        except ServiceOverloadedError as exc:
            span.set_attr("error", "overloaded").end()
            return _error_reply(request_id, "overloaded", exc)
        except ServiceProtocolError as exc:
            # defensive: the fingerprint layer re-checks packed-id range
            span.set_attr("error", "protocol").end()
            return _error_reply(request_id, "protocol", exc)
        except StaleParentError as exc:
            span.set_attr("error", "stale_parent").end()
            return _error_reply(request_id, "stale_parent", exc)
        except (IncrementalUpdateError, GraphError) as exc:
            # rejected delta (edge already present / not present, bad
            # endpoints): the client's request is wrong, not the engine
            span.set_attr("error", "update").end()
            return _error_reply(request_id, "update", exc)
        except ReproError as exc:
            span.set_attr("error", "engine").end()
            return _error_reply(request_id, "engine", exc)
        span.set_attr("cached", reply.cached).end()
        return {
            "id": request_id,
            "ok": True,
            "cached": reply.cached,
            "fingerprint": reply.fingerprint,
            "parent_digest": reply.parent_digest,
            "update": reply.update,
            "result": reply.result.as_dict(),
        }
