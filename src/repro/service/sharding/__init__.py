"""Horizontal sharding for the coloring service.

One box is not "millions of users": this package scales the
single-process service (:mod:`repro.service`) out to N worker processes
behind one front door, with *zero* protocol changes for clients.

The pieces — see each module's docstring for the contracts:

* :class:`~repro.service.sharding.hashring.HashRing` — consistent
  hashing with virtual nodes over the content-addressed request
  digests; a shard joining/leaving remaps only ≈1/N of the keyspace.
* :class:`~repro.service.sharding.worker.ShardWorker` — today's
  ``ColoringServer`` + gateway as a supervised child process (port-file
  boot handshake, health checks, bounded restart-with-backoff).
* :class:`~repro.service.sharding.supervisor.ShardSupervisor` — fleet
  bring-up, the liveness/restart policy loop, graceful stop.
* :class:`~repro.service.sharding.router.ShardRouter` — the NDJSON
  front tier: routes ``solve``/``update`` by digest through pipelined
  per-shard connections (update chains stay on the shard owning their
  root), aggregates per-shard stats into one cluster snapshot.

Entry point: ``repro serve --shards N`` (see :mod:`repro.cli`);
benchmark: ``benchmarks/bench_s3_sharded.py``; docs:
``docs/SERVICE.md`` (sharding section).
"""

from repro.service.sharding.hashring import DEFAULT_VNODES, HashRing
from repro.service.sharding.router import ShardRouter
from repro.service.sharding.supervisor import ShardSupervisor
from repro.service.sharding.worker import ShardWorker

__all__ = [
    "DEFAULT_VNODES",
    "HashRing",
    "ShardRouter",
    "ShardSupervisor",
    "ShardWorker",
]
