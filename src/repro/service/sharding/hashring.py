"""Consistent hashing with virtual nodes over the request-digest keyspace.

The service's request fingerprints (``r1:…`` solve keys, ``u1:…`` update
keys — :mod:`repro.service.fingerprint`) are content addresses: a digest
fully determines its result, independent of *where* it is computed.
That makes the serving layer shardable with no coordination at all —
each digest just needs a stable owner, and each shard's ``ResultCache``
and ``GraphStore`` then hold exactly the keys of its arc.

:class:`HashRing` provides that ownership map the classic way:

* every shard contributes ``vnodes`` points on a 64-bit ring, derived
  by hashing ``"vn:{shard_id}:{i}"`` — many small arcs per shard smooth
  out the variance one arc per shard would have (±20% balance at 128
  vnodes is the tested contract);
* a key hashes to one point and is owned by the first shard point at or
  clockwise after it;
* adding or removing a shard moves only the arcs adjacent to *its*
  points — an expected ``1/N`` fraction of the keyspace — so N-1 of N
  shards keep their caches warm through membership changes.

Hashes are sha256-based and versioned by the ``vn:``/``key:`` domain
tags, so placement is stable across processes, machines and Python
versions (``hash()`` randomization never enters).  Pure data structure:
no I/O, no clock — the router and supervisor own liveness.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Hashable, Iterable

__all__ = ["HashRing", "DEFAULT_VNODES"]

#: Virtual nodes per shard: enough for ±20% arc balance, small enough
#: that ring rebuilds (rare: membership changes only) stay trivial.
DEFAULT_VNODES = 128


def _point(label: str) -> int:
    """A stable 64-bit ring coordinate for a label."""
    return int.from_bytes(
        hashlib.sha256(label.encode("utf-8")).digest()[:8], "big"
    )


class HashRing:
    """Consistent-hash ownership of digest strings over named shards.

    Parameters
    ----------
    shard_ids:
        Initial members (any hashable, stringified into vnode labels —
        the router uses ``"shard-0"``-style stable names so a restarted
        worker keeps its arc).
    vnodes:
        Ring points per shard (≥ 1).
    """

    def __init__(
        self,
        shard_ids: Iterable[Hashable] = (),
        vnodes: int = DEFAULT_VNODES,
    ):
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = vnodes
        self._members: dict[Hashable, list[int]] = {}
        # Sorted ring of (point, tiebreak, shard_id); the stringified
        # tiebreak keeps tuple comparison total even if two shards'
        # points ever collide (and regardless of shard-id types).
        self._ring: list[tuple[int, str, Hashable]] = []
        self._points: list[int] = []
        for shard_id in shard_ids:
            self.add(shard_id)

    # -- membership --------------------------------------------------------

    def add(self, shard_id: Hashable) -> None:
        """Join ``shard_id``, claiming its ``vnodes`` arcs."""
        if shard_id in self._members:
            raise ValueError(f"shard {shard_id!r} is already on the ring")
        points = [
            _point(f"vn:{shard_id}:{i}") for i in range(self.vnodes)
        ]
        self._members[shard_id] = points
        tag = str(shard_id)
        for p in points:
            bisect.insort(self._ring, (p, tag, shard_id))
        self._points = [entry[0] for entry in self._ring]

    def remove(self, shard_id: Hashable) -> None:
        """Leave the ring; ``shard_id``'s arcs fall to their successors."""
        if shard_id not in self._members:
            raise ValueError(f"shard {shard_id!r} is not on the ring")
        del self._members[shard_id]
        self._ring = [e for e in self._ring if e[2] != shard_id]
        self._points = [entry[0] for entry in self._ring]

    # -- lookup ------------------------------------------------------------

    def owner(self, digest: str) -> Hashable:
        """The shard owning ``digest`` (first point clockwise from its
        coordinate).  Raises :class:`ValueError` on an empty ring."""
        if not self._ring:
            raise ValueError("cannot route on an empty hash ring")
        coordinate = _point(f"key:{digest}")
        index = bisect.bisect_right(self._points, coordinate)
        if index == len(self._points):  # wrap past 12 o'clock
            index = 0
        return self._ring[index][2]

    def spread(self, digests: Iterable[str]) -> dict[Hashable, int]:
        """Owner histogram over ``digests`` (balance diagnostics/tests)."""
        counts: dict[Hashable, int] = {shard: 0 for shard in self._members}
        for digest in digests:
            counts[self.owner(digest)] += 1
        return counts

    # -- views -------------------------------------------------------------

    @property
    def shards(self) -> list[Hashable]:
        """Current members, in join order."""
        return list(self._members)

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, shard_id: Hashable) -> bool:
        return shard_id in self._members

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"HashRing(shards={len(self._members)}, vnodes={self.vnodes}, "
            f"points={len(self._ring)})"
        )
