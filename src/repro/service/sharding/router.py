"""The shard router: one NDJSON front door over N shard workers.

Clients connect to :class:`ShardRouter` exactly as they would to a
single :class:`repro.service.server.ColoringServer` — same protocol,
same replies — and the router forwards each request to the shard owning
its digest arc:

* ``solve`` — the router computes the *exact* server-side fingerprint
  (``edge_keys_fingerprint + config_fingerprint``, the cache key) from
  the raw payload and routes by :meth:`HashRing.owner`.  Identical
  requests therefore always land on the same shard, so per-shard
  ``ResultCache``/``GraphStore`` partitions hold disjoint arcs of the
  keyspace and coalescing/caching work exactly as in the single-process
  service — and replies stay bit-identical to it.
* ``update`` — routed by the shard that *owns the chain*: child digests
  are recorded shard-side-sticky in a bounded LRU as replies stream
  back (a ``u1:`` child hashes to an arbitrary arc, but its chain-head
  engine lives where its root ``r1:`` parent landed), falling back to
  ``ring.owner(parent_digest)`` for roots.  Update chains therefore
  never cross shards; a forgotten mapping surfaces as the protocol's
  existing retriable ``stale_parent``.
* ``stats`` — fanned out to every shard and aggregated into one cluster
  snapshot (summed counters, worst-shard latency percentiles) that
  keeps the single-server stats shape, plus ``router`` and per-shard
  sections.
* ``ping`` — answered locally with the fleet's liveness.

Transport: one pipelined, auto-reconnecting NDJSON connection per shard
(:class:`_ShardLink` — the :class:`repro.service.client.
AsyncColoringClient` wire discipline, minus reply parsing: the router
forwards raw reply dicts and only rewrites the request id).  A dead
shard answers ``overloaded`` (:class:`repro.errors.
ShardUnavailableError` — retriable; the supervisor is restarting it),
never a hang.
"""

from __future__ import annotations

import asyncio
import itertools
import json
from collections import OrderedDict
from typing import Any, Sequence

from repro.errors import ReproError, ServiceProtocolError, ShardUnavailableError
from repro.obs.meters import MetricsRegistry, merge_snapshots, render_prometheus
from repro.obs.trace import NOOP_SPAN, NULL_TRACER, Tracer
from repro.service.fingerprint import (
    combine_fingerprints,
    config_fingerprint,
    edge_keys_fingerprint,
)
from repro.service.server import (
    MAX_LINE_BYTES,
    NdjsonEndpoint,
    _error_reply,
    config_from_payload,
    parse_graph_payload,
)
from repro.service.sharding.hashring import DEFAULT_VNODES, HashRing

__all__ = ["ShardRouter"]

#: Payload edge count above which the fingerprint hash (an O(m)
#: pure-Python walk) moves off the event loop — same threshold as the
#: gateway's own submit path.
_INLINE_FINGERPRINT_MAX_EDGES = 100_000


class _ShardLink:
    """One pipelined NDJSON connection to a shard, lazily (re)connected.

    Many forwards may be in flight at once; replies are matched by a
    link-local id (the router restores the client's id on the way back).
    Connection failures — refused while the shard restarts, reset when
    it dies mid-request — surface as :class:`ShardUnavailableError` on
    every affected in-flight future.
    """

    def __init__(self, host: str, port: int):
        self.host = host
        self.port = port
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._read_task: asyncio.Task | None = None
        self._pending: dict[int, asyncio.Future] = {}
        self._ids = itertools.count(1)
        self._connect_lock = asyncio.Lock()

    def update_address(self, host: str, port: int) -> None:
        """Point the link at a restarted shard; the stale connection (if
        any) is torn down so the next forward reconnects."""
        self.host = host
        self.port = port
        writer = self._writer
        self._writer = None
        self._reader = None
        if writer is not None:
            writer.close()

    async def request(self, payload: dict[str, Any]) -> dict[str, Any]:
        """One round-trip; raises :class:`ShardUnavailableError` when the
        shard cannot be reached or dies before replying."""
        try:
            await self._ensure_connected()
        except OSError as exc:
            raise ShardUnavailableError(
                f"shard at {self.host}:{self.port} is unavailable "
                f"({type(exc).__name__}); retry with backoff"
            ) from exc
        assert self._writer is not None
        link_id = next(self._ids)
        payload["id"] = link_id
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[link_id] = future
        try:
            self._writer.write(
                (json.dumps(payload, separators=(",", ":")) + "\n").encode("utf-8")
            )
            await self._writer.drain()
        except (OSError, ConnectionResetError) as exc:
            self._pending.pop(link_id, None)
            raise ShardUnavailableError(
                f"shard at {self.host}:{self.port} dropped the connection; "
                "retry with backoff"
            ) from exc
        return await future

    async def _ensure_connected(self) -> None:
        async with self._connect_lock:
            if self._writer is not None and not self._writer.is_closing():
                return
            reader, writer = await asyncio.open_connection(
                self.host, self.port, limit=MAX_LINE_BYTES
            )
            self._reader = reader
            self._writer = writer
            self._read_task = asyncio.get_running_loop().create_task(
                self._read_loop(reader, writer)
            )

    async def _read_loop(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                reply = json.loads(line)
                future = self._pending.pop(reply.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(reply)
        except (ConnectionResetError, asyncio.CancelledError, ValueError):
            pass
        finally:
            # Fail everything this connection still owed; the next
            # forward reconnects (the restarted shard re-warms its arc).
            if self._writer is writer:
                self._writer = None
                self._reader = None
            for future in list(self._pending.values()):
                if not future.done():
                    future.set_exception(
                        ShardUnavailableError(
                            f"shard at {self.host}:{self.port} closed the "
                            "connection mid-request; retry with backoff"
                        )
                    )
            self._pending.clear()
            writer.close()

    async def close(self) -> None:
        writer = self._writer
        self._writer = None
        self._reader = None
        if writer is not None:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass
        if self._read_task is not None:
            self._read_task.cancel()
            try:
                await self._read_task
            except asyncio.CancelledError:
                pass
            self._read_task = None


class ShardRouter(NdjsonEndpoint):
    """Consistent-hash NDJSON front tier over shard workers.

    Parameters
    ----------
    shard_addresses:
        One ``(host, port)`` per shard; index i becomes ring member
        ``"shard-i"`` (stable across restarts — the supervisor calls
        :meth:`update_shard` with the same index).
    host / port:
        The front door clients connect to (``port=0`` = ephemeral).
    vnodes:
        Ring points per shard.
    update_map_entries:
        Bound on the child-digest → shard LRU that keeps update chains
        local; an evicted mapping degrades to the retriable
        ``stale_parent`` path, never to a wrong answer.
    """

    def __init__(
        self,
        shard_addresses: Sequence[tuple[str, int]],
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        vnodes: int = DEFAULT_VNODES,
        update_map_entries: int = 262_144,
        tracer: Tracer | None = None,
    ):
        if not shard_addresses:
            raise ValueError("ShardRouter needs at least one shard address")
        super().__init__(host, port)
        self._links = [_ShardLink(h, p) for h, p in shard_addresses]
        self._shard_ids = [f"shard-{i}" for i in range(len(self._links))]
        self.ring = HashRing(self._shard_ids, vnodes=vnodes)
        self._index_of = {sid: i for i, sid in enumerate(self._shard_ids)}
        self._update_owner: OrderedDict[str, int] = OrderedDict()
        self.update_map_entries = update_map_entries
        self.routed: dict[str, int] = {"solve": 0, "update": 0, "stats": 0}
        self.per_shard: list[int] = [0] * len(self._links)
        self.unavailable = 0
        self.tracer = tracer if tracer is not None else NULL_TRACER
        # The router's own instrument registry: merged with the shards'
        # snapshots by the ``metrics`` verb into one fleet view.
        self.registry = MetricsRegistry()
        self.registry.install_process_gauges()
        self._routed_counter = self.registry.counter(
            "repro_router_requests_total",
            "Requests routed by op",
            labelnames=("op",),
        )
        self._forward_counter = self.registry.counter(
            "repro_router_forwards_total",
            "Forwards by shard index",
            labelnames=("shard",),
        )
        self._error_counter = self.registry.counter(
            "repro_router_errors_total",
            "Router-tier errors by typed kind",
            labelnames=("kind",),
        )
        self._shard_up = self.registry.gauge(
            "repro_router_shard_up",
            "1 when the shard answered the last metrics fan-out",
            labelnames=("shard",),
        )

    @property
    def num_shards(self) -> int:
        return len(self._links)

    def update_shard(self, index: int, address: tuple[str, int]) -> None:
        """Repoint shard ``index`` after a restart (same ring arc, new
        port); called by the supervisor."""
        self._links[index].update_address(*address)

    async def _on_close(self) -> None:
        for link in self._links:
            await link.close()

    # -- routing -----------------------------------------------------------

    def _shard_for_digest(self, digest: str) -> int:
        return self._index_of[self.ring.owner(digest)]

    def _remember_chain(self, child_digest: str, shard: int) -> None:
        owners = self._update_owner
        owners[child_digest] = shard
        owners.move_to_end(child_digest)
        while len(owners) > self.update_map_entries:
            owners.popitem(last=False)

    async def _reply_for(self, line: bytes) -> dict[str, Any]:
        request_id: Any = None
        try:
            request = json.loads(line)
            if not isinstance(request, dict):
                raise ServiceProtocolError("request must be a JSON object")
            request_id = request.get("id")
            op = request.get("op", "solve")
            if op == "ping":
                return {
                    "id": request_id, "ok": True, "pong": True,
                    "shards": self.num_shards,
                }
            if op == "stats":
                self.routed["stats"] += 1
                self._routed_counter.inc(op="stats")
                return await self._aggregate_stats(request_id)
            if op == "metrics":
                self._routed_counter.inc(op="metrics")
                return await self._aggregate_metrics(request_id, request)
            if op == "update":
                return await self._route_update(request_id, request)
            if op != "solve":
                raise ServiceProtocolError(f"unknown op {op!r}")
            return await self._route_solve(request_id, request)
        except ServiceProtocolError as exc:
            self._error_counter.inc(kind="protocol")
            return _error_reply(request_id, "protocol", exc)
        except (json.JSONDecodeError, ReproError) as exc:
            self._error_counter.inc(kind="protocol")
            return _error_reply(request_id, "protocol", exc)

    async def _route_solve(
        self, request_id: Any, request: dict[str, Any]
    ) -> dict[str, Any]:
        # Parse just enough to fingerprint — the same digest the shard's
        # gateway will compute, so the ring partitions the cache keyspace
        # exactly (and malformed payloads bounce here, one hop early).
        parsed = parse_graph_payload(request.get("graph"))
        config = config_from_payload(request.get("config"))

        def fingerprint() -> str:
            return combine_fingerprints(
                edge_keys_fingerprint(parsed.n, parsed.edge_keys),
                config_fingerprint(config.without_observer()),
            )

        if len(parsed.edge_keys) > _INLINE_FINGERPRINT_MAX_EDGES:
            digest = await asyncio.get_running_loop().run_in_executor(
                None, fingerprint
            )
        else:
            digest = fingerprint()
        shard = self._shard_for_digest(digest)
        self.routed["solve"] += 1
        self._routed_counter.inc(op="solve")
        # The root of the fleet-wide trace: the sampling decision made
        # here rides the wire to the shard (and from there to the solver).
        span = self.tracer.start_span(
            "router.request", attrs={"op": "solve", "shard": shard}
        )
        with span:
            return await self._forward(shard, request, request_id, span=span)

    async def _route_update(
        self, request_id: Any, request: dict[str, Any]
    ) -> dict[str, Any]:
        parent_digest = request.get("parent_digest")
        if not isinstance(parent_digest, str) or not parent_digest:
            raise ServiceProtocolError("update needs a string parent_digest")
        # Chain locality: the shard that served the parent owns the whole
        # chain (its GraphStore holds the live chain-head engine).  Root
        # parents (r1: solve digests) route by the ring like their solve
        # did; u1: children by the sticky map recorded from replies.
        shard = self._update_owner.get(parent_digest)
        if shard is None:
            shard = self._shard_for_digest(parent_digest)
        self.routed["update"] += 1
        self._routed_counter.inc(op="update")
        span = self.tracer.start_span(
            "router.request", attrs={"op": "update", "shard": shard}
        )
        with span:
            reply = await self._forward(shard, request, request_id, span=span)
        fingerprint = reply.get("fingerprint")
        if reply.get("ok") and isinstance(fingerprint, str):
            self._remember_chain(fingerprint, shard)
            self._remember_chain(parent_digest, shard)
        return reply

    async def _forward(
        self, shard: int, request: dict[str, Any], request_id: Any,
        *, span: Any = NOOP_SPAN,
    ) -> dict[str, Any]:
        self.per_shard[shard] += 1
        self._forward_counter.inc(shard=shard)
        forward_span = self.tracer.start_span("router.forward", parent=span)
        payload = dict(request)
        if forward_span:
            # the shard continues this trace via the wire context
            payload["trace"] = forward_span.wire_context()
        try:
            reply = await self._links[shard].request(payload)
        except ShardUnavailableError as exc:
            self.unavailable += 1
            self._error_counter.inc(kind="shard_unavailable")
            if forward_span:
                forward_span.set_attr("error", "shard_unavailable").end()
            return _error_reply(request_id, "overloaded", exc)
        forward_span.end()
        reply["id"] = request_id
        return reply

    # -- cluster stats -----------------------------------------------------

    async def _aggregate_stats(self, request_id: Any) -> dict[str, Any]:
        async def one(shard: int) -> dict[str, Any]:
            try:
                reply = await self._links[shard].request({"op": "stats"})
            except ShardUnavailableError as exc:
                return {"shard": shard, "alive": False, "error": str(exc)}
            if not reply.get("ok"):
                return {
                    "shard": shard, "alive": False,
                    "error": str(reply.get("error")),
                }
            shard_stats = reply.get("stats")
            if not isinstance(shard_stats, dict):
                return {
                    "shard": shard, "alive": False,
                    "error": "malformed stats reply (missing 'stats' object)",
                }
            return {"shard": shard, "alive": True, **shard_stats}

        shards = list(
            await asyncio.gather(*(one(i) for i in range(self.num_shards)))
        )
        stats = _merge_shard_stats(shards)
        stats["router"] = {
            "shards": self.num_shards,
            "alive": sum(1 for s in shards if s.get("alive")),
            "vnodes": self.ring.vnodes,
            "routed": dict(self.routed),
            "per_shard": list(self.per_shard),
            "unavailable": self.unavailable,
            "update_map_entries": len(self._update_owner),
        }
        stats["shards"] = shards
        return {"id": request_id, "ok": True, "stats": stats}

    async def _aggregate_metrics(
        self, request_id: Any, request: dict[str, Any]
    ) -> dict[str, Any]:
        """Fan ``metrics`` out to every shard and merge the snapshots
        (plus the router's own registry) into one fleet-wide view.

        Counters, histogram buckets and gauges all sum per label set
        (see :func:`merge_snapshots`): the fleet's RSS is the sum of its
        processes' RSS.  A dead shard is skipped — its absence shows as
        ``repro_router_shard_up 0`` rather than a failed scrape.
        """
        fmt = request.get("format", "json")
        if fmt not in ("json", "prometheus"):
            raise ServiceProtocolError(
                f"unknown metrics format {fmt!r} (expected json|prometheus)"
            )

        async def one(shard: int) -> dict[str, Any] | None:
            try:
                reply = await self._links[shard].request({"op": "metrics"})
            except ShardUnavailableError:
                return None
            if not reply.get("ok"):
                return None
            snapshot = reply.get("metrics")
            return snapshot if isinstance(snapshot, dict) else None

        shard_snaps = list(
            await asyncio.gather(*(one(i) for i in range(self.num_shards)))
        )
        for shard, snap in enumerate(shard_snaps):
            self._shard_up.set(1.0 if snap is not None else 0.0, shard=shard)
        merged = merge_snapshots(
            [self.registry.as_dict()]
            + [s for s in shard_snaps if s is not None]
        )
        if fmt == "prometheus":
            return {
                "id": request_id, "ok": True,
                "metrics_text": render_prometheus(merged),
            }
        return {"id": request_id, "ok": True, "metrics": merged}


def _merge_shard_stats(shards: list[dict[str, Any]]) -> dict[str, Any]:
    """Fold per-shard gateway snapshots into one cluster view that keeps
    the single-server stats shape (``cache``/``graph_store``/``metrics``/
    ``coalesced`` at the top level), so tooling written against one
    server — the bench harness's hit-rate deltas, the smoke checks —
    reads the router's stats unchanged.

    Counters sum.  Latency percentiles take the worst shard (a cluster-
    wide percentile cannot be recovered from per-shard quantiles, and
    for an SLO check the pessimistic merge is the honest one);
    ``mean_batch_size`` is batch-count weighted.
    """
    alive = [s for s in shards if s.get("alive")]
    cache = {}
    if alive:
        cache = {
            k: sum(s.get("cache", {}).get(k, 0) for s in alive)
            for k in ("hits", "misses", "puts", "evictions_lru",
                      "evictions_ttl", "entries", "bytes")
        }
        probes = cache["hits"] + cache["misses"]
        cache["hit_rate"] = round(cache["hits"] / probes, 4) if probes else 0.0
    graph_store = {
        k: sum(s.get("graph_store", {}).get(k, 0) for s in alive)
        for k in ("entries", "chains", "bytes", "hits", "misses", "evictions")
    } if alive else {}
    metrics: dict[str, Any] = {}
    if alive:
        snaps = [s.get("metrics", {}) for s in alive]
        for key in ("completed", "cached", "rejected", "failed", "coalesced"):
            metrics[key] = sum(snap.get(key, 0) for snap in snaps)
        metrics["qps"] = round(sum(snap.get("qps", 0.0) for snap in snaps), 3)
        served = metrics["completed"]
        metrics["cache_hit_rate"] = (
            round(metrics["cached"] / served, 4) if served else 0.0
        )
        metrics["queue_depth"] = sum(snap.get("queue_depth", 0) for snap in snaps)
        metrics["queue_depth_peak"] = max(
            (snap.get("queue_depth_peak", 0) for snap in snaps), default=0
        )
        metrics["batches"] = sum(snap.get("batches", 0) for snap in snaps)
        weight = sum(snap.get("batches", 0) for snap in snaps)
        metrics["mean_batch_size"] = round(
            sum(
                snap.get("mean_batch_size", 0.0) * snap.get("batches", 0)
                for snap in snaps
            ) / weight,
            3,
        ) if weight else 0.0
        for window in ("latency", "latency_cached", "latency_solved",
                       "latency_coalesced"):
            windows = [snap[window] for snap in snaps if window in snap]
            if windows:
                merged = {
                    "count": sum(w.get("count", 0) for w in windows),
                    "window": sum(w.get("window", 0) for w in windows),
                }
                for quantile in ("p50_ms", "p95_ms", "p99_ms", "max_ms"):
                    merged[quantile] = max(
                        (w.get(quantile, 0.0) for w in windows), default=0.0
                    )
                metrics[window] = merged
    return {
        "cache": cache,
        "graph_store": graph_store,
        "metrics": metrics,
        "coalesced": sum(s.get("coalesced", 0) for s in alive),
        "outstanding": sum(s.get("outstanding", 0) for s in alive),
    }
