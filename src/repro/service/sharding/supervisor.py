"""The shard supervisor: bring up the fleet, keep it up, take it down.

:class:`ShardSupervisor` owns N :class:`~repro.service.sharding.worker.
ShardWorker` children and the policy loop around them:

* :meth:`start` boots every worker (port-file handshake each) and
  returns their addresses — what a :class:`~repro.service.sharding.
  router.ShardRouter` is constructed from;
* :meth:`monitor` is the supervision loop: it polls process liveness
  and, when a worker dies, restarts it *off the event loop* (spawn +
  boot handshake run in an executor, after the worker's backoff delay)
  so routing to the surviving shards never stalls; the restarted
  address is pushed into the router, whose link reconnects on the next
  forward.  A worker that exhausts its restart budget is left down —
  its arc answers ``overloaded`` until an operator intervenes — and
  the rest of the fleet keeps serving;
* :meth:`stop` SIGTERMs every child (the serve loop drains gracefully)
  with a bounded deadline before SIGKILL.

During a restart the dead shard's arc simply sheds load
(:class:`repro.errors.ShardUnavailableError` → retriable ``overloaded``
replies); content-addressed keys mean the replacement re-warms its
cache from traffic with no handoff protocol.
"""

from __future__ import annotations

import asyncio
import sys
from typing import Any, Mapping, Sequence

from repro.errors import ShardFailedError
from repro.service.sharding.worker import ShardWorker

__all__ = ["ShardSupervisor"]


class ShardSupervisor:
    """Spawn, watch, and stop a fleet of shard workers.

    Parameters
    ----------
    shards:
        Either a count (workers are created as ``shard-0..N-1``) or a
        prebuilt worker list (tests inject fakes this way).
    host / serve_args / worker_kwargs:
        Forwarded to every created :class:`ShardWorker`.
    poll_interval_s:
        The monitor loop's liveness-poll period.
    """

    def __init__(
        self,
        shards: int | Sequence[ShardWorker],
        *,
        host: str = "127.0.0.1",
        serve_args: Mapping[str, Any] | None = None,
        poll_interval_s: float = 0.25,
        **worker_kwargs: Any,
    ):
        if isinstance(shards, int):
            if shards < 1:
                raise ValueError(f"need at least one shard, got {shards}")
            self.workers = [
                ShardWorker(
                    f"shard-{i}", host=host, serve_args=serve_args,
                    **worker_kwargs,
                )
                for i in range(shards)
            ]
        else:
            self.workers = list(shards)
            if not self.workers:
                raise ValueError("need at least one shard worker")
        self.poll_interval_s = poll_interval_s
        self._restarting: set[int] = set()
        self._restart_tasks: set[asyncio.Task] = set()

    # -- fleet lifecycle ---------------------------------------------------

    def start(self) -> list[tuple[str, int]]:
        """Boot every worker; returns their ``(host, port)`` addresses.

        A worker that fails to boot takes the whole bring-up down (the
        booted part of the fleet is stopped): a fleet that starts
        degraded would silently serve a smaller keyspace.
        """
        addresses: list[tuple[str, int]] = []
        try:
            for worker in self.workers:
                addresses.append(worker.start())
        except ShardFailedError:
            self.stop(drain_s=1.0)
            raise
        return addresses

    def addresses(self) -> list[tuple[str, int]]:
        return [(w.host, w.port or 0) for w in self.workers]

    def stop(self, drain_s: float = 5.0) -> None:
        """Stop the fleet (SIGTERM → graceful drain → SIGKILL)."""
        for worker in self.workers:
            worker.stop(deadline_s=drain_s)
        for worker in self.workers:
            worker.close()

    # -- supervision -------------------------------------------------------

    async def monitor(
        self,
        router: "Any | None" = None,
        *,
        stop: asyncio.Event | None = None,
    ) -> None:
        """The supervision loop; runs until ``stop`` is set (or forever).

        ``router`` (a :class:`~repro.service.sharding.router.ShardRouter`
        or anything with ``update_shard(index, (host, port))``) is told
        each restarted worker's new address.
        """
        try:
            while stop is None or not stop.is_set():
                for index, worker in enumerate(self.workers):
                    if (
                        not worker.alive()
                        and not worker.failed
                        and index not in self._restarting
                    ):
                        self._restarting.add(index)
                        task = asyncio.get_running_loop().create_task(
                            self._restart_worker(index, router)
                        )
                        self._restart_tasks.add(task)
                        task.add_done_callback(self._restart_tasks.discard)
                    elif worker.alive():
                        worker.note_healthy()
                if stop is None:
                    await asyncio.sleep(self.poll_interval_s)
                else:
                    try:
                        await asyncio.wait_for(
                            stop.wait(), timeout=self.poll_interval_s
                        )
                    except asyncio.TimeoutError:
                        pass
        finally:
            if self._restart_tasks:
                await asyncio.gather(
                    *self._restart_tasks, return_exceptions=True
                )

    async def _restart_worker(self, index: int, router: "Any | None") -> None:
        worker = self.workers[index]
        delay = worker.next_backoff_s()
        print(
            f"# shard supervisor: {worker.shard_id} died "
            f"(exit={worker.process.returncode if worker.process else '?'}); "
            f"restarting in {delay:.2f}s",
            file=sys.stderr,
        )
        try:
            await asyncio.sleep(delay)
            # The spawn + port handshake block for up to boot_timeout_s —
            # keep them off the loop so the healthy shards' routing (and
            # the rest of the monitor) never stalls behind a restart.
            address = await asyncio.get_running_loop().run_in_executor(
                None, worker.restart
            )
        except ShardFailedError as exc:
            print(f"# shard supervisor: {exc}; leaving shard down", file=sys.stderr)
            return
        finally:
            self._restarting.discard(index)
        if router is not None:
            router.update_shard(index, address)
        print(
            f"# shard supervisor: {worker.shard_id} back on "
            f"{address[0]}:{address[1]} (restart #{worker.restarts})",
            file=sys.stderr,
        )

    def stats(self) -> dict[str, Any]:
        """Fleet view: per-worker liveness and restart counts."""
        return {
            "shards": len(self.workers),
            "alive": sum(1 for w in self.workers if w.alive()),
            "failed": sum(1 for w in self.workers if w.failed),
            "restarts": sum(w.restarts for w in self.workers),
            "workers": [
                {
                    "shard_id": w.shard_id,
                    "host": w.host,
                    "port": w.port,
                    "alive": w.alive(),
                    "failed": w.failed,
                    "restarts": w.restarts,
                }
                for w in self.workers
            ],
        }
