"""One shard = today's single-process server, run as a supervised child.

:class:`ShardWorker` wraps ``python -m repro serve`` (the full
:class:`repro.service.server.ColoringServer` + gateway stack, untouched)
in a child process and owns its lifecycle:

* **spawn** — the child binds an ephemeral port and publishes it through
  a ``--port-file`` handshake (the parent polls the file while checking
  the process is still alive, so a crash during boot fails fast instead
  of hanging the fleet bring-up);
* **health** — :meth:`alive` is the cheap process-level check (used by
  the supervisor's poll loop), :meth:`ping` a real protocol round-trip;
* **restart with bounded backoff** — consecutive restarts back off
  exponentially (``backoff_base_s * 2^k``, capped), and more than
  ``max_restarts`` restarts within ``restart_window_s`` marks the worker
  failed (:class:`repro.errors.ShardFailedError`) instead of
  crash-looping; a worker that stays up resets the backoff.

The worker keeps its stable ``shard_id`` across restarts, so its hash
ring arc — and therefore the digest keyspace it caches — survives the
restart.  Without a durable store the cache is lost with the process
(content-addressed keys mean it simply re-warms); with a fleet
``store-dir`` the worker rewrites it to ``<store-dir>/<shard_id>`` —
each shard persists exactly its ≈1/N keyspace partition, and a restarted
replacement replays its predecessor's store instead of re-solving (see
docs/STORAGE.md).
"""

from __future__ import annotations

import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from typing import Any, Mapping

from repro.errors import ShardFailedError

__all__ = ["ShardWorker"]


def _repro_src_root() -> str:
    """The directory to put on the child's PYTHONPATH (…/src)."""
    import repro

    return str(Path(repro.__file__).resolve().parents[1])


class ShardWorker:
    """A supervised ``repro serve`` child process.

    Parameters
    ----------
    shard_id:
        Stable name (``"shard-0"``, …); determines the ring arc.
    host:
        Interface the child binds (always with ``--port 0``; the real
        port arrives through the port file).
    serve_args:
        Extra ``repro serve`` flags as a ``{"max-queue": 16, ...}``
        mapping (dashes as in the CLI; values stringified).
    boot_timeout_s:
        How long one spawn may take to publish its port.
    max_restarts / restart_window_s:
        The restart budget: more than ``max_restarts`` restarts within
        the trailing window raises :class:`ShardFailedError`.
    backoff_base_s / backoff_cap_s:
        Exponential-backoff schedule for consecutive restarts.
    """

    def __init__(
        self,
        shard_id: str,
        *,
        host: str = "127.0.0.1",
        serve_args: Mapping[str, Any] | None = None,
        boot_timeout_s: float = 30.0,
        max_restarts: int = 5,
        restart_window_s: float = 60.0,
        backoff_base_s: float = 0.25,
        backoff_cap_s: float = 5.0,
    ):
        self.shard_id = str(shard_id)
        self.host = host
        self.port: int | None = None
        self.serve_args = dict(serve_args or {})
        self.boot_timeout_s = boot_timeout_s
        self.max_restarts = max_restarts
        self.restart_window_s = restart_window_s
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        self.process: subprocess.Popen | None = None
        self.restarts = 0
        self.failed = False
        self._restart_times: list[float] = []
        self._consecutive_restarts = 0
        self._spawn_count = 0
        self._tmpdir = tempfile.TemporaryDirectory(prefix=f"repro-{self.shard_id}-")

    # -- lifecycle ---------------------------------------------------------

    def command(self, port_file: Path) -> list[str]:
        """The child's argv (exposed for tests)."""
        cmd = [
            sys.executable, "-m", "repro", "serve",
            "--host", self.host,
            "--port", "0",
            "--port-file", str(port_file),
        ]
        for flag, value in self.serve_args.items():
            if flag == "store-dir":
                # Per-shard partition of the fleet store directory: the
                # stable shard_id makes it survive restarts (and keeps
                # single-writer journals single-writer).
                value = str(Path(value) / self.shard_id)
            cmd.extend([f"--{flag}", str(value)])
        return cmd

    def start(self) -> tuple[str, int]:
        """Spawn the child and wait for its port handshake.

        Returns the bound ``(host, port)``.  Raises
        :class:`ShardFailedError` if the child dies or stays silent past
        ``boot_timeout_s`` (the corpse is reaped either way).
        """
        if self.failed:
            raise ShardFailedError(
                f"{self.shard_id} exhausted its restart budget "
                f"({self.max_restarts} within {self.restart_window_s:g}s)"
            )
        self._spawn_count += 1
        # A fresh file per spawn: a stale port published by the previous
        # incarnation must never be mistaken for the new one's.
        port_file = Path(self._tmpdir.name) / f"port-{self._spawn_count}"
        env = dict(os.environ)
        src_root = _repro_src_root()
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            src_root if not existing else os.pathsep.join([src_root, existing])
        )
        self.process = subprocess.Popen(
            self.command(port_file),
            stdin=subprocess.DEVNULL,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
            env=env,
        )
        deadline = time.monotonic() + self.boot_timeout_s
        while time.monotonic() < deadline:
            if self.process.poll() is not None:
                raise ShardFailedError(
                    f"{self.shard_id} exited with code "
                    f"{self.process.returncode} before publishing its port"
                )
            try:
                text = port_file.read_text()
            except OSError:
                text = ""
            if text.endswith("\n"):  # the child writes atomically-enough: one line
                host, port = text.split()
                self.port = int(port)
                self.host = host
                return self.host, self.port
            time.sleep(0.01)
        self.stop(deadline_s=1.0)
        raise ShardFailedError(
            f"{self.shard_id} did not publish a port within "
            f"{self.boot_timeout_s:g}s"
        )

    def alive(self) -> bool:
        """Process-level liveness (no I/O)."""
        return self.process is not None and self.process.poll() is None

    def ping(self, timeout_s: float = 2.0) -> bool:
        """Protocol-level health check: one ``ping`` round-trip."""
        if not self.alive() or self.port is None:
            return False
        from repro.service.client import ColoringClient

        try:
            with ColoringClient(self.host, self.port, timeout=timeout_s) as client:
                return client.ping()
        except OSError:
            return False

    # -- restart policy ----------------------------------------------------

    def next_backoff_s(self) -> float:
        """Delay before the *next* restart attempt (consecutive-crash
        exponential, capped)."""
        return min(
            self.backoff_cap_s,
            self.backoff_base_s * (2 ** self._consecutive_restarts),
        )

    def note_healthy(self) -> None:
        """The worker has been observed healthy: reset the consecutive-
        crash backoff (the windowed restart budget still applies)."""
        self._consecutive_restarts = 0

    def restart(self) -> tuple[str, int]:
        """Reap the dead child and spawn a fresh one under the budget.

        Raises :class:`ShardFailedError` (and marks the worker failed)
        when the trailing-window budget is exhausted — a crash-looping
        shard must degrade to an unavailable arc, not eat the host.
        """
        now = time.monotonic()
        self._restart_times = [
            t for t in self._restart_times if now - t < self.restart_window_s
        ]
        if len(self._restart_times) >= self.max_restarts:
            self.failed = True
            raise ShardFailedError(
                f"{self.shard_id} exhausted its restart budget "
                f"({self.max_restarts} within {self.restart_window_s:g}s)"
            )
        self._restart_times.append(now)
        self.restarts += 1
        self._consecutive_restarts += 1
        if self.process is not None and self.process.poll() is None:
            self.stop(deadline_s=2.0)
        return self.start()

    def stop(self, deadline_s: float = 5.0) -> None:
        """Terminate the child: SIGTERM (which the serve loop turns into
        a graceful drain), then SIGKILL past the deadline."""
        process = self.process
        if process is None:
            return
        if process.poll() is None:
            process.terminate()
            try:
                process.wait(timeout=max(0.1, deadline_s))
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait(timeout=5.0)

    def close(self) -> None:
        """Stop the child and release the port-file scratch directory."""
        self.stop()
        self._tmpdir.cleanup()

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        state = (
            "failed" if self.failed
            else "up" if self.alive()
            else "down"
        )
        return (
            f"ShardWorker({self.shard_id}, {self.host}:{self.port}, "
            f"{state}, restarts={self.restarts})"
        )
