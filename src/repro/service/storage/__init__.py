"""Pluggable service storage: protocols, backends, and replay.

See docs/STORAGE.md for the operator view.  The layout:

* :mod:`.api` — the :class:`ResultStore`/:class:`WriteAheadLog`
  protocols, :class:`StorageConfig` (every knob) and
  :class:`StorageBundle` (the live stores).
* :mod:`.journal` — the framed append-only file with torn-tail recovery
  that every durable structure is built from.
* :mod:`.durable` — :class:`DurableStore` (segments + digest index) and
  :class:`TieredResultStore` (memory front, disk behind).
* :mod:`.wal` — :class:`UpdateWAL`, the update verb's delta log.
* :mod:`.replay` — :func:`replay_chains`, warm-restart chain rebuild.
"""

from repro.service.storage.api import (
    ResultStore,
    StorageBundle,
    StorageConfig,
    StoreMeters,
    WriteAheadLog,
)
from repro.service.storage.durable import DurableStore, TieredResultStore
from repro.service.storage.journal import (
    FSYNC_POLICIES,
    FsyncPolicy,
    Journal,
    decode_record,
    encode_record,
)
from repro.service.storage.replay import replay_chains
from repro.service.storage.wal import UpdateWAL, config_from_payload, update_record

__all__ = [
    "ResultStore",
    "WriteAheadLog",
    "StorageConfig",
    "StorageBundle",
    "StoreMeters",
    "DurableStore",
    "TieredResultStore",
    "Journal",
    "FsyncPolicy",
    "FSYNC_POLICIES",
    "encode_record",
    "decode_record",
    "UpdateWAL",
    "update_record",
    "config_from_payload",
    "replay_chains",
]
