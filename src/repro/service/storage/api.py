"""The pluggable storage API of the coloring service.

Everything the serving tier keeps between requests goes through two
small protocols:

* :class:`ResultStore` — a ``digest -> ColoringResult`` map
  (get/put/evict/stats) keyed by the content-addressed ``r1:`` solve and
  ``u1:`` update digests of :mod:`repro.service.fingerprint`.  Because
  those digests carry the algorithm identity and full config payload,
  results from different engines can share one store without colliding.
* :class:`WriteAheadLog` — the ``update`` verb's durability half: an
  append-only log of edge deltas, replayed on restart to rebuild the
  :class:`~repro.service.graphstore.GraphStore` chain heads the process
  lost.

Two backends ship behind them: the in-memory LRU+TTL
:class:`~repro.service.cache.ResultCache` (bit-identical to the pre-API
behaviour) and the durable
:class:`~repro.service.storage.durable.DurableStore` (append-only
segment files + compact digest index; see docs/STORAGE.md).  With a
store directory configured the service runs the two *tiered*
(:class:`~repro.service.storage.durable.TieredResultStore`): memory in
front, disk behind, warm restarts replaying instead of re-solving.

:class:`StorageConfig` is the one place every storage knob lives —
cache bounds, graph-store bounds, durability options — and
:meth:`StorageConfig.build` turns it into the :class:`StorageBundle` of
live stores that :class:`~repro.service.batcher.BatchingGateway`,
:class:`~repro.service.server.ColoringServer` and ``repro serve`` all
thread through.  Tests (and anything that needs bespoke instances, e.g.
a frozen-clock cache) construct a :class:`StorageBundle` directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator, Protocol, runtime_checkable

from repro.api.result import ColoringResult
from repro.service.storage.journal import FSYNC_POLICIES

__all__ = [
    "ResultStore",
    "WriteAheadLog",
    "StorageConfig",
    "StorageBundle",
    "StoreMeters",
]


@runtime_checkable
class ResultStore(Protocol):
    """A keyed store of frozen :class:`ColoringResult` objects.

    Keys are the service's content digests (``r1:`` solves, ``u1:``
    update chains), so equal keys imply bit-identical results and a
    store never needs invalidation — only eviction.
    """

    def get(self, key: str) -> ColoringResult | None:
        """The stored result, or None (miss/expired/evicted)."""
        ...

    def put(self, key: str, result: ColoringResult) -> None:
        """Insert (or refresh) ``key``."""
        ...

    def evict(self, key: str) -> bool:
        """Drop ``key`` if present; True when something was dropped."""
        ...

    def stats(self) -> Any:
        """A JSON-able snapshot (or an object with ``as_dict()``)."""
        ...

    def clear(self) -> None:
        """Drop every (volatile) entry."""
        ...

    def __len__(self) -> int: ...

    def __contains__(self, key: str) -> bool: ...


@runtime_checkable
class WriteAheadLog(Protocol):
    """An append-only, replayable log of update-verb deltas."""

    def append(self, record: dict[str, Any]) -> None:
        """Durably append one delta record."""
        ...

    def replay(self) -> Iterator[dict[str, Any]]:
        """Every intact record, in append order."""
        ...

    def sync(self) -> None:
        """Flush (and, per policy, fsync) pending appends."""
        ...

    def close(self) -> None: ...

    def stats(self) -> dict[str, Any]: ...


class StoreMeters:
    """The ``repro_store_*`` instruments, no-op without a registry.

    One instance is shared by every store in a bundle; the registry's
    get-or-create semantics make the wiring idempotent.
    """

    def __init__(self, registry: "Any | None" = None):
        self.registry = registry
        if registry is None:
            self._requests = self._appends = self._bytes = None
            self._fsyncs = self._replayed = self._replay_s = None
            return
        self._requests = registry.counter(
            "repro_store_requests_total",
            "Result-store lookups by tier and outcome",
            labelnames=("tier", "outcome"),
        )
        self._appends = registry.counter(
            "repro_store_appends_total",
            "Durable records appended by kind",
            labelnames=("kind",),
        )
        self._bytes = registry.counter(
            "repro_store_bytes_written_total",
            "Bytes appended to durable files by kind",
            labelnames=("kind",),
        )
        self._fsyncs = registry.counter(
            "repro_store_fsyncs_total", "fsync calls issued by the storage layer"
        )
        self._replayed = registry.counter(
            "repro_store_replayed_total",
            "Entities restored by warm-restart replay, by kind",
            labelnames=("kind",),
        )
        self._replay_s = registry.gauge(
            "repro_store_replay_seconds", "Wall time of the last storage replay"
        )

    def request(self, tier: str, hit: bool) -> None:
        if self._requests is not None:
            self._requests.inc(tier=tier, outcome="hit" if hit else "miss")

    def append(self, kind: str, nbytes: int) -> None:
        if self._appends is not None:
            self._appends.inc(kind=kind)
            self._bytes.inc(nbytes, kind=kind)

    def fsync(self, count: int = 1) -> None:
        if self._fsyncs is not None and count:
            self._fsyncs.inc(count)

    def replayed(self, kind: str, count: int) -> None:
        if self._replayed is not None and count:
            self._replayed.inc(count, kind=kind)

    def replay_seconds(self, seconds: float) -> None:
        if self._replay_s is not None:
            self._replay_s.set(seconds)


@dataclass
class StorageConfig:
    """Every storage knob of the serving tier, in one place.

    In-memory tier (always on)
    --------------------------
    cache_entries / cache_bytes / cache_ttl_s:
        The :class:`~repro.service.cache.ResultCache` bounds — entry
        count, summed byte estimate (None disables), per-entry TTL
        (None = never expire).
    graph_store_entries / graph_store_bytes:
        The :class:`~repro.service.graphstore.GraphStore` bounds for
        update-verb repair parents and chain-head engines.

    Durable tier (on when ``store_dir`` is set)
    -------------------------------------------
    store_dir:
        Directory of the append-only segment files, the compact digest
        index and the update WAL.  None = memory-only (the pre-storage-
        API behaviour, bit-identical).
    wal:
        Keep the update write-ahead log (chain heads replay on restart).
        Ignored without ``store_dir``.
    fsync:
        ``"always"`` / ``"batch"`` / ``"never"`` — see
        :class:`~repro.service.storage.journal.FsyncPolicy` and the
        durability table in docs/STORAGE.md.
    segment_max_bytes:
        Roll to a fresh segment file past this size.
    """

    cache_entries: int = 1024
    cache_bytes: int | None = 256 * 1024 * 1024
    cache_ttl_s: float | None = None
    graph_store_entries: int = 128
    graph_store_bytes: int | None = 512 * 1024 * 1024
    store_dir: str | Path | None = None
    wal: bool = True
    fsync: str = "batch"
    segment_max_bytes: int = 64 * 1024 * 1024

    def __post_init__(self) -> None:
        if self.cache_entries < 1:
            raise ValueError(f"cache_entries must be >= 1, got {self.cache_entries}")
        if self.graph_store_entries < 1:
            raise ValueError(
                f"graph_store_entries must be >= 1, got {self.graph_store_entries}"
            )
        if self.fsync not in FSYNC_POLICIES:
            raise ValueError(
                f"unknown fsync policy {self.fsync!r}; expected one of "
                f"{FSYNC_POLICIES}"
            )
        if self.segment_max_bytes < 1:
            raise ValueError(
                f"segment_max_bytes must be >= 1, got {self.segment_max_bytes}"
            )

    @property
    def durable(self) -> bool:
        return self.store_dir is not None

    def build(self, registry: "Any | None" = None) -> "StorageBundle":
        """Construct the live stores this config describes.

        ``registry`` (a :class:`repro.obs.meters.MetricsRegistry`) wires
        the ``repro_store_*`` instruments; None leaves them off.
        """
        from repro.service.cache import ResultCache
        from repro.service.graphstore import GraphStore

        meters = StoreMeters(registry)
        cache: Any = ResultCache(
            max_entries=self.cache_entries,
            max_bytes=self.cache_bytes,
            ttl_s=self.cache_ttl_s,
        )
        durable = wal = None
        if self.durable:
            from repro.service.storage.durable import DurableStore, TieredResultStore
            from repro.service.storage.wal import UpdateWAL

            root = Path(self.store_dir)
            durable = DurableStore(
                root,
                fsync=self.fsync,
                segment_max_bytes=self.segment_max_bytes,
                meters=meters,
            )
            cache = TieredResultStore(cache, durable, meters=meters)
            if self.wal:
                wal = UpdateWAL(root / "update.wal", fsync=self.fsync, meters=meters)
        graph_store = GraphStore(
            max_entries=self.graph_store_entries,
            max_bytes=self.graph_store_bytes,
            durable=durable,
        )
        return StorageBundle(
            cache=cache,
            graph_store=graph_store,
            durable=durable,
            wal=wal,
            meters=meters,
            config=self,
        )


@dataclass
class StorageBundle:
    """The live stores one gateway serves from.

    Built by :meth:`StorageConfig.build`, or constructed directly when a
    caller needs bespoke instances (tests inject frozen-clock caches
    this way).  ``cache`` must satisfy :class:`ResultStore`; ``wal``
    must satisfy :class:`WriteAheadLog` when present.
    """

    cache: Any
    graph_store: Any
    durable: Any | None = None
    wal: Any | None = None
    meters: StoreMeters = field(default_factory=StoreMeters)
    config: StorageConfig | None = None

    @property
    def durable_enabled(self) -> bool:
        return self.durable is not None

    def sync(self) -> None:
        """Flush both durable halves (results/graphs and the WAL)."""
        if self.durable is not None:
            self.durable.sync()
        if self.wal is not None:
            self.wal.sync()

    def close(self) -> None:
        if self.durable is not None:
            self.durable.close()
        if self.wal is not None:
            self.wal.close()

    def stats(self) -> dict[str, Any]:
        cache_stats = self.cache.stats()
        if hasattr(cache_stats, "as_dict"):
            cache_stats = cache_stats.as_dict()
        out: dict[str, Any] = {
            "durable": self.durable_enabled,
            "cache": cache_stats,
            "graph_store": self.graph_store.stats(),
        }
        if self.durable is not None:
            out["store"] = self.durable.stats()
        if self.wal is not None:
            out["wal"] = self.wal.stats()
        return out
